"""Command-line driver: regenerate any of the paper's tables/figures.

Usage::

    python -m repro.cli list
    python -m repro.cli table1
    python -m repro.cli table2 table3 fig2
    python -m repro.cli all
    python -m repro.cli metrics [--json] [--events]
    python -m repro.cli chaos [--json] [--seed N]
    python -m repro.cli overload [--json] [--smoke] [--seed N]
    python -m repro.cli cluster [--json] [--seed N] [--requests N]
    python -m repro.cli autoscale [--json] [--smoke] [--seed N]
    python -m repro.cli workload [--json] [--smoke] [--seed N] [--requests N]
    python -m repro.cli isolation [--json] [--smoke] [--seed N]

The first run of the model-backed experiments trains the benchmark model
(~4 minutes) and caches it under ``.bench_cache/``.

``metrics`` is not an experiment: it runs a small scripted serving
workload (train → profile → classify → infer, including one
deadline-constrained episode) with :mod:`repro.telemetry` enabled and
prints the telemetry export — per-stage latency p50/p95/p99, batch
occupancy, deadline misses, per-endpoint request counts and the scheduler
trace tally.

``chaos`` drives the same serving stack under a seeded
:class:`repro.faults.FaultPlan` (worker crashes, latency spikes, dropped
results, transient endpoint errors) and prints the fault log, the
recovery counters (retries, respawns, re-dispatches, degraded responses)
and the invariant checks the chaos test suite asserts.  The same seed
always produces the same fault sequence.

``overload`` runs the open-loop overload sweep (docs/OVERLOAD.md):
offered load swept past capacity, a FIFO/no-admission baseline against
the utility scheduler under :class:`repro.admission.AdmissionConfig`
bounds; exits non-zero if graceful degradation fails (utility below the
baseline or queue bound exceeded past 2x capacity).  ``--smoke`` swaps
the trained benchmark artifacts for synthetic oracles so CI can run the
sweep in seconds.

``cluster`` runs the replicated-serving scaling sweep (docs/CLUSTER.md):
the same closed-loop classify workload against 1/2/4 router-fronted
replicas, then a kill-one-replica failover episode at the largest
cluster; exits non-zero unless N=4 throughput reaches 2.5x N=1 and the
kill episode loses zero requests while keeping >= 80%% of the no-kill
episode's utility.

``autoscale`` runs the elastic-serving gate (docs/CLUSTER.md): the same
seeded diurnal + flash-crowd trace against static-small, static-large
and an autoscaled fleet; exits non-zero unless autoscaling reaches >=
95%% of static-large goodput at <= 70%% of its replica-seconds, strictly
beats static-small goodput, and loses zero requests — including a
drain episode whose victim is SIGKILLed mid-drain.  ``--smoke`` shortens
the trace and keeps the chaos episode on the thread backend for CI.

``workload`` pushes a million-request seeded multi-tenant trace (diurnal
cycles, MMPP bursts, a correlated flash crowd over all 11 endpoints)
through the DES workload engine and the real admission controller with
weighted-fair tenant quotas (docs/WORKLOAD.md); exits non-zero unless
per-tenant accounting is exact.

``isolation`` runs the tenant-isolation gate (docs/WORKLOAD.md): >= 1M
DES requests plus >= 100k replayed against a real cluster, per-tenant
accounting exact everywhere; exits non-zero unless an abuser at 10x its
quota leaves every compliant tenant's p99 within 1.25x and goodput
within 5%% of running alone — and unless the same contention *without*
quotas demonstrably violates those bounds (the non-vacuity check).
``--smoke`` scales the volume floors down for CI.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict


def _table1() -> str:
    from .experiments.table1 import format_table1, run_table1

    return format_table1(run_table1())


def _fig2() -> str:
    from .experiments.fig2 import format_fig2, run_fig2

    return format_fig2(run_fig2())


def _table2() -> str:
    from .experiments.table2 import format_table2, run_table2

    return format_table2(run_table2())


def _table3() -> str:
    from .experiments.table3 import format_table3, run_table3

    return format_table3(run_table3())


def _fig4() -> str:
    from .experiments.fig4 import format_fig4, run_fig4

    return format_fig4(run_fig4())


def _table4() -> str:
    from .experiments.table4 import format_table4, run_table4

    return format_table4(run_table4())


def _resilience() -> str:
    from .experiments.ablations import run_resilience

    result = run_resilience()
    return "\n".join(f"{k:24} {v:.3f}" for k, v in result.items())


def _service_classes() -> str:
    from .experiments.extensions import run_service_classes

    result = run_service_classes()
    lines = []
    for name, row in result.items():
        lines.append(
            f"{name:12} accuracy={row['accuracy']:.3f} "
            f"interactive-served={row['interactive_service_rate']:.3f} "
            f"revenue={row['revenue']:.0f}"
        )
    return "\n".join(lines)


def _partitioning() -> str:
    from .experiments.extensions import run_partitioning

    rows = run_partitioning()
    lines = [f"{'kbps':>8} {'cut':>4} {'E[latency] ms':>14} {'P(offload)':>11}"]
    for r in rows:
        lines.append(
            f"{r['bandwidth_kbps']:>8.0f} {r['cut']:>4} "
            f"{r['expected_latency_ms']:>14.1f} {r['offload_probability']:>11.2f}"
        )
    return "\n".join(lines)


def run_metrics_workload(seed: int = 0):
    """Scripted serving workload under an enabled telemetry session.

    Returns the :class:`repro.telemetry.Telemetry` session after training a
    tiny staged model and serving it through every hot endpoint: profile,
    micro-batched classify, a comfortably-deadlined batched infer, and a
    deliberately tight-deadlined infer so deadline-miss accounting shows up.
    The caller owns the session (``telemetry.disable()`` when done).
    """
    import numpy as np

    from . import telemetry
    from .datasets import SyntheticImageConfig, make_image_dataset
    from .nn.resnet import StagedResNetConfig
    from .service import (
        ClassifyRequest,
        EugeneService,
        InferRequest,
        ProfileRequest,
        TrainRequest,
    )

    session = telemetry.enable()
    data = make_image_dataset(
        240, SyntheticImageConfig(num_classes=4, image_size=8, seed=3), seed=seed
    )
    service = EugeneService(seed=seed)
    trained = service.train(
        TrainRequest(
            inputs=data.inputs,
            labels=data.labels,
            model_config=StagedResNetConfig(
                num_classes=4, image_size=8, stage_channels=(4, 8),
                blocks_per_stage=1, seed=seed,
            ),
            epochs=3,
            name="metrics-demo",
        )
    )
    service.profile(ProfileRequest(model_id=trained.model_id))
    service.classify(
        ClassifyRequest(
            model_id=trained.model_id, inputs=data.inputs[:32], micro_batch=8
        )
    )
    service.infer(
        InferRequest(
            model_id=trained.model_id,
            inputs=data.inputs[:12],
            latency_constraint_s=30.0,
            num_workers=2,
            max_batch=4,
            drain_window_s=0.005,
        )
    )
    # A deadline nobody can meet for 12 tasks on 2 workers: exercises the
    # eviction daemon and the dispatch-time deadline re-check.
    service.infer(
        InferRequest(
            model_id=trained.model_id,
            inputs=data.inputs[:12],
            latency_constraint_s=0.004,
            num_workers=2,
        )
    )
    return session


def _metrics_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="repro metrics",
        description="Run a scripted serving workload and print its telemetry.",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    parser.add_argument(
        "--events", action="store_true", help="include raw trace events (JSON only)"
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    from . import telemetry

    try:
        session = run_metrics_workload(seed=args.seed)
        if args.json:
            print(telemetry.to_json(session, trace_events=args.events))
        else:
            print(telemetry.render_text(session))
    finally:
        telemetry.disable()
    return 0


def run_chaos_workload(seed: int = 0, episodes: int = 4):
    """Scripted chaos workload: serving traffic under a seeded fault plan.

    Trains a tiny staged model, arms a :class:`repro.faults.FaultPlan`
    derived from ``seed`` (worker crashes/hangs/latency at the runtime
    stage site, dispatch latency, transient errors at the service and
    client infer/classify sites), then drives ``episodes`` rounds of
    client→service→runtime traffic.  Every failure surfaced to the caller
    must be one of the typed resilience errors — anything else is an
    invariant violation.

    Returns ``(session, plan, report)``: the telemetry session, the armed
    plan (with its fault log), and a summary dict of workload outcomes.
    The caller owns the session (``telemetry.disable()`` when done).
    """
    from . import faults, telemetry
    from .datasets import SyntheticImageConfig, make_image_dataset
    from .nn.resnet import StagedResNetConfig
    from .service import EugeneService
    from .service.client import EugeneClient

    session = telemetry.enable()
    data = make_image_dataset(
        120, SyntheticImageConfig(num_classes=3, image_size=8, seed=3), seed=seed
    )
    service = EugeneService(seed=seed)
    client = EugeneClient(
        service,
        retry_policy=faults.RetryPolicy(
            max_attempts=4, base_delay_s=0.002, timeout_s=30.0
        ),
    )
    trained = client.train(
        data.inputs,
        data.labels,
        model_config=StagedResNetConfig(
            num_classes=3, image_size=8, stage_channels=(4, 8),
            blocks_per_stage=1, seed=seed,
        ),
        epochs=2,
        name="chaos-demo",
    )
    plan = faults.FaultPlan(
        seed=seed,
        specs=[
            faults.FaultSpec("runtime.worker.stage", faults.CRASH, probability=0.04),
            faults.FaultSpec("runtime.worker.stage", faults.DROP, probability=0.05),
            faults.FaultSpec(
                "runtime.worker.stage", faults.LATENCY,
                probability=0.15, latency_s=0.003,
            ),
            faults.FaultSpec(
                "runtime.dispatch", faults.LATENCY,
                probability=0.10, latency_s=0.002,
            ),
            faults.FaultSpec("service.infer", faults.ERROR, probability=0.25),
            faults.FaultSpec("client.classify", faults.ERROR, probability=0.25),
        ],
    )
    report = {
        "episodes": episodes,
        "served": 0,
        "degraded": 0,
        "evicted": 0,
        "typed_failures": 0,
        "invariant_violations": 0,
    }
    with faults.plan_session(plan):
        for _ in range(episodes):
            try:
                response = client.infer(
                    trained.model_id,
                    data.inputs[:8],
                    latency_constraint_s=2.0,
                    num_workers=2,
                    max_batch=4,
                    drain_window_s=0.002,
                )
            except faults.ResilienceError:
                # Bounded, typed failure — the allowed outcome.
                report["typed_failures"] += 1
            except Exception:  # noqa: BLE001 — the invariant being checked
                report["invariant_violations"] += 1
            else:
                report["served"] += len(response.predictions)
                report["degraded"] += sum(response.degraded)
                report["evicted"] += sum(response.evicted)
                for flagged, stage in zip(response.degraded, response.served_stage):
                    if flagged and stage is None:
                        report["invariant_violations"] += 1
            try:
                client.classify(trained.model_id, data.inputs[:16])
            except faults.ResilienceError:
                report["typed_failures"] += 1
            except Exception:  # noqa: BLE001
                report["invariant_violations"] += 1
    return session, plan, report


def _chaos_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="repro chaos",
        description="Drive the serving stack under a seeded fault plan.",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--episodes", type=int, default=4)
    args = parser.parse_args(argv)

    from . import telemetry

    try:
        session, plan, report = run_chaos_workload(
            seed=args.seed, episodes=args.episodes
        )
        if args.json:
            import json

            print(
                json.dumps(
                    {
                        "seed": args.seed,
                        "report": report,
                        "faults": plan.log.counts(),
                        "fault_log": plan.log.export_text().splitlines(),
                        "counters": session.registry.counters(),
                        "trace": session.trace.counts(),
                    },
                    indent=2,
                )
            )
        else:
            print(f"chaos workload (seed={args.seed})")
            print(f"\nfault log ({len(plan.log)} injections):")
            print(plan.log.export_text() or "  (none fired)")
            print("\nreport:")
            for key, value in report.items():
                print(f"  {key:22} {value}")
            print("\nrecovery counters:")
            for name, value in session.registry.counters().items():
                if name.startswith(("client.", "runtime.", "service.degraded")):
                    print(f"  {name:40} {value:g}")
        return 1 if report["invariant_violations"] else 0
    finally:
        telemetry.disable()


def _overload_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="repro overload",
        description=(
            "Open-loop overload sweep: offered load past capacity, with "
            "and without admission control (see docs/OVERLOAD.md)."
        ),
    )
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="use synthetic oracles instead of the trained benchmark "
        "artifacts (seconds instead of minutes; the CI smoke path)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--tasks", type=int, default=None, help="override the task count"
    )
    args = parser.parse_args(argv)

    from .experiments.openloop import OverloadConfig, format_overload, run_overload

    config = OverloadConfig(seed=args.seed)
    if args.tasks is not None:
        config.num_tasks = args.tasks
    results = run_overload(config=config, synthetic=args.smoke)
    if args.json:
        import json

        print(json.dumps(results, indent=2))
    else:
        print(format_overload(results))

    # Graceful-degradation sanity: past capacity, the managed setup must
    # accrue at least the baseline's utility and keep the queue bounded.
    failures = []
    base = {r["load_factor"]: r for r in results["fifo-baseline"]}
    for row in results["admission"]:
        load = row["load_factor"]
        if load < 2.0:
            continue
        if row["utility"] < base[load]["utility"]:
            failures.append(f"utility below baseline at load {load:g}")
        if row["peak_queue_depth"] > config.max_queue_depth:
            failures.append(f"queue bound exceeded at load {load:g}")
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


def _cluster_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="repro cluster",
        description=(
            "Replicated-serving scaling sweep plus a kill-one-replica "
            "failover episode (see docs/CLUSTER.md)."
        ),
    )
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--requests", type=int, default=None, help="override the request count"
    )
    parser.add_argument(
        "--replicas",
        type=int,
        nargs="+",
        default=None,
        metavar="N",
        help=(
            "replica counts to sweep (default: 1 2 4); the largest also "
            "hosts the kill-one-replica failover episode"
        ),
    )
    parser.add_argument(
        "--backend",
        choices=("thread", "process"),
        default="thread",
        help=(
            "replica execution backend: in-process worker threads or "
            "real multiprocessing children with shm tensor transport"
        ),
    )
    parser.add_argument(
        "--work",
        choices=("sleep", "spin"),
        default=None,
        help=(
            "synthetic service-time model (default: sleep for the thread "
            "backend, spin — compute-bound — for the process backend)"
        ),
    )
    parser.add_argument(
        "--record",
        type=str,
        default=None,
        metavar="PATH",
        help="also write the human-readable report to PATH",
    )
    args = parser.parse_args(argv)

    from .experiments.cluster_scaling import (
        ClusterScalingConfig,
        check_cluster_scaling,
        format_cluster_scaling,
        run_cluster_scaling,
    )

    work = args.work
    if work is None:
        work = "spin" if args.backend == "process" else "sleep"
    config = ClusterScalingConfig(
        seed=args.seed, backend=args.backend, work_kind=work
    )
    if args.requests is not None:
        config.num_requests = args.requests
    if args.replicas is not None:
        config.replica_counts = tuple(sorted(set(args.replicas)))
    results = run_cluster_scaling(config)
    report = format_cluster_scaling(results)
    if args.json:
        import json

        print(json.dumps(results, indent=2))
    else:
        print(report)

    failures = check_cluster_scaling(results)
    if args.record:
        from pathlib import Path

        record = Path(args.record)
        record.parent.mkdir(parents=True, exist_ok=True)
        lines = [report]
        lines.extend(f"FAIL: {failure}" for failure in failures)
        record.write_text("\n".join(lines) + "\n")
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


def _anytime_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="repro anytime",
        description=(
            "Gen-2 anytime-serving gate: joint stage budgets + optional-"
            "stage preemption + the anytime contract vs the current EDF "
            "and utility policies at 2-3x overload (see docs/SCHEDULER.md)."
        ),
    )
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="use synthetic oracles instead of the trained benchmark "
        "artifacts (seconds instead of minutes; the CI smoke path)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--tasks", type=int, default=None, help="override the task count"
    )
    parser.add_argument(
        "--record",
        type=str,
        default=None,
        metavar="PATH",
        help="also write the human-readable report to PATH",
    )
    args = parser.parse_args(argv)

    from .experiments.anytime import (
        AnytimeConfig,
        check_anytime,
        format_anytime,
        run_anytime,
    )

    config = AnytimeConfig(seed=args.seed)
    if args.tasks is not None:
        config.num_tasks = args.tasks
    results = run_anytime(config=config, synthetic=args.smoke)
    report = format_anytime(results)
    if args.json:
        import json

        print(json.dumps(results, indent=2))
    else:
        print(report)

    failures = check_anytime(results)
    if args.record:
        from pathlib import Path

        record = Path(args.record)
        record.parent.mkdir(parents=True, exist_ok=True)
        lines = [report]
        lines.extend(f"FAIL: {failure}" for failure in failures)
        record.write_text("\n".join(lines) + "\n")
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


def _autoscale_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="repro autoscale",
        description=(
            "Elastic-serving gate: autoscaled fleet vs static-small and "
            "static-large on a seeded diurnal + flash-crowd trace "
            "(see docs/CLUSTER.md)."
        ),
    )
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "shorter trace and thread-backend chaos/cold-start only, "
            "for CI"
        ),
    )
    parser.add_argument(
        "--steps", type=int, default=None, help="override the trace length"
    )
    parser.add_argument(
        "--max-replicas",
        type=int,
        default=None,
        help="fleet ceiling (and static-large size)",
    )
    parser.add_argument(
        "--record",
        type=str,
        default=None,
        metavar="PATH",
        help="also write the human-readable report to PATH",
    )
    args = parser.parse_args(argv)

    from .experiments.autoscale import (
        AutoscaleExperimentConfig,
        check_autoscale,
        format_autoscale,
        run_autoscale,
    )

    config = AutoscaleExperimentConfig(seed=args.seed, smoke=args.smoke)
    if args.steps is not None:
        config.steps = args.steps
    if args.max_replicas is not None:
        config.max_replicas = args.max_replicas
    results = run_autoscale(config)
    report = format_autoscale(results)
    if args.json:
        import json

        print(json.dumps(results, indent=2))
    else:
        print(report)

    failures = check_autoscale(results)
    if args.record:
        from pathlib import Path

        record = Path(args.record)
        record.parent.mkdir(parents=True, exist_ok=True)
        lines = [report]
        lines.extend(f"FAIL: {failure}" for failure in failures)
        record.write_text("\n".join(lines) + "\n")
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


def _workload_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="repro workload",
        description=(
            "Million-request DES workload: a seeded multi-tenant trace "
            "(diurnal + bursts + flash crowd) pushed through the real "
            "admission controller with weighted-fair tenant quotas "
            "(see docs/WORKLOAD.md)."
        ),
    )
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--smoke", action="store_true", help="~50k requests instead of 1M"
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=None,
        help="target arrival count (default 1,000,000; smoke 50,000)",
    )
    args = parser.parse_args(argv)

    import math as _math

    from .admission import AdmissionController, TenantQuota
    from .workload import (
        EngineConfig,
        TenantSpec,
        WorkloadEngine,
        generate_trace,
    )
    from .workload.trace import FlashCrowd

    target = args.requests or (50_000 if args.smoke else 1_000_000)
    # Six tenants with distinct shapes; rates sum to 2,200/s, so the
    # duration follows from the target arrival count.
    specs = [
        TenantSpec(
            name=f"tenant-{i:02d}",
            rate_per_s=rate,
            weight=weight,
            diurnal_amplitude=0.2,
            diurnal_period_s=60.0,
            diurnal_phase=2.0 * _math.pi * i / 6.0,
            burst_multiplier=1.5 if i % 2 else 1.0,
            burst_fraction=0.05 if i % 2 else 0.0,
            burst_mean_s=5.0,
            flash_group="crowd" if i < 3 else None,
        )
        for i, (rate, weight) in enumerate(
            [(600.0, 3.0), (400.0, 2.0), (400.0, 2.0),
             (300.0, 1.5), (300.0, 1.5), (200.0, 1.0)]
        )
    ]
    total_rate = sum(s.rate_per_s for s in specs)
    duration = target / total_rate
    trace = generate_trace(
        specs,
        duration_s=duration,
        seed=args.seed,
        flash_crowds=(
            FlashCrowd(
                group="crowd",
                start_s=0.4 * duration,
                duration_s=0.1 * duration,
                multiplier=1.4,
            ),
        ),
    )
    admission = AdmissionController(
        per_tenant={s.name: TenantQuota(weight=s.weight) for s in specs},
        tenant_capacity_per_s=1.5 * total_rate,
        tenant_capacity_burst=max(1.0, 0.075 * total_rate),
    )
    engine = WorkloadEngine(
        config=EngineConfig(servers=96),
        admission=admission,
        weights={s.name: s.weight for s in specs},
        seed=args.seed,
    )
    import time as _time

    t0 = _time.perf_counter()
    report = engine.run(trace)
    elapsed = _time.perf_counter() - t0

    failures = []
    if not report.accounting_exact:
        failures.append(
            f"inexact accounting: {report.accounting_detail}"
        )
    if report.total_arrivals < 0.9 * target:
        failures.append(
            f"trace produced only {report.total_arrivals} arrivals "
            f"(target {target})"
        )
    if args.json:
        import json

        out = report.as_dict()
        out["engine_wall_s"] = elapsed
        print(json.dumps(out, indent=2))
    else:
        rate = report.total_arrivals / elapsed if elapsed else 0.0
        print(
            f"workload: {report.total_arrivals:,} arrivals over "
            f"{report.duration_s:.0f}s of trace time -> "
            f"{report.total_admitted:,} admitted, "
            f"{report.total_rejected:,} rejected "
            f"({elapsed:.1f}s wall, {rate:,.0f} req/s through the engine)"
        )
        print(
            f"{'tenant':<12} {'arrivals':>9} {'admitted':>9} "
            f"{'rejected':>9} {'borrowed':>9} {'p99':>9} {'goodput':>9}"
        )
        for name, row in report.tenants.items():
            print(
                f"{name:<12} {row.arrivals:>9,} {row.admitted:>9,} "
                f"{row.rejected:>9,} {row.borrowed:>9,} "
                f"{row.p99_ms:>7.1f}ms {row.goodput_per_s:>7.1f}/s"
            )
        print(
            "accounting: "
            + ("exact" if report.accounting_exact else "INEXACT")
        )
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


def _isolation_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="repro isolation",
        description=(
            "Tenant-isolation gate: >= 1M DES + >= 100k live requests "
            "with exact per-tenant accounting; an abuser at 10x its "
            "quota must not degrade a compliant tenant's p99 by > 25% "
            "nor its goodput by > 5% (see docs/WORKLOAD.md)."
        ),
    )
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="scaled-down volume floors (same phases and gates), for CI",
    )
    parser.add_argument(
        "--record",
        type=str,
        default=None,
        metavar="PATH",
        help="also write the human-readable report to PATH",
    )
    args = parser.parse_args(argv)

    from .experiments.isolation import (
        IsolationExperimentConfig,
        check_isolation,
        format_isolation,
        run_isolation,
    )

    config = IsolationExperimentConfig(seed=args.seed, smoke=args.smoke)
    results = run_isolation(config)
    report = format_isolation(results)
    if args.json:
        import json

        print(json.dumps(results, indent=2))
    else:
        print(report)

    failures = check_isolation(results)
    if args.record:
        from pathlib import Path

        record = Path(args.record)
        record.parent.mkdir(parents=True, exist_ok=True)
        lines = [report]
        lines.extend(f"FAIL: {failure}" for failure in failures)
        record.write_text("\n".join(lines) + "\n")
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


EXPERIMENTS: Dict[str, Callable[[], str]] = {
    "table1": _table1,
    "fig2": _fig2,
    "table2": _table2,
    "table3": _table3,
    "fig4": _fig4,
    "table4": _table4,
    "resilience": _resilience,
    "service-classes": _service_classes,
    "partitioning": _partitioning,
}


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "metrics":
        return _metrics_main(argv[1:])
    if argv and argv[0] == "chaos":
        return _chaos_main(argv[1:])
    if argv and argv[0] == "overload":
        return _overload_main(argv[1:])
    if argv and argv[0] == "anytime":
        return _anytime_main(argv[1:])
    if argv and argv[0] == "cluster":
        return _cluster_main(argv[1:])
    if argv and argv[0] == "autoscale":
        return _autoscale_main(argv[1:])
    if argv and argv[0] == "workload":
        return _workload_main(argv[1:])
    if argv and argv[0] == "isolation":
        return _isolation_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the Eugene paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment names (see 'list'), or 'all', or 'list', "
        "or the 'metrics' subcommand (see 'metrics --help')",
    )
    args = parser.parse_args(argv)

    if args.experiments == ["list"]:
        for name in EXPERIMENTS:
            print(name)
        return 0

    names = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(
            f"unknown experiment(s) {unknown}; choose from {list(EXPERIMENTS)}"
        )
    for name in names:
        print(f"\n{'=' * 70}\n{name}\n{'=' * 70}")
        print(EXPERIMENTS[name]())
    return 0


if __name__ == "__main__":
    sys.exit(main())
