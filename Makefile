# Convenience targets for the Eugene reproduction.

PYTHON ?= python

.PHONY: install test chaos overload overload-smoke anytime anytime-smoke cluster cluster-proc autoscale autoscale-smoke workload workload-smoke isolation isolation-smoke bench bench-fast bench-telemetry bench-admission bench-cluster examples experiments clean

install:
	pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

chaos:
	$(PYTHON) -m pytest tests/faults -q
	$(PYTHON) -m repro.cli chaos --seed 0

overload:
	$(PYTHON) -m repro.cli overload --seed 0

overload-smoke:
	$(PYTHON) -m pytest tests/admission tests/faults/test_overload_invariants.py -q
	$(PYTHON) -m repro.cli overload --smoke --seed 0

# Gen-2 anytime gate: exits non-zero unless gen-2 beats the current EDF and
# utility policies on accrued utility at >=2x overload with zero late
# responses.  Synthetic oracles — the gate is about scheduling dynamics,
# not the trained model (same rationale as the overload smoke path).
anytime:
	$(PYTHON) -m pytest tests/scheduler -q
	$(PYTHON) -m repro.cli anytime --smoke --seed 0 \
		--record bench_results/anytime.txt

anytime-smoke:
	$(PYTHON) -m pytest tests/scheduler/test_gen2.py tests/scheduler/test_utility_conservation.py -q
	$(PYTHON) -m repro.cli anytime --smoke --seed 0

cluster:
	$(PYTHON) -m pytest tests/cluster -q
	$(PYTHON) -m repro.cli cluster --seed 0

cluster-proc:
	$(PYTHON) -m pytest tests/cluster tests/faults/test_proc_chaos.py -q
	$(PYTHON) -m repro.cli cluster --seed 0 --backend process \
		--record bench_results/cluster_scaling_proc.txt

autoscale:
	$(PYTHON) -m pytest tests/cluster tests/faults/test_autoscale_chaos.py -q
	$(PYTHON) -m repro.cli autoscale --seed 0 \
		--record bench_results/autoscale.txt

autoscale-smoke:
	$(PYTHON) -m pytest tests/cluster/test_autoscaler.py tests/cluster/test_autoscaler_cluster.py -q
	$(PYTHON) -m repro.cli autoscale --smoke --seed 0

workload:
	$(PYTHON) -m pytest tests/workload -q
	$(PYTHON) -m repro.cli workload --seed 0

workload-smoke:
	$(PYTHON) -m pytest tests/workload -q
	$(PYTHON) -m repro.cli workload --smoke --seed 0

isolation:
	$(PYTHON) -m pytest tests/workload tests/admission -q
	$(PYTHON) -m repro.cli isolation --seed 0 \
		--record bench_results/isolation.txt

isolation-smoke:
	$(PYTHON) -m pytest tests/workload tests/admission -q
	$(PYTHON) -m repro.cli isolation --smoke --seed 0

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

bench-fast:
	$(PYTHON) -m pytest benchmarks/test_inference_fastpath.py --benchmark-only -s

bench-telemetry:
	$(PYTHON) -m pytest benchmarks/test_telemetry_overhead.py --benchmark-only -s

bench-admission:
	$(PYTHON) -m pytest benchmarks/test_admission_overhead.py --benchmark-only -s

bench-cluster:
	$(PYTHON) -m pytest benchmarks/test_cluster_overhead.py --benchmark-only -s

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/smart_campus.py
	$(PYTHON) examples/edge_caching.py
	$(PYTHON) examples/sensor_fusion.py
	$(PYTHON) examples/utility_scheduling.py

experiments:
	$(PYTHON) -m repro.cli all

clean:
	rm -rf .bench_cache bench_results .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
