#!/usr/bin/env python
"""Smart-refrigerator model caching (the paper's Section II-B scenario).

"In a vision-based item identification system executed in a smart
refrigerator, the most common items entered might end up being beer and pop
bottles.  Recognizing that the most common classification results point to
those specific items, Eugene may retrain a neural network with only those
items as positive examples, compress the result, and download the compressed
model to the device."

This example plays that story end to end:

1. a fridge camera offloads every classification to the Eugene server;
2. the service notices the traffic is dominated by two item classes,
   trains a reduced (narrower, class-subset + "other") model sized to the
   device's parameter budget, and pushes it down;
3. the device serves frequent items locally and treats "other"/low-confidence
   outputs as cache misses that go back to the server.

Run:  python examples/edge_caching.py
"""

import numpy as np

from repro.compression import DeviceProfile, FrequencyTracker
from repro.datasets import SyntheticImageConfig, SyntheticImageGenerator, make_image_dataset
from repro.nn import StagedResNetConfig
from repro.service import EdgeDevice, EugeneClient, EugeneService

DATA = SyntheticImageConfig(num_classes=8, image_size=12, seed=21)
MODEL = StagedResNetConfig(
    num_classes=8, image_size=12, stage_channels=(6, 12, 24), blocks_per_stage=1, seed=0
)
# Classes 0 and 1 play "beer" and "pop bottles".
FREQUENT_CLASSES = (0, 1)
FREQUENT_SHARE = 0.85


def main() -> None:
    service = EugeneService(seed=0)
    client = EugeneClient(service)

    train_set = make_image_dataset(1600, DATA, seed=0)
    print("training the full fridge-item model on the server ...")
    trained = client.train(
        train_set.inputs, train_set.labels, model_config=MODEL, epochs=8, name="fridge"
    )
    full_params = service.registry.get(trained.model_id).model.num_parameters()
    print(f"  full model: {full_params} parameters, "
          f"stage accuracies {[f'{a:.2f}' for a in trained.stage_accuracies]}\n")

    device = EdgeDevice(
        client,
        trained.model_id,
        profile=DeviceProfile(max_parameters=full_params // 3, bandwidth_kbps=500),
        tracker=FrequencyTracker(window=40, coverage_target=0.7, max_classes=3),
        confidence_threshold=0.45,
    )

    # Skewed fridge traffic: mostly beer & pop, occasionally something else.
    generator = SyntheticImageGenerator(DATA)
    rng = np.random.default_rng(3)
    n_queries = 250
    labels = np.where(
        rng.random(n_queries) < FREQUENT_SHARE,
        rng.choice(FREQUENT_CLASSES, size=n_queries),
        rng.integers(2, DATA.num_classes, size=n_queries),
    )
    # sample() draws labels uniformly, so synthesize each query's image by
    # rejection to match the skewed label stream above.
    images = []
    for label in labels:
        while True:
            img, lab, _ = generator.sample(1, rng, difficulty=np.array([0.15]))
            if lab[0] == label:
                images.append(img[0])
                break
    images = np.stack(images)

    correct = 0
    installed_at = None
    for i, (img, label) in enumerate(zip(images, labels)):
        result = device.query(img)
        if installed_at is None and device.cached is not None:
            installed_at = i
            print(f"query {i}: reduced model installed "
                  f"(classes {device.cached.cached_classes}, "
                  f"{device.cached.model.num_parameters()} params, "
                  f"download {device.profile.download_time_ms(device.cached.model.num_parameters()):.0f} ms)")
        if result["prediction"] == label:
            correct += 1

    print(f"\nserved {n_queries} queries: accuracy {correct / n_queries:.1%}")
    print(f"  locally (cache hits):   {device.queries_local}")
    print(f"  offloaded to server:    {device.queries_offloaded}")
    print(f"  local fraction:         {device.local_fraction:.1%}")


if __name__ == "__main__":
    main()
