#!/usr/bin/env python
"""Smart-campus collaborative surveillance (the paper's Section IV scenario).

Eight cameras ring a campus quad watching pedestrians (the PETS2009-style
setup of Table IV).  This example runs:

1. the individual baseline — every camera runs its full 2-DNN pipeline on
   every frame;
2. the collaborative mode — cameras exchange bounding boxes remapped to a
   common coordinate frame and mostly run a cheap prior-guided path;
3. collaboration *brokering* — the server discovers which cameras have
   correlated views purely from their inference streams;
4. a rogue camera attack and the trust-monitor defense (Sec. IV-C).

Run:  python examples/smart_campus.py
"""

from repro.collaborative import (
    CollaborationBroker,
    CollaborativePipeline,
    ResilienceMonitor,
    RogueCamera,
    SSDDetector,
    World,
    WorldConfig,
    ring_of_cameras,
)

FRAMES = 100


def main() -> None:
    world = World(WorldConfig(num_people=12, num_occluders=6, seed=2))
    cameras = ring_of_cameras(8, world)
    print(f"world: {world.config.num_people} pedestrians, "
          f"{len(world.occluders)} occluders, {len(cameras)} cameras\n")

    # 1. Individual baseline.
    individual = CollaborativePipeline(world, cameras, SSDDetector(seed=0))
    ind = individual.evaluate(individual.run_individual(FRAMES))
    print(f"individual:    accuracy {ind.detection_accuracy:.1%}  "
          f"latency {ind.mean_latency_ms:.0f} ms/frame")

    # 2. Collaborative mode.
    collaborative = CollaborativePipeline(world, cameras, SSDDetector(seed=0))
    col_frames = collaborative.run_collaborative(FRAMES)
    col = collaborative.evaluate(col_frames)
    print(f"collaborative: accuracy {col.detection_accuracy:.1%}  "
          f"latency {col.mean_latency_ms:.0f} ms/frame "
          f"({ind.mean_latency_ms / col.mean_latency_ms:.0f}x faster)\n")

    # 3. Brokering: discover overlapping cameras from count streams alone.
    streams = CollaborationBroker.count_streams(col_frames, cameras)
    broker = CollaborationBroker(threshold=0.4)
    discovered = broker.discover(streams)
    print(f"broker discovered {len(discovered)} correlated camera pairs:")
    for result in discovered[:5]:
        print(f"  cameras {result.camera_a} & {result.camera_b}: "
              f"corr={result.correlation:+.2f}")
    print()

    # 4. Rogue camera and the resilience monitor.
    attacked = CollaborativePipeline(
        world, cameras, SSDDetector(seed=0),
        rogues=[RogueCamera(camera_id=99, rate=25.0, seed=7)],
    )
    att = attacked.evaluate(attacked.run_collaborative(FRAMES))
    monitor = ResilienceMonitor()
    defended = CollaborativePipeline(
        world, cameras, SSDDetector(seed=0),
        rogues=[RogueCamera(camera_id=99, rate=25.0, seed=7)],
        monitor=monitor,
    )
    defn = defended.evaluate(defended.run_collaborative(FRAMES))
    print(f"under attack (rogue camera):  accuracy {att.detection_accuracy:.1%} "
          f"({(1 - att.detection_accuracy / col.detection_accuracy):.0%} drop)")
    print(f"with trust monitor:           accuracy {defn.detection_accuracy:.1%} "
          f"(distrusted sources: {monitor.distrusted_sources()})")


if __name__ == "__main__":
    main()
