#!/usr/bin/env python
"""DeepSense-style sensor fusion through the Eugene training service.

The paper's training service (Sec. II-A) ingests time series from multiple
sensors, "aligned and divided into time intervals for processing", and trains
a CNN-based model.  This example:

1. generates a synthetic activity-recognition dataset — two 3-axis sensors
   (think accelerometer + gyroscope), laid out as (interval x time) grids per
   channel, with temporally-correlated (AR(1)) noise;
2. trains a staged model on it through the service;
3. demonstrates the *labeling* service: given only a small labelled seed set,
   the SenseGAN-style adversarial labeler proposes labels for a large
   unlabeled pool, and we measure how close they get to ground truth.

Run:  python examples/sensor_fusion.py
"""

import numpy as np

from repro.datasets import SensorTimeSeriesConfig, make_sensor_dataset
from repro.nn import StagedResNetConfig
from repro.service import EugeneClient, EugeneService

SENSOR_CFG = SensorTimeSeriesConfig(
    num_classes=5,
    num_sensors=2,
    channels_per_sensor=3,
    num_intervals=8,
    samples_per_interval=8,
    noise_scale=1.1,
    seed=13,
)


def main() -> None:
    service = EugeneService(seed=0)
    client = EugeneClient(service)

    # 1 + 2. Train a staged model on multi-sensor time series.
    train_set = make_sensor_dataset(1000, SENSOR_CFG, seed=0)
    test_set = make_sensor_dataset(400, SENSOR_CFG, seed=1)
    model_config = StagedResNetConfig(
        num_classes=SENSOR_CFG.num_classes,
        in_channels=SENSOR_CFG.num_sensors * SENSOR_CFG.channels_per_sensor,
        image_size=SENSOR_CFG.num_intervals,  # square (interval x time) grid
        stage_channels=(8, 16, 24),
        blocks_per_stage=1,
        seed=0,
    )
    print("training the sensor-fusion model ...")
    trained = client.train(
        train_set.inputs, train_set.labels,
        model_config=model_config, epochs=8, name="activity",
    )
    print(f"  stage accuracies (train): "
          f"{[f'{a:.2f}' for a in trained.stage_accuracies]}")

    response = client.infer(trained.model_id, test_set.inputs[:64],
                            latency_constraint_s=60.0, num_workers=4)
    accuracy = np.mean(
        [p == l for p, l in zip(response.predictions, test_set.labels[:64])]
    )
    print(f"  held-out accuracy via the inference service: {accuracy:.1%}\n")

    # 2b. The paper's own training substrate: the DeepSense architecture
    # (per-sensor CNNs -> merge CNN -> GRU -> softmax).
    from repro.nn import DeepSenseConfig

    print("training the DeepSense architecture on the same data ...")
    ds_trained = client.train_deepsense(
        train_set.inputs, train_set.labels,
        model_config=DeepSenseConfig(
            num_sensors=SENSOR_CFG.num_sensors,
            channels_per_sensor=SENSOR_CFG.channels_per_sensor,
            num_intervals=SENSOR_CFG.num_intervals,
            samples_per_interval=SENSOR_CFG.samples_per_interval,
            conv_channels=8, hidden_size=24,
            output_dim=SENSOR_CFG.num_classes, seed=0,
        ),
        steps=200,
    )
    ds_out = client.classify(ds_trained.model_id, test_set.inputs)
    ds_accuracy = float((ds_out.predictions == test_set.labels).mean())
    print(f"  DeepSense held-out accuracy: {ds_accuracy:.1%}\n")

    # 3. Automatic labeling from a small labelled seed.
    seed_set = make_sensor_dataset(80, SENSOR_CFG, seed=2)
    unlabeled = make_sensor_dataset(600, SENSOR_CFG, seed=3)
    print("proposing labels for 600 unlabeled recordings "
          "(SenseGAN-style adversarial labeler) ...")
    labeled = client.label(
        seed_set.inputs, seed_set.labels, unlabeled.inputs,
        num_classes=SENSOR_CFG.num_classes, rounds=120,
    )
    pseudo_accuracy = float((labeled.labels == unlabeled.labels).mean())
    print(f"  pseudo-label accuracy: {pseudo_accuracy:.1%} "
          f"(chance {1 / SENSOR_CFG.num_classes:.1%}), "
          f"mean confidence {labeled.confidences.mean():.2f}")

    baseline = client.label(
        seed_set.inputs, seed_set.labels, unlabeled.inputs,
        num_classes=SENSOR_CFG.num_classes, method="self-training",
    )
    base_accuracy = float((baseline.labels == unlabeled.labels).mean())
    print(f"  self-training baseline:  {base_accuracy:.1%}")


if __name__ == "__main__":
    main()
