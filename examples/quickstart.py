#!/usr/bin/env python
"""Quickstart: train, calibrate, profile and serve a model through Eugene.

This walks the full service loop of the paper's Section II on a small
synthetic workload (a couple of minutes on a laptop):

1. a client uploads labelled images and asks Eugene to *train* a staged model;
2. Eugene *calibrates* the model's confidence (Eq. 4) on held-out data;
3. the client asks for an execution *profile* (per-stage costs);
4. the client submits inference requests, served under the RTDeepIoT
   utility-maximizing scheduler with a latency constraint.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.datasets import SyntheticImageConfig, make_image_dataset
from repro.nn import StagedResNetConfig
from repro.service import EugeneClient, EugeneService

SMALL_MODEL = StagedResNetConfig(
    num_classes=6, image_size=12, stage_channels=(6, 12, 24), blocks_per_stage=1, seed=0
)
DATA = SyntheticImageConfig(num_classes=6, image_size=12, seed=11)


def main() -> None:
    service = EugeneService(seed=0)
    client = EugeneClient(service)

    # 1. Train on client-supplied data.
    train_set = make_image_dataset(1200, DATA, seed=0)
    print("training a 3-stage model on 1200 client images ...")
    trained = client.train(
        train_set.inputs, train_set.labels,
        model_config=SMALL_MODEL, epochs=8, name="quickstart",
    )
    print(f"  model {trained.model_id}: final loss {trained.final_loss:.3f}, "
          f"stage accuracies {[f'{a:.2f}' for a in trained.stage_accuracies]}")

    # 2. Calibrate confidence on a held-out split.
    cal_set = make_image_dataset(800, DATA, seed=1)
    calibrated = client.calibrate(trained.model_id, cal_set.inputs, cal_set.labels)
    for stage, (alpha, before, after) in enumerate(
        zip(calibrated.alphas, calibrated.ece_before, calibrated.ece_after)
    ):
        print(f"  stage {stage + 1}: alpha={alpha:+.2f}  ECE {before:.3f} -> {after:.3f}")

    # 3. Profile per-stage execution costs on the modelled edge device.
    profile = client.profile(trained.model_id)
    print(f"  stage costs (ms): {[f'{t:.1f}' for t in profile.stage_times_ms]} "
          f"(total {profile.total_time_ms:.1f})")

    # 4. Serve inference under the scheduler.
    test_set = make_image_dataset(12, DATA, seed=2)
    response = client.infer(
        trained.model_id, test_set.inputs, latency_constraint_s=20.0, lookahead=1
    )
    correct = sum(
        1 for pred, label in zip(response.predictions, test_set.labels)
        if pred == label
    )
    print(f"served {len(response.predictions)} tasks: "
          f"{correct}/{len(response.predictions)} correct, "
          f"stages executed per task: {response.stages_executed}")


if __name__ == "__main__":
    main()
