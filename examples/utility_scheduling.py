#!/usr/bin/env python
"""Utility-maximizing scheduling under load (the paper's Section III demo).

Builds a staged classifier, fits the GP confidence-curve predictors, then
serves a backlog of classification tasks through the worker-pool simulator
at increasing concurrency, comparing:

- RTDeepIoT-1 (greedy utility scheduling with dynamic GP confidence updates)
- RTDeepIoT-DC-1 (constant-slope confidence extrapolation)
- RR (stage-level round robin)
- FIFO (run each task to completion in arrival order)

and finally shows the Sec. V extension: two service classes (interactive vs
batch) with class-aware scheduling and per-class billing.

Run:  python examples/utility_scheduling.py
"""

import numpy as np

from repro.datasets import SyntheticImageConfig, make_image_dataset
from repro.nn import StagedResNet, StagedResNetConfig, train_staged_model
from repro.nn.training import collect_stage_outputs
from repro.scheduler import (
    BATCH,
    INTERACTIVE,
    ClassAwareRTDeepIoTPolicy,
    FIFOPolicy,
    GPConfidencePredictor,
    PoolSimulator,
    PricingModel,
    RoundRobinPolicy,
    RTDeepIoTPolicy,
    SimulationConfig,
    TaskOracle,
    assign_classes,
)
from repro.scheduler.simulator import run_episodes

MODEL = StagedResNetConfig(
    num_classes=6, image_size=12, stage_channels=(6, 12, 24), blocks_per_stage=1, seed=0
)
DATA = SyntheticImageConfig(num_classes=6, image_size=12, seed=11)


def main() -> None:
    print("training the staged model and fitting confidence curves ...")
    train_set = make_image_dataset(1200, DATA, seed=0)
    test_set = make_image_dataset(600, DATA, seed=1)
    model = StagedResNet(MODEL)
    train_staged_model(model, train_set, epochs=8, lr=1e-2)
    train_outputs = collect_stage_outputs(model, train_set)
    test_outputs = collect_stage_outputs(model, test_set)
    predictor = GPConfidencePredictor(num_classes=6, seed=0).fit(
        train_outputs["confidences"]
    )
    oracles = TaskOracle.table_from_outputs(test_outputs)
    accs = test_outputs["correct"].mean(axis=1)
    print(f"  per-stage accuracy: {[f'{a:.2f}' for a in accs]}\n")

    policies = {
        "RTDeepIoT-1": lambda: RTDeepIoTPolicy(predictor, k=1),
        "RTDeepIoT-DC-1": lambda: RTDeepIoTPolicy(predictor, k=1, dynamic=False),
        "RR": RoundRobinPolicy,
        "FIFO": FIFOPolicy,
    }
    print(f"{'policy':16}" + "".join(f"{f'N={n}':>10}" for n in (2, 5, 10, 20)))
    for name, factory in policies.items():
        row = []
        for concurrency in (2, 5, 10, 20):
            config = SimulationConfig(
                num_workers=4, concurrency=concurrency,
                stage_times=(1.0, 1.0, 1.0), latency_constraint=6.5,
            )
            results = run_episodes(oracles, factory, config,
                                   episodes=4, tasks_per_episode=60, seed=0)
            row.append(float(np.mean([r.accuracy for r in results])))
        print(f"{name:16}" + "".join(f"{100 * a:>9.1f}%" for a in row))

    # ------------------------------------------------------------------
    print("\nservice classes (Sec. V extension): interactive vs batch")
    subset = oracles[:120]
    class_list = assign_classes(len(subset), [INTERACTIVE, BATCH], [0.5, 0.5], seed=1)
    class_map = {i: c for i, c in enumerate(class_list)}
    constraints = [c.latency_constraint for c in class_list]
    config = SimulationConfig(num_workers=2, concurrency=14,
                              stage_times=(1.0, 1.0, 1.0),
                              latency_constraint=BATCH.latency_constraint)
    pricing = PricingModel(class_map)
    for name, policy in (
        ("class-aware", ClassAwareRTDeepIoTPolicy(predictor, class_map, k=1, urgency=2.0)),
        ("class-blind", RTDeepIoTPolicy(predictor, k=1)),
    ):
        sim = PoolSimulator(subset, policy, config,
                            task_latency_constraints=constraints)
        result = sim.run()
        bills = pricing.bill(result.records)
        served = {c: b.served_tasks for c, b in bills.items()}
        revenue = sum(b.revenue for b in bills.values())
        print(f"  {name}: accuracy {result.accuracy:.1%}, served {served}, "
              f"revenue {revenue:.0f}")


if __name__ == "__main__":
    main()
