"""Tests for the CLI driver (light experiments only)."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_experiment_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["not-a-thing"])

    def test_table1_runs(self, capsys):
        """table1 has no model dependency, so it runs fast."""
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "CNN1" in out and "CNN4" in out

    def test_table4_runs(self, capsys):
        assert main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "Collaborative" in out

    def test_registry_complete(self):
        assert {"table1", "table2", "table3", "table4", "fig2", "fig4",
                "resilience", "service-classes", "partitioning"} <= set(EXPERIMENTS)
