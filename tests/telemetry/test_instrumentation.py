"""Telemetry wired through the runtime, simulator, profiler and service."""

import numpy as np
import pytest

from repro import telemetry
from repro.nn.resnet import StagedResNet, StagedResNetConfig
from repro.profiling.cost_model import MobileDeviceCostModel
from repro.profiling.profiler import generate_profiling_samples
from repro.scheduler.policies import FIFOPolicy, RoundRobinPolicy
from repro.scheduler.runtime import RuntimeConfig, StagedInferenceRuntime
from repro.scheduler.simulator import PoolSimulator, SimulationConfig, TaskOracle
from repro.service import ClassifyRequest, EugeneService
from repro.telemetry.trace import ADMIT, COMPLETE, STAGE_DISPATCH


@pytest.fixture(scope="module")
def small_model():
    model = StagedResNet(
        StagedResNetConfig(
            num_classes=5, image_size=8, stage_channels=(4, 8), blocks_per_stage=1
        )
    )
    model.eval()
    return model


@pytest.fixture
def inputs():
    return np.random.default_rng(0).normal(size=(6, 3, 8, 8))


def _run(model, inputs, **config):
    runtime = StagedInferenceRuntime(
        model,
        RoundRobinPolicy(),
        RuntimeConfig(num_workers=2, latency_constraint=60.0, **config),
    )
    runtime.submit(inputs)
    return runtime.run_until_complete()


class TestRuntimeTelemetry:
    def test_disabled_runtime_records_nothing(self, small_model, inputs):
        telemetry.disable()
        results = _run(small_model, inputs)
        assert all(not r.evicted for r in results)
        assert telemetry.active() is None

    def test_counters_and_stage_latency(self, small_model, inputs):
        with telemetry.session() as t:
            results = _run(small_model, inputs, max_batch=3, drain_window=0.01)
            counters = t.registry.counters()
            assert counters["runtime.tasks_submitted"] == len(inputs)
            assert counters["runtime.tasks_completed"] == len(inputs)
            assert counters["runtime.deadline_misses"] == 0
            histograms = t.registry.histograms()
            total_stage_execs = sum(len(r.outcomes) for r in results)
            for stage in range(small_model.num_stages):
                assert histograms[f"runtime.stage_latency_ms.stage{stage}"]["count"] > 0
            # Batch occupancy sums back to the task-stage executions.
            occupancy = histograms["runtime.batch_occupancy"]
            assert occupancy["sum"] == total_stage_execs
            assert occupancy["max"] <= 3

    def test_trace_covers_every_task(self, small_model, inputs):
        with telemetry.session() as t:
            _run(small_model, inputs, max_batch=2)
            admitted = {e.task_id for e in t.trace.events(ADMIT)}
            completed = {e.task_id for e in t.trace.events(COMPLETE)}
            assert admitted == completed == set(range(len(inputs)))
            dispatched = [
                (e.stage, tid)
                for e in t.trace.events(STAGE_DISPATCH)
                for tid in e.task_ids
            ]
            assert sorted(dispatched) == sorted(
                (s, tid)
                for tid in range(len(inputs))
                for s in range(small_model.num_stages)
            )


def _oracles(n, stages=3, seed=0):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n):
        confs = np.sort(rng.uniform(0.3, 0.99, size=stages))
        out.append(
            TaskOracle(
                confidences=tuple(float(c) for c in confs),
                predictions=tuple(int(p) for p in rng.integers(0, 5, size=stages)),
                correct=tuple(bool(b) for b in rng.random(size=stages) < confs),
            )
        )
    return out


class TestSimulatorTelemetry:
    def test_misses_and_completions_match_episode_result(self):
        config = SimulationConfig(
            num_workers=2, concurrency=4, stage_times=(1.0, 1.0, 1.0),
            latency_constraint=4.0,
        )
        with telemetry.session() as t:
            result = PoolSimulator(_oracles(16), FIFOPolicy(), config).run()
            counters = t.registry.counters()
            assert counters["simulator.tasks_submitted"] == 16
            assert counters["simulator.deadline_misses"] == result.num_evicted
            assert counters["simulator.tasks_completed"] == result.num_fully_completed

    def test_utility_accrued_equals_positive_confidence_gains(self):
        config = SimulationConfig(
            num_workers=4, concurrency=4, stage_times=(1.0, 1.0, 1.0),
            latency_constraint=10.0,
        )
        with telemetry.session() as t:
            result = PoolSimulator(_oracles(8), RoundRobinPolicy(), config).run()
            expected = 0.0
            for record in result.records:
                previous = 0.0
                for outcome in record.outcomes:
                    gain = outcome.confidence - previous
                    if gain > 0:
                        expected += gain
                    previous = outcome.confidence
            accrued = t.registry.counters()["simulator.utility_accrued"]
            assert accrued == pytest.approx(expected)


class TestProfilerTelemetry:
    def test_samples_feed_registry(self):
        device = MobileDeviceCostModel()
        with telemetry.session() as t:
            samples = generate_profiling_samples(device, num_samples=20, seed=0)
            assert t.registry.counters()["profiling.samples"] == 20
            hist = t.registry.histograms()["profiling.sample_time_ms"]
            assert hist["count"] == 20
            assert hist["sum"] == pytest.approx(sum(s.time_ms for s in samples))

    def test_no_registry_writes_when_disabled(self):
        telemetry.disable()
        generate_profiling_samples(MobileDeviceCostModel(), num_samples=5)
        with telemetry.session() as t:
            assert "profiling.samples" not in t.registry.counters()


class TestServiceTelemetry:
    def test_classify_attaches_metrics_summary(self, small_model, inputs):
        service = EugeneService(seed=0)
        entry = service.registry.register("m", small_model)
        with telemetry.session() as t:
            response = service.classify(
                ClassifyRequest(model_id=entry.model_id, inputs=inputs, micro_batch=2)
            )
            assert response.metrics is not None
            assert response.metrics["requests"]["classify"] == 1
            assert response.metrics["num_inputs"] == len(inputs)
            assert response.metrics["num_chunks"] == 3
            assert t.registry.histograms()["service.latency_ms.classify"]["count"] == 1

    def test_classify_metrics_none_when_disabled(self, small_model, inputs):
        telemetry.disable()
        service = EugeneService(seed=0)
        entry = service.registry.register("m", small_model)
        response = service.classify(
            ClassifyRequest(model_id=entry.model_id, inputs=inputs)
        )
        assert response.metrics is None
