"""BoundedLabels: high-cardinality label sets cannot grow the registry."""

import pytest

from repro import telemetry
from repro.admission import AdmissionController
from repro.telemetry.metrics import BoundedLabels


class TestBoundedLabels:
    def test_first_capacity_labels_verbatim(self):
        labels = BoundedLabels(3)
        assert [labels.resolve(x) for x in "abc"] == ["a", "b", "c"]
        assert sorted(labels.known()) == ["a", "b", "c"]
        assert labels.overflowed == 0

    def test_novel_labels_past_capacity_collapse(self):
        labels = BoundedLabels(2, overflow="__rest__")
        labels.resolve("a")
        labels.resolve("b")
        assert labels.resolve("c") == "__rest__"
        assert labels.resolve("d") == "__rest__"
        # Known labels keep resolving verbatim after overflow begins.
        assert labels.resolve("a") == "a"
        assert labels.overflowed == 2

    def test_repeat_overflow_label_counted_once_per_resolve(self):
        labels = BoundedLabels(1)
        labels.resolve("a")
        for _ in range(5):
            labels.resolve("z")
        assert labels.overflowed == 5

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            BoundedLabels(0)

    def test_million_distinct_labels_stay_bounded(self):
        # The 1M-tenant regression: memory stays O(capacity), never O(N).
        labels = BoundedLabels(128)
        for i in range(1_000_000):
            labels.resolve(f"tenant-{i}")
        assert len(labels.known()) == 128
        assert labels.overflowed == 1_000_000 - 128


class TestRegistryCardinalityRegression:
    def test_unbounded_tenant_population_bounded_counter_names(self):
        controller = AdmissionController(
            tenant_capacity_per_s=1e9, max_tenant_keys=16
        )
        with telemetry.session() as tel:
            for i in range(50_000):
                decision = controller.admit(
                    "infer", tenant=f"tenant-{i}", now=i * 1e-6
                )
                if decision.admitted:
                    controller.release("infer", tenant=f"tenant-{i}")
            tenant_counters = [
                name
                for name in tel.registry.counters()
                if name.startswith("admission.tenant_admitted.")
            ]
            # 16 exact labels + one overflow bucket, no matter how many
            # distinct tenants pass through.
            assert 0 < len(tenant_counters) <= 17
            # Exact accounting is kept separately and stays complete.
            stats = controller.tenant_stats()
            counted = sum(
                s["admitted"] + s["rejected"] for s in stats.values()
            )
            assert counted == 50_000
