"""The global session lifecycle, the timed decorator, and export formats."""

import json

import pytest

from repro import telemetry


@pytest.fixture(autouse=True)
def clean_global_session():
    telemetry.disable()
    yield
    telemetry.disable()


class TestSessionLifecycle:
    def test_disabled_by_default(self):
        assert telemetry.active() is None
        assert not telemetry.enabled()

    def test_enable_disable(self):
        session = telemetry.enable()
        assert telemetry.active() is session
        assert telemetry.enabled()
        telemetry.disable()
        assert telemetry.active() is None

    def test_enable_is_idempotent(self):
        assert telemetry.enable() is telemetry.enable()

    def test_session_context_restores_previous_state(self):
        outer = telemetry.enable()
        with telemetry.session() as inner:
            assert telemetry.active() is inner
            assert inner is not outer
        assert telemetry.active() is outer

    def test_session_context_restores_disabled_state(self):
        with telemetry.session():
            assert telemetry.enabled()
        assert not telemetry.enabled()


class TestTimedDecorator:
    def test_noop_when_disabled(self):
        @telemetry.timed("thing")
        def endpoint():
            return 42

        assert endpoint() == 42
        # Enabling afterwards shows nothing was recorded.
        with telemetry.session() as t:
            assert t.registry.counters() == {}

    def test_records_counter_and_latency(self):
        @telemetry.timed("thing")
        def endpoint():
            return 42

        with telemetry.session() as t:
            endpoint()
            endpoint()
            assert t.registry.counter("service.requests.thing").value == 2
            hist = t.registry.histogram("service.latency_ms.thing")
            assert hist.count == 2
            assert hist.min >= 0.0

    def test_errors_counted_separately_and_reraised(self):
        @telemetry.timed("thing")
        def endpoint():
            raise RuntimeError("boom")

        with telemetry.session() as t:
            with pytest.raises(RuntimeError):
                endpoint()
            counters = t.registry.counters()
            assert counters["service.errors.thing"] == 1
            # Counted on entry, so the failed request still shows up.
            assert counters["service.requests.thing"] == 1
            assert t.registry.histogram("service.latency_ms.thing").count == 0


class TestExport:
    def _populated(self, t):
        t.registry.counter("runtime.deadline_misses").inc(2)
        t.registry.gauge("runtime.queue_depth").set(4)
        t.registry.histogram("runtime.stage_latency_ms.all").observe(1.5)
        t.trace.admit(0.0, 0, deadline=1.0)
        t.trace.deadline_miss(1.2, 0, deadline=1.0)

    def test_render_text_lists_everything(self):
        with telemetry.session() as t:
            self._populated(t)
            text = telemetry.render_text(t)
        assert "runtime.deadline_misses" in text
        assert "runtime.queue_depth" in text
        assert "runtime.stage_latency_ms.all" in text
        for column in ("p50", "p95", "p99"):
            assert column in text
        assert "deadline-miss" in text

    def test_render_text_empty_session(self):
        with telemetry.session() as t:
            text = telemetry.render_text(t)
        assert "(none)" in text

    def test_to_json_round_trips(self):
        with telemetry.session() as t:
            self._populated(t)
            payload = json.loads(telemetry.to_json(t))
        assert payload["counters"]["runtime.deadline_misses"] == 2
        assert payload["trace"]["counts"]["deadline-miss"] == 1
        assert "events" not in payload["trace"]

    def test_to_json_with_events(self):
        with telemetry.session() as t:
            self._populated(t)
            payload = json.loads(telemetry.to_json(t, trace_events=True))
        events = payload["trace"]["events"]
        assert [e["kind"] for e in events] == ["admit", "deadline-miss"]
