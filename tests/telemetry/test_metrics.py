"""Unit tests for the metric instruments and the registry."""

import math
import threading

import numpy as np
import pytest

from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("c")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative_increment(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_thread_safety_under_concurrent_increments(self):
        c = Counter("c")
        threads = [
            threading.Thread(target=lambda: [c.inc() for _ in range(2000)])
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8 * 2000


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("g")
        g.set(5)
        g.inc(2)
        g.dec(3)
        assert g.value == 4.0

    def test_thread_safety_under_concurrent_updates(self):
        g = Gauge("g")

        def bump():
            for _ in range(2000):
                g.inc()

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert g.value == 8 * 2000


class TestHistogram:
    @pytest.mark.parametrize(
        "samples",
        [
            np.random.default_rng(0).lognormal(0.0, 1.0, size=5000),
            np.random.default_rng(1).uniform(0.5, 100.0, size=5000),
            np.random.default_rng(2).exponential(10.0, size=5000),
        ],
        ids=["lognormal", "uniform", "exponential"],
    )
    def test_quantiles_match_numpy_percentiles(self, samples):
        """Relative error of any quantile is bounded by the bucket growth."""
        h = Histogram("latency")
        for v in samples:
            h.observe(v)
        for q in (0.5, 0.9, 0.95, 0.99):
            expected = float(np.percentile(samples, 100 * q))
            assert h.quantile(q) == pytest.approx(expected, rel=0.06)

    def test_count_sum_mean_min_max_exact(self):
        values = [3.0, 1.0, 4.0, 1.5, 9.0]
        h = Histogram("h")
        for v in values:
            h.observe(v)
        assert h.count == 5
        assert h.sum == pytest.approx(sum(values))
        assert h.mean == pytest.approx(np.mean(values))
        assert h.min == 1.0
        assert h.max == 9.0

    def test_empty_histogram_returns_nan_sentinel(self):
        # Regression: quantiles of an empty histogram used to read 0.0,
        # indistinguishable from a real zero-latency observation.  The
        # documented sentinel is nan for every statistic but count/sum.
        h = Histogram("h")
        assert h.count == 0
        assert h.sum == 0.0
        for q in (0.0, 0.5, 0.99, 1.0):
            assert math.isnan(h.quantile(q))
        assert math.isnan(h.mean)
        assert math.isnan(h.min)
        assert math.isnan(h.max)
        summary = h.summary()
        assert summary["count"] == 0.0
        assert summary["sum"] == 0.0
        for key in ("mean", "min", "max", "p50", "p95", "p99"):
            assert math.isnan(summary[key]), key

    def test_nan_sentinel_clears_after_first_observation(self):
        h = Histogram("h")
        h.observe(3.0)
        assert h.quantile(0.5) == pytest.approx(3.0)
        assert h.mean == pytest.approx(3.0)

    def test_quantile_clamped_to_observed_range(self):
        h = Histogram("h")
        h.observe(7.0)
        for q in (0.0, 0.5, 1.0):
            assert h.quantile(q) == pytest.approx(7.0)

    def test_handles_zero_and_negative_values(self):
        h = Histogram("h")
        h.observe(0.0)
        h.observe(-1.0)
        h.observe(5.0)
        assert h.count == 3
        assert h.min == -1.0
        assert h.quantile(0.99) <= 5.0

    def test_quantile_out_of_range_raises(self):
        with pytest.raises(ValueError):
            Histogram("h").quantile(1.5)

    def test_memory_is_bucket_bounded(self):
        """10k observations over 6 decades occupy O(buckets), not O(n)."""
        h = Histogram("h")
        for v in np.random.default_rng(0).lognormal(2.0, 2.0, size=10000):
            h.observe(v)
        assert len(h._buckets) < 600

    def test_thread_safe_observe(self):
        h = Histogram("h")

        def observe_many(seed):
            rng = np.random.default_rng(seed)
            for v in rng.uniform(1.0, 10.0, size=1000):
                h.observe(v)

        threads = [threading.Thread(target=observe_many, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.count == 6000

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Histogram("h", lo=0.0)
        with pytest.raises(ValueError):
            Histogram("h", growth=1.0)


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("requests").inc(3)
        reg.gauge("depth").set(2)
        reg.histogram("lat").observe(1.0)
        snap = reg.snapshot()
        assert snap["counters"] == {"requests": 3.0}
        assert snap["gauges"] == {"depth": 2.0}
        assert snap["histograms"]["lat"]["count"] == 1.0
        assert {"p50", "p95", "p99"} <= set(snap["histograms"]["lat"])

    def test_snapshot_sorted_by_name(self):
        reg = MetricsRegistry()
        for name in ("zeta", "alpha", "mid"):
            reg.counter(name).inc()
        assert list(reg.counters()) == ["alpha", "mid", "zeta"]

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_concurrent_get_or_create(self):
        reg = MetricsRegistry()
        instruments = []

        def create():
            instruments.append(reg.counter("shared"))

        threads = [threading.Thread(target=create) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(c is instruments[0] for c in instruments)
