"""Merge semantics of histograms and registries (the cluster view).

Before ``Histogram.merge`` existed, multi-replica metrics silently
reported only one replica: there was no way to combine two sketches, so
any "cluster" summary was really a single registry's.  These tests pin
the merge contract the router's cluster view depends on:

- merged counts are exactly ``count(a) + count(b)`` (property-tested);
- sum/min/max combine exactly; quantiles of the merge match a single
  histogram fed the union of observations (bucket counts add, so the two
  are bit-identical, not merely close);
- mismatched bucket layouts are refused;
- ``MetricsRegistry.merge`` adds counters, sums gauges, merges
  histograms, and creates missing instruments.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry.metrics import Histogram, MetricsRegistry

values = st.floats(
    min_value=1e-9, max_value=1e9, allow_nan=False, allow_infinity=False
)


def filled(name, observations, lo=1e-6, growth=1.05):
    h = Histogram(name, lo=lo, growth=growth)
    for v in observations:
        h.observe(v)
    return h


class TestHistogramMerge:
    @given(a=st.lists(values, max_size=60), b=st.lists(values, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_merged_counts_are_the_sum_of_counts(self, a, b):
        ha, hb = filled("a", a), filled("b", b)
        ha.merge(hb)
        assert ha.count == len(a) + len(b)
        assert hb.count == len(b)  # the source is untouched

    @given(a=st.lists(values, min_size=1, max_size=60),
           b=st.lists(values, min_size=1, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_merge_equals_single_histogram_over_the_union(self, a, b):
        merged = filled("a", a).merge(filled("b", b))
        union = filled("u", a + b)
        assert merged.count == union.count
        assert merged.sum == pytest.approx(union.sum)
        assert merged.min == union.min
        assert merged.max == union.max
        for q in (0.0, 0.25, 0.5, 0.95, 0.99, 1.0):
            assert merged.quantile(q) == pytest.approx(union.quantile(q))

    def test_merging_an_empty_histogram_is_a_no_op(self):
        h = filled("a", [1.0, 2.0, 3.0])
        h.merge(Histogram("empty"))
        assert h.count == 3
        assert h.quantile(0.5) == pytest.approx(2.0, rel=0.06)

    def test_merging_into_an_empty_histogram_copies_the_other(self):
        h = Histogram("empty")
        h.merge(filled("a", [5.0, 7.0]))
        assert h.count == 2
        assert h.min == 5.0
        assert h.max == 7.0

    def test_underflow_buckets_merge_too(self):
        h = filled("a", [0.0, 1.0])
        h.merge(filled("b", [-1.0]))
        assert h.count == 3
        assert h.min == -1.0

    def test_mismatched_bucket_layouts_are_refused(self):
        with pytest.raises(ValueError):
            Histogram("a", growth=1.05).merge(Histogram("b", growth=1.1))
        with pytest.raises(ValueError):
            Histogram("a", lo=1e-6).merge(Histogram("b", lo=1e-3))
        with pytest.raises(TypeError):
            Histogram("a").merge(object())


class TestRegistryMerge:
    def test_counters_add_gauges_sum_histograms_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("requests").inc(3)
        b.counter("requests").inc(4)
        a.gauge("queue_depth").set(2)
        b.gauge("queue_depth").set(5)
        a.histogram("latency_ms").observe(10.0)
        b.histogram("latency_ms").observe(30.0)
        a.merge(b)
        assert a.counter("requests").value == 7
        assert a.gauge("queue_depth").value == 7
        assert a.histogram("latency_ms").count == 2
        assert a.histogram("latency_ms").max == 30.0

    def test_instruments_only_in_the_source_are_created(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.counter("only_b").inc(2)
        b.histogram("lat", lo=1e-3, growth=1.2).observe(1.0)
        a.merge(b)
        assert a.counter("only_b").value == 2
        # the created histogram inherits the source's bucket layout, so a
        # later merge from the same replica cannot be refused
        a.merge(b)
        assert a.histogram("lat", lo=1e-3, growth=1.2).count == 2

    def test_source_registry_is_untouched(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.counter("c").inc(1)
        a.merge(b)
        assert b.counter("c").value == 1
        assert b.snapshot()["counters"] == {"c": 1.0}

    def test_cluster_view_over_three_replicas(self):
        replicas = [MetricsRegistry() for _ in range(3)]
        for i, reg in enumerate(replicas):
            reg.counter("replica.calls").inc(i + 1)
            for v in [1.0 * (i + 1), 2.0 * (i + 1)]:
                reg.histogram("replica.latency_ms").observe(v)
        cluster = MetricsRegistry()
        for reg in replicas:
            cluster.merge(reg)
        assert cluster.counter("replica.calls").value == 6
        assert cluster.histogram("replica.latency_ms").count == 6
        assert cluster.histogram("replica.latency_ms").max == 6.0

    def test_merged_quantiles_report_every_replica(self):
        # The pre-merge failure mode: one replica fast, one slow, and the
        # "cluster" p99 only ever saw the fast one.
        fast, slow = MetricsRegistry(), MetricsRegistry()
        for _ in range(50):
            fast.histogram("latency_ms").observe(1.0)
            slow.histogram("latency_ms").observe(100.0)
        cluster = MetricsRegistry().merge(fast).merge(slow)
        p99 = cluster.histogram("latency_ms").quantile(0.99)
        assert p99 == pytest.approx(100.0, rel=0.06)
        assert not math.isnan(p99)
