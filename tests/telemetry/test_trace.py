"""Unit tests for the typed scheduler trace log."""

import threading

import pytest

from repro.telemetry.trace import (
    ADMIT,
    COMPLETE,
    DEADLINE_MISS,
    EVICT,
    STAGE_DISPATCH,
    TraceEvent,
    TraceLog,
)


class TestTraceEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            TraceEvent(seq=0, t=0.0, kind="teleport")

    def test_to_dict_includes_only_set_fields(self):
        event = TraceEvent(seq=1, t=0.5, kind=ADMIT, task_id=3)
        d = event.to_dict()
        assert d == {"seq": 1, "t": 0.5, "kind": ADMIT, "task_id": 3}


class TestTraceLog:
    def test_typed_helpers_record_their_kinds(self):
        log = TraceLog()
        log.admit(0.0, 1, deadline=5.0)
        log.stage_dispatch(0.1, stage=0, task_ids=(1,))
        log.complete(0.4, 1, stages_done=3)
        log.deadline_miss(0.6, 2, deadline=0.5)
        log.evict(0.6, 2, stages_done=1)
        kinds = [e.kind for e in log.events()]
        assert kinds == [ADMIT, STAGE_DISPATCH, COMPLETE, DEADLINE_MISS, EVICT]

    def test_sequence_numbers_give_total_order(self):
        """Events at identical timestamps (common in the discrete-event
        simulator) must still be totally ordered by seq, in append order."""
        log = TraceLog()
        for tid in range(10):
            log.admit(1.0, tid, deadline=2.0)
        events = log.events()
        assert [e.seq for e in events] == sorted(e.seq for e in events)
        assert [e.task_id for e in events] == list(range(10))

    def test_ordering_preserved_across_kinds(self):
        log = TraceLog()
        log.admit(0.0, 0, deadline=1.0)
        log.stage_dispatch(0.2, stage=0, task_ids=(0,))
        log.complete(0.3, 0, stages_done=1)
        seqs = [e.seq for e in log.events()]
        assert seqs == [0, 1, 2]

    def test_filter_by_kind(self):
        log = TraceLog()
        log.admit(0.0, 0, deadline=1.0)
        log.admit(0.0, 1, deadline=1.0)
        log.complete(0.5, 0, stages_done=2)
        assert len(log.events(ADMIT)) == 2
        assert len(log.events(COMPLETE)) == 1

    def test_counts(self):
        log = TraceLog()
        log.admit(0.0, 0, deadline=1.0)
        log.deadline_miss(1.1, 0, deadline=1.0)
        assert log.counts() == {ADMIT: 1, DEADLINE_MISS: 1}

    def test_bounded_capacity_drops_oldest(self):
        log = TraceLog(capacity=5)
        for tid in range(8):
            log.admit(float(tid), tid, deadline=100.0)
        assert len(log) == 5
        assert log.dropped == 3
        assert [e.task_id for e in log.events()] == [3, 4, 5, 6, 7]
        # Sequence numbers keep counting across drops.
        assert [e.seq for e in log.events()] == [3, 4, 5, 6, 7]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            TraceLog(capacity=0)

    def test_clear(self):
        log = TraceLog()
        log.admit(0.0, 0, deadline=1.0)
        log.clear()
        assert len(log) == 0 and log.dropped == 0

    def test_stage_dispatch_records_batch_size(self):
        log = TraceLog()
        event = log.stage_dispatch(0.1, stage=2, task_ids=(4, 7, 9))
        assert event.task_ids == (4, 7, 9)
        assert event.detail["batch_size"] == 3.0

    def test_concurrent_appends_keep_unique_seq(self):
        log = TraceLog(capacity=100000)

        def append_many(tid):
            for _ in range(2000):
                log.admit(0.0, tid, deadline=1.0)

        threads = [threading.Thread(target=append_many, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        seqs = [e.seq for e in log.events()]
        assert len(seqs) == 12000
        assert len(set(seqs)) == 12000
