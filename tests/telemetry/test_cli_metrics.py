"""Integration: the ``repro metrics`` CLI over a scripted serving workload.

The workload (see :func:`repro.cli.run_metrics_workload`) trains a tiny
staged model, then drives profile / micro-batched classify / two infer
episodes (one with an impossible deadline) — so the export must show the
acceptance quantities end to end: per-stage latency p50/p95/p99, batch
occupancy, deadline-miss count and per-endpoint request counts.
"""

import json

import pytest

from repro import telemetry
from repro.cli import main


@pytest.fixture(scope="module")
def metrics_output():
    code, out = _run_cli(["metrics"])
    assert code == 0
    return out


def _run_cli(argv):
    import contextlib
    import io

    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = main(argv)
    return code, buffer.getvalue()


class TestMetricsCLI:
    def test_per_endpoint_request_counts(self, metrics_output):
        assert "service.requests.train" in metrics_output
        assert "service.requests.classify" in metrics_output
        assert "service.requests.profile" in metrics_output
        assert "service.requests.infer" in metrics_output

    def test_per_stage_latency_quantiles(self, metrics_output):
        assert "runtime.stage_latency_ms.stage0" in metrics_output
        for column in ("p50", "p95", "p99"):
            assert column in metrics_output

    def test_batch_occupancy_and_misses(self, metrics_output):
        assert "runtime.batch_occupancy" in metrics_output
        assert "runtime.deadline_misses" in metrics_output

    def test_trace_tally_present(self, metrics_output):
        assert "stage-dispatch" in metrics_output
        assert "admit" in metrics_output

    def test_session_disabled_after_cli_exit(self, metrics_output):
        assert telemetry.active() is None

    def test_json_export(self):
        code, out = _run_cli(["metrics", "--json"])
        assert code == 0
        payload = json.loads(out)
        counters = payload["counters"]
        assert counters["service.requests.infer"] == 2
        assert counters["service.requests.classify"] == 1
        # The impossible-deadline episode must actually miss deadlines.
        assert counters["runtime.deadline_misses"] > 0
        stage0 = payload["histograms"]["runtime.stage_latency_ms.stage0"]
        assert {"p50", "p95", "p99"} <= set(stage0)
        assert payload["histograms"]["runtime.batch_occupancy"]["max"] >= 2
        assert payload["trace"]["counts"]["deadline-miss"] > 0
