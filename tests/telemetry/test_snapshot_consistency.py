"""Read-consistency of registry snapshots and merges under racing writers.

The cluster view (``ServiceRouter.cluster_snapshot``) folds per-replica
registries together while those replicas keep serving.  Its contract:
every capture — ``snapshot()`` or the implicit capture inside
``merge()`` — freezes *all* instruments of a registry in one critical
section, so an invariant a writer maintains across instruments is never
observed torn.  These tests race real writer threads against readers and
assert the invariant in every observed capture; before the shared-lock
capture existed they failed within a handful of iterations.
"""

import threading

from repro.telemetry.metrics import MetricsRegistry

WRITERS = 4
ROUNDS = 300
SNAPSHOTS = 150


def _race(registry, writer_body, reader_body):
    """Run writer threads against a reader loop; re-raise any failure."""
    stop = threading.Event()
    errors = []

    def writing():
        try:
            for _ in range(ROUNDS):
                writer_body()
        except Exception as exc:  # pragma: no cover - debugging aid
            errors.append(exc)
        finally:
            stop.set()

    writers = [threading.Thread(target=writing) for _ in range(WRITERS)]
    for t in writers:
        t.start()
    try:
        iterations = 0
        while not stop.is_set() or iterations < SNAPSHOTS:
            reader_body()
            iterations += 1
            if iterations >= 100_000:  # safety valve, never hit in practice
                break
    finally:
        for t in writers:
            t.join()
    if errors:
        raise errors[0]


class TestSnapshotConsistency:
    def test_cross_counter_invariant_survives_racing_snapshots(self):
        """Writers inc ``admitted`` then ``served``; a torn capture would
        show served > admitted.  Slack of one in-flight pair per writer."""
        registry = MetricsRegistry()
        admitted = registry.counter("admitted")
        served = registry.counter("served")

        def write():
            admitted.inc()
            served.inc()

        def read():
            snap = registry.snapshot()["counters"]
            a, s = snap.get("admitted", 0), snap.get("served", 0)
            assert a >= s, f"torn snapshot: served {s} > admitted {a}"
            assert a - s <= WRITERS

        _race(registry, write, read)

    def test_counter_histogram_invariant_survives_racing_snapshots(self):
        """The replica serve-loop pattern: count the call, then observe its
        latency.  A snapshot must never show more observations than calls."""
        registry = MetricsRegistry()
        calls = registry.counter("replica.calls.classify")
        latency = registry.histogram("replica.latency_ms")

        def write():
            calls.inc()
            latency.observe(1.0)

        def read():
            snap = registry.snapshot()
            count = snap["counters"].get("replica.calls.classify", 0)
            observed = snap["histograms"].get(
                "replica.latency_ms", {"count": 0}
            )["count"]
            assert count >= observed
            assert count - observed <= WRITERS

        _race(registry, write, read)

    def test_merge_folds_a_consistent_instant_of_a_racing_source(self):
        """``merge`` is the cluster_snapshot primitive: merging a registry
        that is being written concurrently must capture one instant of it,
        not a mid-update smear."""
        source = MetricsRegistry()
        admitted = source.counter("admitted")
        served = source.counter("served")

        def write():
            admitted.inc()
            served.inc()

        def read():
            snap = MetricsRegistry().merge(source).snapshot()["counters"]
            a, s = snap.get("admitted", 0), snap.get("served", 0)
            assert a >= s, f"torn merge: served {s} > admitted {a}"
            assert a - s <= WRITERS

        _race(source, write, read)
