"""Tests for the device cost model and the piecewise-linear profiler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import StagedResNet, StagedResNetConfig
from repro.profiling import (
    ConvLayerSpec,
    MobileDeviceCostModel,
    PiecewiseLinearProfiler,
    TABLE1_CONFIGS,
    generate_profiling_samples,
    stage_execution_times,
)
from repro.profiling.cost_model import TABLE1_TIMES_MS
from repro.profiling.profiler import ProfileSample


class TestConvLayerSpec:
    def test_macs_formula(self):
        spec = ConvLayerSpec(in_channels=2, out_channels=4, kernel=3, input_size=10)
        assert spec.macs == 9 * 2 * 4 * 100
        assert spec.flops == 2 * spec.macs

    def test_strided_output_size(self):
        spec = ConvLayerSpec(in_channels=1, out_channels=1, stride=2, input_size=224)
        assert spec.output_size == 112

    def test_validation(self):
        with pytest.raises(ValueError):
            ConvLayerSpec(in_channels=0, out_channels=4)

    def test_features_align_with_names(self):
        spec = ConvLayerSpec(in_channels=3, out_channels=8)
        assert len(spec.features()) == len(ConvLayerSpec.feature_names())


class TestCostModelTable1:
    """The model must reproduce the paper's Table I anomalies."""

    @pytest.fixture(scope="class")
    def device(self):
        return MobileDeviceCostModel()

    def test_absolute_times_close_to_paper(self, device):
        for name, spec in TABLE1_CONFIGS.items():
            t = device.execution_time_ms(spec)
            assert t == pytest.approx(TABLE1_TIMES_MS[name], rel=0.01), name

    def test_equal_flops_different_time(self, device):
        """CNN1 and CNN2 have identical FLOPs but ~2.6x different time."""
        cnn1, cnn2 = TABLE1_CONFIGS["CNN1"], TABLE1_CONFIGS["CNN2"]
        assert cnn1.flops == cnn2.flops
        ratio = device.execution_time_ms(cnn2) / device.execution_time_ms(cnn1)
        assert ratio == pytest.approx(300.2 / 114.9, rel=0.02)

    def test_fewer_flops_can_take_longer(self, device):
        """CNN3 has fewer FLOPs than CNN4 yet runs slower."""
        cnn3, cnn4 = TABLE1_CONFIGS["CNN3"], TABLE1_CONFIGS["CNN4"]
        assert cnn3.flops < cnn4.flops
        assert device.execution_time_ms(cnn3) > device.execution_time_ms(cnn4)

    def test_cache_cliff_exists(self, device):
        below = ConvLayerSpec(in_channels=96, out_channels=32)
        above = ConvLayerSpec(in_channels=97, out_channels=32)
        per_mac_below = (device.execution_time_ms(below) - 5.0) / below.macs
        per_mac_above = (device.execution_time_ms(above) - 5.0) / above.macs
        assert per_mac_above > 1.5 * per_mac_below

    def test_measurement_noise_seeded(self):
        a = MobileDeviceCostModel(noise=0.05, seed=3)
        b = MobileDeviceCostModel(noise=0.05, seed=3)
        spec = TABLE1_CONFIGS["CNN1"]
        assert a.measure(spec) == b.measure(spec)
        assert a.measure(spec) != MobileDeviceCostModel().execution_time_ms(spec)

    def test_noise_validation(self):
        with pytest.raises(ValueError):
            MobileDeviceCostModel(noise=-1.0)

    def test_energy_and_memory_positive_and_monotone_in_macs(self, device):
        small = ConvLayerSpec(in_channels=4, out_channels=32)
        large = ConvLayerSpec(in_channels=64, out_channels=32)
        assert 0 < device.energy_mj(small) < device.energy_mj(large)
        assert 0 < device.memory_kb(small) < device.memory_kb(large)

    def test_network_time_sums_layers(self, device):
        specs = [TABLE1_CONFIGS["CNN1"], TABLE1_CONFIGS["CNN2"]]
        assert device.network_time_ms(specs) == pytest.approx(
            sum(device.execution_time_ms(s) for s in specs)
        )

    @given(st.integers(1, 256), st.integers(1, 256))
    @settings(max_examples=40, deadline=None)
    def test_property_time_positive(self, cin, cout):
        device = MobileDeviceCostModel()
        t = device.execution_time_ms(ConvLayerSpec(in_channels=cin, out_channels=cout))
        assert t > 0


class TestPiecewiseLinearProfiler:
    @pytest.fixture(scope="class")
    def fitted(self):
        device = MobileDeviceCostModel(noise=0.02, seed=1)
        train = generate_profiling_samples(device, 400, seed=0)
        profiler = PiecewiseLinearProfiler().fit(train)
        test = generate_profiling_samples(device, 120, seed=99)
        return profiler, test

    def test_finds_multiple_regions(self, fitted):
        profiler, _ = fitted
        assert profiler.num_regions() >= 2

    def test_heldout_accuracy_beats_flops_linear(self, fitted):
        """The headline claim of [9]: FLOPs alone is a poor predictor, the
        piecewise-linear profiler is a good one."""
        profiler, test = fitted
        metrics = profiler.evaluate(test)
        assert metrics["mape"] < 0.10
        # Naive single linear model on FLOPs:
        x = np.array([[s.spec.flops, 1.0] for s in test])
        y = np.array([s.time_ms for s in test])
        coef, *_ = np.linalg.lstsq(x, y, rcond=None)
        naive_mape = float(np.abs((x @ coef - y) / y).mean())
        assert metrics["mape"] < naive_mape / 3

    def test_predicts_table1_ordering(self, fitted):
        profiler, _ = fitted
        t = {n: profiler.predict_one(s) for n, s in TABLE1_CONFIGS.items()}
        assert t["CNN2"] > t["CNN1"]
        assert t["CNN3"] > t["CNN4"]

    def test_describe_regions_matches_count(self, fitted):
        profiler, _ = fitted
        assert len(profiler.describe_regions()) == profiler.num_regions()

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            PiecewiseLinearProfiler().predict([TABLE1_CONFIGS["CNN1"]])

    def test_fit_requires_enough_samples(self):
        device = MobileDeviceCostModel()
        samples = generate_profiling_samples(device, 10, seed=0)
        with pytest.raises(ValueError):
            PiecewiseLinearProfiler(min_samples_leaf=20).fit(samples)

    def test_invalid_hyperparams(self):
        with pytest.raises(ValueError):
            PiecewiseLinearProfiler(max_depth=-1)
        with pytest.raises(ValueError):
            PiecewiseLinearProfiler(min_samples_leaf=1)

    def test_generate_samples_validation(self):
        with pytest.raises(ValueError):
            generate_profiling_samples(MobileDeviceCostModel(), 0)


class TestStageCosts:
    def test_stage_times_positive(self):
        model = StagedResNet()
        times = stage_execution_times(model)
        assert len(times) == model.num_stages
        assert all(t > 0 for t in times)

    def test_default_resnet_stages_roughly_equal(self):
        """Our Fig. 3 topology happens to satisfy the paper's equal-stage-time
        assumption within ~10%."""
        times = stage_execution_times(StagedResNet())
        assert max(times) / min(times) < 1.1

    def test_normalize_equalizes_preserving_total(self):
        model = StagedResNet(StagedResNetConfig(stage_channels=(4, 32), blocks_per_stage=2))
        raw = stage_execution_times(model)
        norm = stage_execution_times(model, normalize=True)
        assert len(set(norm)) == 1
        assert sum(norm) == pytest.approx(sum(raw))
