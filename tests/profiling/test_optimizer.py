"""Tests for profiling-driven layer optimization (Sec. II-C payoff)."""

import numpy as np
import pytest

from repro.profiling import (
    ConvLayerSpec,
    MobileDeviceCostModel,
    PiecewiseLinearProfiler,
    TABLE1_CONFIGS,
    generate_profiling_samples,
)
from repro.profiling.optimizer import CandidateLayer, LayerOptimizer


@pytest.fixture(scope="module")
def optimizer():
    device = MobileDeviceCostModel(noise=0.02, seed=1)
    profiler = PiecewiseLinearProfiler().fit(
        generate_profiling_samples(device, 400, seed=0)
    )
    return LayerOptimizer(profiler)


class TestCandidateLayer:
    def make(self, cin, cout, time):
        return CandidateLayer(
            spec=ConvLayerSpec(in_channels=cin, out_channels=cout),
            predicted_time_ms=time,
        )

    def test_dominates_bigger_and_faster(self):
        big_fast = self.make(43, 64, 700.0)
        small_slow = self.make(66, 32, 900.0)
        assert big_fast.capacity > small_slow.capacity
        assert big_fast.dominates(small_slow)
        assert not small_slow.dominates(big_fast)

    def test_no_self_domination(self):
        c = self.make(8, 8, 100.0)
        assert not c.dominates(c)

    def test_equal_capacity_faster_dominates(self):
        a = self.make(8, 32, 100.0)
        b = self.make(8, 32, 200.0)
        assert a.dominates(b)


class TestLayerOptimizer:
    def test_requires_fitted_profiler(self):
        with pytest.raises(ValueError):
            LayerOptimizer(PiecewiseLinearProfiler())

    def test_requires_channel_choices(self, optimizer):
        with pytest.raises(ValueError):
            LayerOptimizer(optimizer.profiler, channel_choices=())

    def test_enumerates_full_grid(self, optimizer):
        ref = TABLE1_CONFIGS["CNN3"]
        candidates = optimizer.enumerate_candidates(ref)
        n = len(optimizer.channel_choices)
        assert len(candidates) == n * n
        assert all(c.spec.kernel == ref.kernel for c in candidates)

    def test_finds_cnn4_like_improvement_over_cnn3(self, optimizer):
        """The paper's exact illustration: starting from CNN3 (66-in, 32-out)
        there exist larger configurations that execute faster."""
        improvements = optimizer.improvements_over(TABLE1_CONFIGS["CNN3"])
        assert improvements
        best = improvements[0]
        assert best.capacity >= TABLE1_CONFIGS["CNN3"].macs
        # And the real device agrees the improvement is real, not a
        # profiler artifact.
        device = MobileDeviceCostModel()
        _, actual = optimizer.verify_on_device(best, device)
        assert actual < device.execution_time_ms(TABLE1_CONFIGS["CNN3"])

    def test_pareto_front_is_nondominated(self, optimizer):
        front = optimizer.pareto_front(TABLE1_CONFIGS["CNN1"])
        assert front
        for a in front:
            for b in front:
                assert not a.dominates(b) or a is b

    def test_pareto_front_sorted_by_time(self, optimizer):
        front = optimizer.pareto_front(TABLE1_CONFIGS["CNN1"])
        times = [c.predicted_time_ms for c in front]
        assert times == sorted(times)

    def test_pareto_capacity_increases_with_time(self, optimizer):
        """Along the front, paying more time must buy more capacity."""
        front = optimizer.pareto_front(TABLE1_CONFIGS["CNN1"])
        capacities = [c.capacity for c in front]
        assert capacities == sorted(capacities)
