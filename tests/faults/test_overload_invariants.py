"""Overload / backpressure invariants under sustained saturation.

Drives the simulator and the service past capacity (with and without a
seeded fault plan in the mix) and asserts the overload contract:

- the arrived-but-unadmitted queue never exceeds its configured bound;
- every rejection is *typed*: a known reason and a non-negative
  retry-after hint, never a silent drop or a bare exception;
- no task is ever both shed and served — shed means zero service;
- the shed/served/evicted partition covers every submitted task exactly
  once;
- the same seed sheds the same tasks (overload handling is deterministic).
"""

import numpy as np
import pytest

from repro import faults, telemetry
from repro.admission import (
    REJECT_REASONS,
    AdmissionConfig,
    AdmissionController,
    EndpointLimits,
)
from repro.faults import BackpressureError, FaultPlan, FaultSpec, RetryPolicy
from repro.nn import StagedResNet, StagedResNetConfig
from repro.scheduler import FIFOPolicy, PoolSimulator, SimulationConfig, TaskOracle
from repro.service import DeleteRequest, EugeneClient, EugeneService, RejectedResponse


@pytest.fixture(autouse=True)
def clean_sessions():
    faults.uninstall()
    telemetry.disable()
    yield
    faults.uninstall()
    telemetry.disable()


def make_oracles(n, seed=0):
    rng = np.random.default_rng(seed)
    oracles = []
    for _ in range(n):
        confs = np.sort(rng.uniform(0.2, 0.95, size=3))
        oracles.append(
            TaskOracle(
                confidences=tuple(float(c) for c in confs),
                predictions=(0, 0, 0),
                correct=tuple(bool(rng.random() < c) for c in confs),
            )
        )
    return oracles


def overloaded_episode(seed, depth=4, num_tasks=24, stage_failure_prob=0.0):
    """~3x capacity open-loop arrivals into a bounded queue."""
    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(rng.exponential(0.1, size=num_tasks)).tolist()
    config = SimulationConfig(
        num_workers=2,
        concurrency=3,
        stage_times=(0.3, 0.3, 0.3),
        latency_constraint=2.0,
        stage_failure_prob=stage_failure_prob,
        failure_seed=seed,
        admission=AdmissionConfig(
            max_queue_depth=depth, degrade_queue_depth=2, degrade_stage_cap=1
        ),
    )
    return PoolSimulator(
        make_oracles(num_tasks, seed=seed),
        FIFOPolicy(),
        config,
        arrival_times=arrivals,
    ).run()


class TestQueueBound:
    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_peak_depth_never_exceeds_the_bound(self, seed):
        result = overloaded_episode(seed, depth=4)
        assert result.peak_queue_depth <= 4

    def test_bound_holds_with_stage_failures_in_the_mix(self):
        # Worker crashes force retries and lengthen the backlog; the
        # ingress bound must hold regardless.
        result = overloaded_episode(3, depth=4, stage_failure_prob=0.2)
        assert result.peak_queue_depth <= 4


class TestShedServedPartition:
    @pytest.mark.parametrize("seed", [0, 5])
    def test_no_task_is_both_shed_and_served(self, seed):
        result = overloaded_episode(seed)
        for record in result.records:
            if record.shed:
                assert record.outcomes == []
                assert not record.evicted

    def test_every_task_is_accounted_for_exactly_once(self):
        result = overloaded_episode(2)
        shed = {r.task_id for r in result.records if r.shed}
        served = {
            r.task_id
            for r in result.records
            if r.outcomes and not r.evicted and not r.shed
        }
        evicted = {r.task_id for r in result.records if r.evicted}
        starved = {
            r.task_id
            for r in result.records
            if not r.shed and not r.evicted and not r.outcomes
        }
        assert shed | served | evicted | starved == set(range(result.num_tasks))
        assert shed.isdisjoint(served)
        assert shed.isdisjoint(evicted)
        assert served.isdisjoint(evicted)

    def test_same_seed_sheds_the_same_tasks(self):
        a = overloaded_episode(4)
        b = overloaded_episode(4)
        assert [r.task_id for r in a.records if r.shed] == [
            r.task_id for r in b.records if r.shed
        ]


class TestTypedRejections:
    def test_every_service_rejection_carries_reason_and_retry_after(self):
        controller = AdmissionController(
            per_endpoint={"delete": EndpointLimits(rate_per_s=0.001, burst=1)}
        )
        service = EugeneService(seed=0, admission=controller)
        tiny = StagedResNetConfig(
            num_classes=4, image_size=8, stage_channels=(4, 8),
            blocks_per_stage=1, seed=0,
        )
        for i in range(6):
            service.registry.register(f"m-{i}", StagedResNet(tiny))
        rejections = []
        for i in range(6):
            response = service.delete(DeleteRequest(model_id=f"m{i + 1}"))
            if isinstance(response, RejectedResponse):
                rejections.append(response)
        assert rejections  # past the burst, every call is refused
        for rejection in rejections:
            assert rejection.reason in REJECT_REASONS
            assert rejection.retry_after_s >= 0.0
            assert rejection.endpoint == "delete"

    def test_rejection_is_typed_even_with_fault_injection_armed(self):
        # A fault plan adding latency at the client transport must not
        # turn a typed rejection into something else.
        plan = FaultPlan(
            seed=0,
            specs=[
                FaultSpec(
                    "client.delete", faults.LATENCY, at=(0, 1), latency_s=0.002
                )
            ],
        )
        faults.install(plan)
        controller = AdmissionController(
            per_endpoint={"delete": EndpointLimits(max_concurrent=1)}
        )
        service = EugeneService(seed=0, admission=controller)
        assert controller.admit("delete").admitted  # hold the only slot
        client = EugeneClient(
            service, retry_policy=RetryPolicy(max_attempts=2, base_delay_s=0.0)
        )
        with pytest.raises(BackpressureError) as excinfo:
            client.delete("whatever")
        assert excinfo.value.reason in REJECT_REASONS
        assert excinfo.value.retry_after_s >= 0.0
        controller.release("delete")

    def test_simulator_rejections_are_traced_with_reasons(self):
        session = telemetry.enable()
        try:
            result = overloaded_episode(1)
            assert result.num_shed > 0
            counters = session.registry.counters()
            assert counters["simulator.tasks_shed"] == result.num_shed
            kinds = session.trace.counts()
            assert kinds.get("load-shed", 0) >= 1
        finally:
            telemetry.disable()
