"""The fault plan: spec validation, determinism, logging, the session."""

import threading

import numpy as np
import pytest

from repro import faults, telemetry
from repro.faults import FaultDecision, FaultPlan, FaultSpec


@pytest.fixture(autouse=True)
def clean_sessions():
    faults.uninstall()
    telemetry.disable()
    yield
    faults.uninstall()
    telemetry.disable()


class TestFaultSpecValidation:
    def test_needs_site(self):
        with pytest.raises(ValueError):
            FaultSpec("", faults.ERROR, probability=0.5)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            FaultSpec("s", "meltdown", probability=0.5)

    def test_probability_range(self):
        with pytest.raises(ValueError):
            FaultSpec("s", faults.ERROR, probability=1.5)

    def test_must_ever_fire(self):
        with pytest.raises(ValueError):
            FaultSpec("s", faults.ERROR)  # probability 0, no schedule

    def test_negative_schedule_index(self):
        with pytest.raises(ValueError):
            FaultSpec("s", faults.ERROR, at=(-1,))

    def test_negative_latency(self):
        with pytest.raises(ValueError):
            FaultSpec("s", faults.LATENCY, at=(0,), latency_s=-0.1)

    def test_zero_max_injections(self):
        with pytest.raises(ValueError):
            FaultSpec("s", faults.ERROR, probability=0.5, max_injections=0)

    def test_schedule_sorted_and_deduped(self):
        spec = FaultSpec("s", faults.ERROR, at=(3, 1, 3, 2))
        assert spec.at == (1, 2, 3)


class TestDeterminism:
    def _drive(self, plan, n=200):
        decisions = []
        for _ in range(n):
            decisions.append(plan.decide("site.a"))
        return decisions

    def test_identical_seeds_identical_fault_sequences(self):
        make = lambda: FaultPlan(
            seed=42, specs=[FaultSpec("site.a", faults.ERROR, probability=0.3)]
        )
        assert self._drive(make()) == self._drive(make())

    def test_different_seeds_differ(self):
        a = FaultPlan(seed=1, specs=[FaultSpec("site.a", faults.ERROR, probability=0.3)])
        b = FaultPlan(seed=2, specs=[FaultSpec("site.a", faults.ERROR, probability=0.3)])
        assert self._drive(a) != self._drive(b)

    def test_decision_is_pure_function_of_site_and_index(self):
        """Interleaving with another site must not change site.a's stream."""
        spec_a = FaultSpec("site.a", faults.ERROR, probability=0.3)
        spec_b = FaultSpec("site.b", faults.ERROR, probability=0.7)
        solo = FaultPlan(seed=7, specs=[spec_a, spec_b])
        solo_decisions = self._drive(solo, 50)
        interleaved = FaultPlan(seed=7, specs=[spec_a, spec_b])
        decisions = []
        for _ in range(50):
            interleaved.decide("site.b")  # interleave invocations
            decisions.append(interleaved.decide("site.a"))
        assert decisions == solo_decisions

    def test_threaded_decisions_match_sequential(self):
        """Thread interleaving cannot change which invocations fault."""
        specs = [FaultSpec("site.a", faults.CRASH, probability=0.25)]
        sequential = FaultPlan(seed=9, specs=specs)
        for _ in range(120):
            sequential.decide("site.a")
        threaded = FaultPlan(seed=9, specs=specs)
        workers = [
            threading.Thread(
                target=lambda: [threaded.decide("site.a") for _ in range(30)]
            )
            for _ in range(4)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert threaded.log.export_text() == sequential.log.export_text()

    def test_empirical_rate_tracks_probability(self):
        plan = FaultPlan(
            seed=0, specs=[FaultSpec("site.a", faults.ERROR, probability=0.2)]
        )
        fired = sum(plan.decide("site.a") is not None for _ in range(2000))
        assert 0.15 < fired / 2000 < 0.25


class TestScheduleAndCaps:
    def test_scheduled_indices_fire_exactly(self):
        plan = FaultPlan(seed=0, specs=[FaultSpec("s", faults.CRASH, at=(0, 3))])
        fired = [plan.decide("s") is not None for _ in range(6)]
        assert fired == [True, False, False, True, False, False]

    def test_first_matching_spec_wins(self):
        plan = FaultPlan(
            seed=0,
            specs=[
                FaultSpec("s", faults.DROP, at=(1,)),
                FaultSpec("s", faults.ERROR, at=(1, 2)),
            ],
        )
        assert plan.decide("s") is None
        assert plan.decide("s").kind == faults.DROP
        assert plan.decide("s").kind == faults.ERROR

    def test_max_injections_caps_firing(self):
        plan = FaultPlan(
            seed=0,
            specs=[FaultSpec("s", faults.ERROR, probability=1.0, max_injections=2)],
        )
        fired = [plan.decide("s") is not None for _ in range(5)]
        assert fired == [True, True, False, False, False]

    def test_duplicate_specs_count_independently(self):
        spec = FaultSpec("s", faults.ERROR, probability=1.0, max_injections=1)
        plan = FaultPlan(seed=0, specs=[spec, spec])
        fired = [plan.decide("s") is not None for _ in range(3)]
        assert fired == [True, True, False]

    def test_unknown_site_is_noop(self):
        plan = FaultPlan(seed=0, specs=[FaultSpec("s", faults.ERROR, at=(0,))])
        assert plan.decide("elsewhere") is None
        assert plan.invocations("elsewhere") == 0

    def test_latency_carried_only_for_stall_kinds(self):
        plan = FaultPlan(
            seed=0,
            specs=[
                FaultSpec("a", faults.LATENCY, at=(0,), latency_s=0.5),
                FaultSpec("b", faults.ERROR, at=(0,), latency_s=0.5),
            ],
        )
        assert plan.decide("a").latency_s == 0.5
        assert plan.decide("b").latency_s == 0.0


class TestFaultLog:
    def test_export_sorted_by_site_then_index(self):
        plan = FaultPlan(
            seed=0,
            specs=[
                FaultSpec("zz", faults.ERROR, at=(0,)),
                FaultSpec("aa", faults.DROP, at=(1,)),
            ],
        )
        plan.decide("zz")
        plan.decide("aa")
        plan.decide("aa")
        lines = plan.log.export_text().splitlines()
        assert lines == ["aa\t1\tdrop\t0.000000", "zz\t0\terror\t0.000000"]

    def test_counts_and_len(self):
        plan = FaultPlan(seed=0, specs=[FaultSpec("s", faults.ERROR, at=(0, 1))])
        plan.decide("s")
        plan.decide("s")
        plan.decide("s")
        assert plan.log.counts() == {"s": 2}
        assert len(plan.log) == 2

    def test_reset_clears_counters_and_log(self):
        plan = FaultPlan(seed=0, specs=[FaultSpec("s", faults.ERROR, at=(0,))])
        plan.decide("s")
        plan.reset()
        assert len(plan.log) == 0
        assert plan.invocations("s") == 0
        assert plan.decide("s") is not None  # index 0 again


class TestSessionLifecycle:
    def test_disarmed_by_default(self):
        assert faults.active() is None
        assert not faults.armed()
        assert faults.inject("anything") is None

    def test_install_uninstall(self):
        plan = faults.install(FaultPlan(seed=0, specs=[]))
        assert faults.active() is plan
        faults.uninstall()
        assert faults.active() is None

    def test_plan_session_restores_previous(self):
        outer = faults.install(FaultPlan(seed=1, specs=[]))
        with faults.plan_session(FaultPlan(seed=2, specs=[])) as inner:
            assert faults.active() is inner
        assert faults.active() is outer

    def test_inject_consults_installed_plan(self):
        with faults.plan_session(
            FaultPlan(seed=0, specs=[FaultSpec("s", faults.DROP, at=(0,))])
        ):
            assert faults.inject("s").kind == faults.DROP
        assert faults.inject("s") is None


class TestPerform:
    def test_none_passthrough(self):
        assert faults.perform(None) is None

    def test_latency_sleeps_then_clears(self):
        import time

        d = FaultDecision("s", 0, faults.LATENCY, latency_s=0.02)
        start = time.perf_counter()
        assert faults.perform(d) is None
        assert time.perf_counter() - start >= 0.015

    def test_error_raises_transient(self):
        with pytest.raises(faults.TransientServiceError):
            faults.perform(FaultDecision("s", 3, faults.ERROR))

    def test_crash_raises_worker_crash(self):
        with pytest.raises(faults.WorkerCrash):
            faults.perform(FaultDecision("s", 0, faults.CRASH))

    def test_drop_and_corrupt_returned_for_site_handling(self):
        for kind in (faults.DROP, faults.CORRUPT):
            d = FaultDecision("s", 0, kind)
            assert faults.perform(d) is d


class TestTelemetryIntegration:
    def test_decisions_recorded_as_counters_and_trace(self):
        plan = FaultPlan(
            seed=0, specs=[FaultSpec("site.x", faults.CRASH, at=(0, 1))]
        )
        with telemetry.session() as tel:
            plan.decide("site.x")
            plan.decide("site.x")
            plan.decide("site.x")  # index 2: no fault
            counters = tel.registry.counters()
            assert counters["faults.injected.site.x"] == 2
            assert counters["faults.injected.kind.crash"] == 2
            events = tel.trace.events(telemetry.FAULT_INJECT)
            assert len(events) == 2
            assert events[0].label == "site.x:crash"
            assert events[0].detail["invocation"] == 0.0

    def test_no_telemetry_no_error(self):
        plan = FaultPlan(seed=0, specs=[FaultSpec("s", faults.ERROR, at=(0,))])
        assert plan.decide("s") is not None  # must not blow up untelemetered


class TestEndpointDecorator:
    def test_disarmed_passthrough(self):
        @faults.endpoint("service.thing")
        def thing():
            return 42

        assert thing() == 42

    def test_armed_error_raises_and_counts_in_service_errors(self):
        @telemetry.timed("thing")
        @faults.endpoint("service.thing")
        def thing():
            return 42

        plan = FaultPlan(
            seed=0, specs=[FaultSpec("service.thing", faults.ERROR, at=(0,))]
        )
        with telemetry.session() as tel, faults.plan_session(plan):
            with pytest.raises(faults.TransientServiceError):
                thing()
            assert thing() == 42  # invocation 1: clean
            counters = tel.registry.counters()
            assert counters["service.errors.thing"] == 1
            assert counters["service.requests.thing"] == 2
