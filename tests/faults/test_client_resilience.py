"""EugeneClient's retry/breaker wiring, exercised against a stub service.

The client never inspects the service object beyond calling its endpoint
methods, so a counting stub isolates the resilience plumbing from model
training.
"""

import numpy as np
import pytest

from repro import faults, telemetry
from repro.faults import (
    CircuitBreaker,
    CircuitOpenError,
    FaultPlan,
    FaultSpec,
    RetriesExhaustedError,
    RetryPolicy,
    TransientServiceError,
)
from repro.service.client import EugeneClient


class StubService:
    """Counts endpoint calls; optionally fails the first N of them."""

    def __init__(self, fail_first=0):
        self.calls = 0
        self.fail_first = fail_first

    def classify(self, request):
        self.calls += 1
        if self.calls <= self.fail_first:
            raise TransientServiceError("stub outage")
        return ("ok", request)


@pytest.fixture(autouse=True)
def clean_sessions():
    faults.uninstall()
    telemetry.disable()
    yield
    faults.uninstall()
    telemetry.disable()


def make_client(service, **retry_kwargs):
    retry_kwargs.setdefault("max_attempts", 3)
    retry_kwargs.setdefault("base_delay_s", 0.0)
    return EugeneClient(service, retry_policy=RetryPolicy(**retry_kwargs))


INPUTS = np.zeros((2, 1, 4, 4))


class TestDisarmedPassthrough:
    def test_single_service_call_and_result_returned(self):
        service = StubService()
        client = make_client(service)
        result, request = client.classify("m", INPUTS)
        assert result == "ok"
        assert request.model_id == "m"
        assert service.calls == 1
        assert client.breaker("classify").state == "closed"


class TestRetries:
    def test_transient_service_errors_retried_to_success(self):
        service = StubService(fail_first=2)
        client = make_client(service)
        result, _ = client.classify("m", INPUTS)
        assert result == "ok"
        assert service.calls == 3

    def test_injected_client_fault_cleared_on_retry(self):
        # The client.<endpoint> site is consulted once per attempt, so a
        # fault scheduled only at invocation 0 clears on the retry.
        service = StubService()
        client = make_client(service)
        plan = FaultPlan(
            seed=0, specs=[FaultSpec("client.classify", faults.ERROR, at=(0,))]
        )
        with telemetry.session() as tel, faults.plan_session(plan):
            result, _ = client.classify("m", INPUTS)
            assert result == "ok"
            assert service.calls == 1  # attempt 0 failed before the service
            assert tel.registry.counters()["client.retries.classify"] == 1
            assert len(tel.trace.events(telemetry.RETRY)) == 1

    def test_retries_bounded_and_typed_when_fault_persists(self):
        service = StubService()
        client = make_client(service)
        plan = FaultPlan(
            seed=0,
            specs=[FaultSpec("client.classify", faults.ERROR, probability=1.0)],
        )
        with faults.plan_session(plan):
            with pytest.raises(RetriesExhaustedError):
                client.classify("m", INPUTS)
        assert service.calls == 0  # every attempt died on the "network"
        assert plan.invocations("client.classify") == 3  # == max_attempts

    def test_validation_errors_are_not_retried(self):
        service = StubService()
        client = make_client(service)
        with pytest.raises(ValueError):
            client.classify("m", np.full((2, 1, 4, 4), np.nan))
        assert service.calls == 0


class TestCircuitBreaker:
    def _hammer(self, client, times):
        for _ in range(times):
            with pytest.raises(RetriesExhaustedError):
                client.classify("m", INPUTS)

    def test_opens_after_threshold_and_fast_fails(self):
        service = StubService()
        client = EugeneClient(
            service,
            retry_policy=RetryPolicy(max_attempts=1, base_delay_s=0.0),
            breaker_factory=lambda: CircuitBreaker(
                failure_threshold=2, cooldown_s=60.0
            ),
        )
        plan = FaultPlan(
            seed=0,
            specs=[FaultSpec("client.classify", faults.ERROR, probability=1.0)],
        )
        with telemetry.session() as tel, faults.plan_session(plan):
            self._hammer(client, 2)
            invocations_when_open = plan.invocations("client.classify")
            with pytest.raises(CircuitOpenError):
                client.classify("m", INPUTS)
            # Fast fail: the open breaker never touched the site again.
            assert plan.invocations("client.classify") == invocations_when_open
            assert tel.registry.counters()["client.breaker_open.classify"] == 1
            assert len(tel.trace.events(telemetry.BREAKER_OPEN)) == 1

    def test_recovers_through_half_open_probe(self):
        service = StubService()
        client = EugeneClient(
            service,
            retry_policy=RetryPolicy(max_attempts=1, base_delay_s=0.0),
            breaker_factory=lambda: CircuitBreaker(
                failure_threshold=1, cooldown_s=0.0  # probe immediately
            ),
        )
        plan = FaultPlan(
            seed=0, specs=[FaultSpec("client.classify", faults.ERROR, at=(0,))]
        )
        with telemetry.session() as tel, faults.plan_session(plan):
            with pytest.raises(RetriesExhaustedError):
                client.classify("m", INPUTS)
            assert client.breaker("classify").state in ("open", "half-open")
            result, _ = client.classify("m", INPUTS)  # the probe, fault cleared
            assert result == "ok"
            assert client.breaker("classify").state == "closed"
            assert len(tel.trace.events(telemetry.BREAKER_CLOSE)) == 1

    def test_breakers_are_per_endpoint(self):
        client = make_client(StubService())
        assert client.breaker("classify") is client.breaker("classify")
        assert client.breaker("classify") is not client.breaker("infer")
