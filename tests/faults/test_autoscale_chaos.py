"""Autoscaling under chaos: drains that die, scale-ups under partition.

The elasticity invariants must survive the same abuse the steady-state
tier does:

- a **SIGKILL mid-drain** (process backend: a real corpse) degrades the
  graceful path to the crash path — the drain still completes, the
  models the evacuation step already copied keep serving, and every shm
  segment is reclaimed;
- **dropped heartbeats during a scale-up** eject a partitioned replica
  while the fleet is growing; traffic keeps flowing and the controller
  does not oscillate — every scale action in its log respects the
  configured cooldowns even with the health plane lying to it.
"""

import os
import signal
import threading

import numpy as np
import pytest

from repro import faults, telemetry
from repro.cluster import (
    HEARTBEAT_SITE,
    Autoscaler,
    AutoscalerConfig,
    RouterConfig,
    VirtualClock,
    make_cluster,
    wait_until,
)
from repro.faults import FaultPlan, FaultSpec
from repro.nn.data import Dataset
from repro.nn.resnet import StagedResNet, StagedResNetConfig
from repro.nn.training import collect_stage_outputs
from repro.scheduler.confidence import GPConfidencePredictor
from repro.service import ClassifyRequest

TINY = StagedResNetConfig(
    num_classes=3, image_size=8, stage_channels=(4, 8), blocks_per_stage=1, seed=0
)


@pytest.fixture(autouse=True)
def clean_sessions():
    faults.uninstall()
    telemetry.disable()
    yield
    faults.uninstall()
    telemetry.disable()


@pytest.fixture(scope="module")
def tiny_model():
    rng = np.random.default_rng(0)
    inputs = rng.normal(size=(16, TINY.in_channels, 8, 8))
    labels = rng.integers(0, 3, size=16)
    model = StagedResNet(TINY)
    dataset = Dataset(inputs, labels)
    predictor = GPConfidencePredictor(num_classes=3, seed=0).fit(
        collect_stage_outputs(model, dataset)["confidences"]
    )
    return model, dataset, predictor


class TestSigkillMidDrain:
    def test_corpse_mid_drain_loses_nothing_and_leaks_nothing(
        self, tiny_model
    ):
        model, dataset, predictor = tiny_model
        config = RouterConfig(replication_factor=2, call_timeout_s=120.0)
        with make_cluster(
            3, backend="process", synthetic_work_s=0.2, config=config
        ) as router:
            gid = router.register_model(
                "mid-drain", model, train_set=dataset, predictor=predictor
            )
            victim = router.holders(gid)[0]
            replica = router.replicas[victim]
            # Give the victim in-flight work so the drain has to wait —
            # the window the SIGKILL lands in.
            probe = replica.submit(
                "classify", ClassifyRequest(model_id=gid, inputs=dataset.inputs[:2])
            )
            assert wait_until(lambda: replica.outstanding >= 1, timeout=10.0)
            result = {}
            drainer = threading.Thread(
                target=lambda: result.update(router.drain_replica(victim))
            )
            drainer.start()
            # Deterministic kill point: after the evacuation step has
            # re-homed the victim's placements onto the survivors.
            assert wait_until(
                lambda: victim not in router.holders(gid), timeout=30.0
            )
            os.kill(replica.pid, signal.SIGKILL)
            drainer.join(timeout=60.0)
            assert not drainer.is_alive()
            assert result["died_mid_drain"]
            counters = router.metrics.counters()
            assert counters.get("router.drains_completed", 0) == 1
            assert counters.get("router.drains_died_midway", 0) == 1
            # Our direct probe rode the corpse and may fail; *routed*
            # traffic must not — the copies evacuation made keep serving.
            with pytest.raises(Exception):
                probe.result(10)
            for _ in range(5):
                response = router.classify(
                    ClassifyRequest(model_id=gid, inputs=dataset.inputs[:2])
                )
                assert len(response.predictions) == 2
            assert victim not in router.replicas
        # The acceptance bar survives the corpse: zero leaked blocks,
        # including segments owned by the child that never shut down.
        for r in router.replicas.values():
            r.assert_no_shm_leaks()


class TestHeartbeatFaultsDuringScaleUp:
    def _config(self):
        return AutoscalerConfig(
            min_replicas=1,
            max_replicas=4,
            target_outstanding_per_replica=1.0,
            hysteresis_up=1,
            hysteresis_down=2,
            up_cooldown_s=1.0,
            down_cooldown_s=4.0,
            max_step_up=2,
            max_step_down=1,
        )

    def test_partition_during_scale_up_no_loss_no_oscillation(
        self, tiny_model
    ):
        model, dataset, predictor = tiny_model
        clock = VirtualClock()
        config = self._config()
        # r0 pings first every heartbeat round; the fleet grows from 2
        # to 4 after round one (the controller reacts to the pressure
        # below), so r0's beats land at site invocations 0, 2, 6 — all
        # dropped, ejecting it (max_missed_heartbeats=3) mid-scale-up.
        plan = FaultPlan(
            seed=0,
            specs=[FaultSpec(HEARTBEAT_SITE, faults.DROP, at=(0, 2, 6))],
        )
        with make_cluster(
            2, clock=clock, config=RouterConfig(replication_factor=2)
        ) as router:
            gid = router.register_model(
                "partitioned", model, train_set=dataset, predictor=predictor
            )
            scaler = Autoscaler(router, config, clock=clock)
            try:
                # Sustained pressure pinned on r1 only: r0 must stay free
                # so re-replication off the ejected partition and the
                # traffic below never queue behind a held worker.
                gate = threading.Event()
                blockers = [
                    router.replicas["r1"].execute(gate.wait) for _ in range(4)
                ]
                assert wait_until(
                    lambda: router.replicas["r1"].outstanding >= 4,
                    timeout=5.0,
                )
                request = ClassifyRequest(
                    model_id=gid, inputs=dataset.inputs[:2]
                )
                with faults.plan_session(plan):
                    for _ in range(4):
                        router.tick()
                        scaler.step()
                        clock.advance(1.1)
                        # Traffic flows throughout the partition + growth.
                        response = router.classify(request)
                        assert len(response.predictions) == 2
                assert router.ejected() == ["r0"]
                assert router.replicas["r0"].alive  # partitioned, not dead
                ups = [
                    d
                    for d in scaler.decision_log()
                    if d["action"] == "scale_up"
                ]
                assert ups, "sustained pressure must have grown the fleet"
                gate.set()
                for b in blockers:
                    b.result(5.0)
                # Quiet phase: let the controller settle back down.
                for _ in range(8):
                    clock.advance(2.5)
                    scaler.step()
                    response = router.classify(request)
                    assert len(response.predictions) == 2
                assert len(router.active_replica_ids()) == config.min_replicas
                log = scaler.decision_log()
                actions = [d for d in log if d["action"] != "hold"]
                # No oscillation: every consecutive pair of scale actions
                # respects the tighter of the two cooldowns, and every
                # scale_down waits out the full down cooldown since the
                # previous action of either direction.
                for a, b in zip(actions, actions[1:]):
                    gap = b["t"] - a["t"]
                    assert gap >= config.up_cooldown_s, (a, b)
                    if b["action"] == "scale_down":
                        assert gap >= config.down_cooldown_s, (a, b)
                downs = [d for d in actions if d["action"] == "scale_down"]
                assert downs, "the idle fleet must eventually shrink"
            finally:
                scaler.finalize()
