"""Chaos tests for the staged-inference runtime's recovery machinery.

Crashed workers respawn, lost items are reaped and re-dispatched, corrupt
payloads are rejected before any client sees them, and stale late results
are discarded — all under seeded, deterministic fault plans.  The model
is untrained (FIFO scheduling needs no confidence predictor); these tests
exercise the scheduler, not the network.
"""

import numpy as np
import pytest

from repro import faults, telemetry
from repro.faults import FaultPlan, FaultSpec
from repro.nn import StagedResNet, StagedResNetConfig
from repro.scheduler import FIFOPolicy, RuntimeConfig, StagedInferenceRuntime
from repro.scheduler.runtime import DISPATCH_SITE, WORKER_STAGE_SITE

TINY = StagedResNetConfig(
    num_classes=3, in_channels=1, image_size=8, stage_channels=(4, 8),
    blocks_per_stage=1, seed=0,
)


@pytest.fixture(autouse=True)
def clean_sessions():
    faults.uninstall()
    telemetry.disable()
    yield
    faults.uninstall()
    telemetry.disable()


@pytest.fixture(scope="module")
def model():
    return StagedResNet(TINY)


def make_runtime(model, **overrides):
    overrides.setdefault("num_workers", 2)
    overrides.setdefault("latency_constraint", 30.0)
    overrides.setdefault("item_timeout", 0.2)
    return StagedInferenceRuntime(model, FIFOPolicy(), RuntimeConfig(**overrides))


def inputs(n=4):
    return np.random.default_rng(0).normal(size=(n, 1, 8, 8))


def assert_outcomes_monotone(results):
    """Each task's executed stages strictly increase — no stage ever
    applied twice (the double-apply hazard of requeued lost items)."""
    for r in results:
        stages = [o.stage for o in r.outcomes]
        assert stages == sorted(set(stages)), stages


class TestWorkerCrashRecovery:
    def test_crashed_worker_respawned_and_tasks_complete(self, model):
        plan = FaultPlan(
            seed=0, specs=[FaultSpec(WORKER_STAGE_SITE, faults.CRASH, at=(0,))]
        )
        runtime = make_runtime(model)
        runtime.submit(inputs())
        with telemetry.session() as tel, faults.plan_session(plan):
            results = runtime.run_until_complete()
            counters = tel.registry.counters()
            assert counters["runtime.worker_respawns"] >= 1
            assert counters["runtime.items_lost"] >= 1
        assert all(r.completed for r in results)
        assert all(not r.evicted for r in results)
        assert_outcomes_monotone(results)

    def test_multiple_crashes_still_quiesce(self, model):
        plan = FaultPlan(
            seed=3,
            specs=[FaultSpec(WORKER_STAGE_SITE, faults.CRASH, at=(0, 2, 4))],
        )
        runtime = make_runtime(model)
        runtime.submit(inputs(6))
        with faults.plan_session(plan):
            results = runtime.run_until_complete()
        assert len(results) == 6
        assert all(r.completed for r in results)


class TestDroppedResults:
    def test_dropped_item_reaped_and_reexecuted(self, model):
        plan = FaultPlan(
            seed=0, specs=[FaultSpec(WORKER_STAGE_SITE, faults.DROP, at=(0, 1))]
        )
        runtime = make_runtime(model)
        runtime.submit(inputs())
        with telemetry.session() as tel, faults.plan_session(plan):
            results = runtime.run_until_complete()
            assert tel.registry.counters()["runtime.items_lost"] >= 2
            assert len(tel.trace.events(telemetry.ITEM_RETRY)) >= 2
        assert all(r.completed for r in results)
        assert_outcomes_monotone(results)


class TestCorruptPayloads:
    def test_nan_confidences_never_reach_results(self, model):
        plan = FaultPlan(
            seed=0, specs=[FaultSpec(WORKER_STAGE_SITE, faults.CORRUPT, at=(0,))]
        )
        runtime = make_runtime(model)
        runtime.submit(inputs())
        with telemetry.session() as tel, faults.plan_session(plan):
            results = runtime.run_until_complete()
            assert tel.registry.counters()["runtime.corrupt_results"] == 1
        assert all(r.completed for r in results)
        for r in results:
            for outcome in r.outcomes:
                assert np.isfinite(outcome.confidence)
                assert 0.0 <= outcome.confidence <= 1.0


class TestHungWorkersAndStaleResults:
    def test_late_result_of_reaped_item_discarded(self, model):
        # One worker, hung on the very first item far past item_timeout:
        # the watchdog reaps and re-queues the item while the worker
        # sleeps; when the worker finally reports, its item id is gone —
        # the result is stale and must be discarded, never double-applying
        # a stage.  Single-worker keeps the invocation order deterministic.
        plan = FaultPlan(
            seed=0,
            specs=[
                FaultSpec(WORKER_STAGE_SITE, faults.HANG, at=(0,), latency_s=0.3)
            ],
        )
        runtime = make_runtime(model, num_workers=1, item_timeout=0.04)
        runtime.submit(inputs(2))
        with telemetry.session() as tel, faults.plan_session(plan):
            results = runtime.run_until_complete()
            assert tel.registry.counters()["runtime.stale_results"] >= 1
        assert all(r.completed for r in results)
        assert_outcomes_monotone(results)


class TestDispatchLatency:
    def test_dispatch_stalls_are_survived(self, model):
        plan = FaultPlan(
            seed=0,
            specs=[
                FaultSpec(DISPATCH_SITE, faults.LATENCY, probability=0.5,
                          latency_s=0.005)
            ],
        )
        runtime = make_runtime(model)
        runtime.submit(inputs())
        with faults.plan_session(plan):
            results = runtime.run_until_complete()
        assert all(r.completed for r in results)


class TestGracefulDegradation:
    def test_evicted_mid_flight_task_is_flagged_degraded(self, model):
        # One worker, FIFO: the invocation order is deterministic —
        # (t0,s0)=0, (t0,s1)=1, (t1,s0)=2, (t1,s1)=3.  Crashing t1's
        # stage-1 execution (and its one pre-deadline re-dispatch) leaves
        # t1 with a stage-0 outcome only when the deadline strikes: a
        # degraded response, served from the early exit.
        plan = FaultPlan(
            seed=0,
            specs=[FaultSpec(WORKER_STAGE_SITE, faults.CRASH, at=(3, 4))],
        )
        runtime = make_runtime(
            model, num_workers=1, latency_constraint=0.5, item_timeout=0.3
        )
        runtime.submit(inputs(2))
        with faults.plan_session(plan):
            results = runtime.run_until_complete()
        t0, t1 = results
        assert t0.completed and not t0.degraded
        assert t0.served_stage == model.num_stages - 1
        assert t1.evicted and t1.degraded and not t1.completed
        assert t1.outcomes  # served from a real early exit
        assert t1.served_stage == t1.outcomes[-1].stage == 0
        assert t1.prediction is not None

    def test_no_result_task_is_not_degraded(self, model):
        # Everything crashes: tasks evict with no outcomes at all — that is
        # a failure, not a degraded response.
        plan = FaultPlan(
            seed=0,
            specs=[FaultSpec(WORKER_STAGE_SITE, faults.CRASH, probability=1.0)],
        )
        runtime = make_runtime(
            model, latency_constraint=0.5, item_timeout=0.2
        )
        runtime.submit(inputs(2))
        with faults.plan_session(plan):
            results = runtime.run_until_complete()
        for r in results:
            assert r.evicted
            assert not r.degraded
            assert r.served_stage is None
            assert r.prediction is None


class TestDisarmedBehaviour:
    def test_no_plan_no_recovery_counters(self, model):
        runtime = make_runtime(model)
        runtime.submit(inputs())
        with telemetry.session() as tel:
            results = runtime.run_until_complete()
            counters = tel.registry.counters()
        assert all(r.completed for r in results)
        for name in counters:
            assert not name.startswith("faults.")
            assert name not in (
                "runtime.items_lost",
                "runtime.worker_respawns",
                "runtime.stale_results",
                "runtime.corrupt_results",
            )
