"""Chaos invariants of the process backend: real corpses, scribbled shm.

The thread-backend chaos suite (tests/cluster/test_failover.py) pins the
router's failover contract against *simulated* crashes.  Here the same
contract is held against the process backend, where the failure modes are
physical: a crash fault is an actual SIGKILL of the child, and a corrupt
fault scribbles the generation tags of the request's shared-memory blocks
so the child's decode fails validation.  Pinned:

- **shm corruption** at ``cluster.replica.call`` is detected (typed,
  retryable), failed over, and costs no request — and the poisoned
  replica keeps serving afterwards (the block is reclaimed);
- **child SIGKILL** mid-stream loses no request; the corpse is ejected
  and every shm segment is reclaimed even though the child never ran
  its shutdown path — the acceptance bar for the leak checker;
- the **watchdog** respawns an externally SIGKILL'd child under a live
  router, and traffic keeps flowing throughout;
- a **lost response** in process mode places exactly one model: the
  at-least-once redelivery is deduplicated by the service idempotency
  window *inside the child*, proving the dedup state survives the
  pickle boundary.
"""

import os
import signal

import numpy as np
import pytest

from repro import faults, telemetry
from repro.cluster import CALL_SITE, RouterConfig, make_cluster
from repro.faults import FaultPlan, FaultSpec, RetryPolicy
from repro.nn.data import Dataset
from repro.nn.resnet import StagedResNet, StagedResNetConfig
from repro.nn.training import collect_stage_outputs
from repro.scheduler.confidence import GPConfidencePredictor
from repro.service import ClassifyRequest, EugeneClient

TINY = StagedResNetConfig(
    num_classes=3, image_size=8, stage_channels=(4, 8), blocks_per_stage=1, seed=0
)


@pytest.fixture(autouse=True)
def clean_sessions():
    faults.uninstall()
    telemetry.disable()
    yield
    faults.uninstall()
    telemetry.disable()


@pytest.fixture(scope="module")
def tiny_model():
    """A trained-enough staged model + dataset + predictor, built fault-free."""
    rng = np.random.default_rng(0)
    inputs = rng.normal(size=(16, TINY.in_channels, 8, 8))
    labels = rng.integers(0, 3, size=16)
    model = StagedResNet(TINY)
    dataset = Dataset(inputs, labels)
    predictor = GPConfidencePredictor(num_classes=3, seed=0).fit(
        collect_stage_outputs(model, dataset)["confidences"]
    )
    return model, dataset, predictor


def proc_cluster(n, **kwargs):
    kwargs.setdefault(
        "config", RouterConfig(replication_factor=2, call_timeout_s=120.0)
    )
    return make_cluster(n, backend="process", **kwargs)


# Bounded polling for real child-process transitions (see tests/conftest.py).
from repro.cluster import wait_until  # noqa: E402


class TestShmCorruption:
    def test_corruption_fails_over_and_the_replica_keeps_serving(
        self, tiny_model
    ):
        model, dataset, predictor = tiny_model
        plan = FaultPlan(
            seed=0, specs=[FaultSpec(CALL_SITE, faults.CORRUPT, at=(1,))]
        )
        with proc_cluster(2) as router:
            gid = router.register_model(
                "poison", model, train_set=dataset, predictor=predictor
            )
            request = ClassifyRequest(model_id=gid, inputs=dataset.inputs[:4])
            with faults.plan_session(plan):
                responses = [router.classify(request) for _ in range(6)]
            assert len(responses) == 6  # corruption cost zero requests
            assert all(len(r.predictions) == 4 for r in responses)
            corruptions = sum(
                r.metrics.snapshot()["counters"].get("replica.shm_corruptions", 0)
                for r in router.replicas.values()
            )
            assert corruptions == 1
            # The poisoned request was detected, not served from garbage.
            assert router.metrics.counter("router.failovers").value >= 1
            # Both children survived the scribble and still serve.
            assert all(r.alive for r in router.replicas.values())
            router.classify(request)
        for replica in router.replicas.values():
            replica.assert_no_shm_leaks()


class TestChildSigkill:
    def test_kill_mid_stream_loses_no_request_and_no_shm_block(
        self, tiny_model
    ):
        model, dataset, predictor = tiny_model
        plan = FaultPlan(
            seed=0, specs=[FaultSpec(CALL_SITE, faults.CRASH, at=(5,))]
        )
        with proc_cluster(3) as router:
            gid = router.register_model(
                "corpse", model, train_set=dataset, predictor=predictor
            )
            request = ClassifyRequest(model_id=gid, inputs=dataset.inputs[:2])
            with faults.plan_session(plan):
                responses = [router.classify(request) for _ in range(20)]
            assert len(responses) == 20  # no request lost
            assert all(len(r.predictions) == 2 for r in responses)
            dead = [rid for rid, r in router.replicas.items() if not r.alive]
            assert len(dead) == 1  # the crash was a real SIGKILL
            victim = router.replicas[dead[0]]
            assert wait_until(lambda: not victim._proc.is_alive())
            assert router.metrics.counter("router.failovers").value >= 1
            router.tick()  # heartbeat round buries the corpse
            assert router.ejected() == dead
        # The acceptance bar: zero leaked blocks and no linked segments,
        # *including* the replica whose child never ran shutdown.
        for replica in router.replicas.values():
            replica.assert_no_shm_leaks()


class TestWatchdogUnderRouter:
    def test_external_sigkill_is_respawned_while_traffic_flows(
        self, tiny_model
    ):
        model, dataset, predictor = tiny_model
        with proc_cluster(2, auto_respawn=True) as router:
            gid = router.register_model(
                "phoenix", model, train_set=dataset, predictor=predictor
            )
            request = ClassifyRequest(model_id=gid, inputs=dataset.inputs[:2])
            router.classify(request)
            victim_id = router.holders(gid)[0]
            victim = router.replicas[victim_id]
            first_pid = victim.pid
            os.kill(first_pid, signal.SIGKILL)
            # Traffic keeps flowing throughout: the surviving holder (or,
            # post-respawn, either replica) answers every call.
            for _ in range(5):
                response = router.classify(request)
                assert len(response.predictions) == 2
            assert wait_until(
                lambda: victim.alive and victim.pid != first_pid
            ), "watchdog never respawned the child"
            assert victim.ping()
            assert (
                victim.metrics.snapshot()["counters"].get("replica.respawns", 0)
                >= 1
            )
        for replica in router.replicas.values():
            replica.assert_no_shm_leaks()


class TestExactlyOnceInProcessMode:
    def test_lost_train_response_places_exactly_one_model(self, tiny_model):
        # The at-least-once hazard with a real pickle boundary: the child
        # *executes* the train, the answer is dropped, the client's retry
        # redelivers the same idempotency key, and the dedup window inside
        # the child recognises it — one model, no orphan, no double train.
        _, dataset, _ = tiny_model
        plan = FaultPlan(
            seed=0, specs=[FaultSpec(CALL_SITE, faults.DROP, at=(0,))]
        )
        with proc_cluster(2) as router:
            client = EugeneClient(
                router,
                retry_policy=RetryPolicy(max_attempts=3, base_delay_s=0.0),
            )
            with faults.plan_session(plan):
                response = client.train(
                    dataset.inputs,
                    dataset.labels,
                    model_config=TINY,
                    epochs=1,
                    name="once",
                )
            assert router.model_ids() == [response.model_id]
            lost = sum(
                r.metrics.snapshot()["counters"].get("replica.responses_lost", 0)
                for r in router.replicas.values()
            )
            assert lost == 1
            for rid in router.holders(response.model_id):
                assert router.replicas[rid].has_model(response.model_id)
        for replica in router.replicas.values():
            replica.assert_no_shm_leaks()
