"""Retry policy and circuit breaker: exact, deterministic behaviour."""

import itertools

import pytest

from repro.faults import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    CircuitOpenError,
    RequestTimeoutError,
    RetriesExhaustedError,
    RetryPolicy,
    TransientServiceError,
)


class TestRetryPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay_s": -0.1},
            {"multiplier": 0.5},
            {"base_delay_s": 0.1, "max_delay_s": 0.01},
            {"timeout_s": 0.0},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_delays_are_exponential_and_capped(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay_s=0.01, multiplier=2.0, max_delay_s=0.03
        )
        assert list(policy.delays()) == pytest.approx([0.01, 0.02, 0.03, 0.03])

    def test_delay_count_is_attempts_minus_one(self):
        assert len(list(RetryPolicy(max_attempts=1).delays())) == 0
        assert len(list(RetryPolicy(max_attempts=4).delays())) == 3


class TestRetryPolicyCall:
    def _flaky(self, failures):
        """A callable failing transiently ``failures`` times, then 'ok'."""
        counter = itertools.count()

        def fn():
            if next(counter) < failures:
                raise TransientServiceError("flake")
            return "ok"

        return fn

    def test_success_first_try_no_delay(self):
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.0)
        assert policy.call(self._flaky(0)) == "ok"

    def test_transient_errors_retried_until_success(self):
        policy = RetryPolicy(max_attempts=4, base_delay_s=0.0)
        assert policy.call(self._flaky(3)) == "ok"

    def test_retries_are_bounded(self):
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.0)
        calls = []

        def always_fails():
            calls.append(1)
            raise TransientServiceError("down")

        with pytest.raises(RetriesExhaustedError) as excinfo:
            policy.call(always_fails)
        assert len(calls) == 3  # exactly max_attempts, never more
        assert isinstance(excinfo.value.last_error, TransientServiceError)

    def test_non_transient_error_propagates_immediately(self):
        policy = RetryPolicy(max_attempts=5, base_delay_s=0.0)
        calls = []

        def buggy():
            calls.append(1)
            raise ValueError("a bug, not an outage")

        with pytest.raises(ValueError):
            policy.call(buggy)
        assert len(calls) == 1

    def test_timeout_budget_stops_backoff(self):
        # The first backoff (0.2s) cannot fit in the 0.05s budget, so the
        # call must fail fast with the timeout error, not sleep through it.
        policy = RetryPolicy(
            max_attempts=5, base_delay_s=0.2, max_delay_s=0.2, timeout_s=0.05
        )
        with pytest.raises(RequestTimeoutError):
            policy.call(self._flaky(10))

    def test_timeout_error_is_a_timeout(self):
        assert issubclass(RequestTimeoutError, TimeoutError)

    def test_on_retry_hook_sees_each_attempt(self):
        policy = RetryPolicy(max_attempts=4, base_delay_s=0.0)
        seen = []
        policy.call(self._flaky(2), on_retry=lambda n, e: seen.append(n))
        assert seen == [1, 2]


# The shared virtual clock doubles as the bare ``clock=`` callable the
# breaker takes (calling the instance returns now()).
from repro.cluster import VirtualClock as FakeClock  # noqa: E402


class TestCircuitBreaker:
    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_s=-1.0)

    def test_starts_closed_and_allows(self):
        b = CircuitBreaker()
        assert b.state == CLOSED
        assert b.allow()

    def test_opens_after_consecutive_failures(self):
        b = CircuitBreaker(failure_threshold=3, clock=FakeClock())
        for _ in range(2):
            b.record_failure()
        assert b.state == CLOSED
        b.record_failure()
        assert b.state == OPEN
        assert not b.allow()

    def test_success_resets_the_streak(self):
        b = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        b.record_failure()
        b.record_success()
        b.record_failure()
        assert b.state == CLOSED  # streak broken; needs 2 consecutive

    def test_guard_raises_when_open(self):
        clock = FakeClock()
        b = CircuitBreaker(failure_threshold=1, cooldown_s=10.0, clock=clock)
        b.record_failure()
        with pytest.raises(CircuitOpenError):
            b.guard("classify")
        b.record_success()  # manual close
        b.guard("classify")  # no raise

    def test_half_open_after_cooldown_admits_single_probe(self):
        clock = FakeClock()
        b = CircuitBreaker(failure_threshold=1, cooldown_s=1.0, clock=clock)
        b.record_failure()
        assert not b.allow()
        clock.advance(1.5)
        assert b.state == HALF_OPEN
        assert b.allow()       # the probe
        assert not b.allow()   # only one probe at a time

    def test_probe_success_closes(self):
        clock = FakeClock()
        b = CircuitBreaker(failure_threshold=1, cooldown_s=1.0, clock=clock)
        b.record_failure()
        clock.advance(2.0)
        assert b.allow()
        b.record_success()
        assert b.state == CLOSED
        assert b.allow()

    def test_probe_failure_reopens_for_another_cooldown(self):
        clock = FakeClock()
        b = CircuitBreaker(failure_threshold=1, cooldown_s=1.0, clock=clock)
        b.record_failure()
        clock.advance(2.0)
        assert b.allow()
        b.record_failure()
        assert b.state == OPEN
        assert not b.allow()
        clock.advance(1.1)
        assert b.allow()  # next probe window
