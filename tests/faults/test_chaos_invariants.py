"""Full-stack chaos acceptance suite: client -> service -> runtime.

A seeded fault plan injects crashes and latency at sites spanning the
runtime workers, the dispatch path, the service endpoints, and the client
transport, then a scripted workload asserts the resilience contract:

- no unhandled (non-``ResilienceError``) exception ever reaches a caller;
- no expired task is served — a result past its latency constraint is
  discarded, never applied;
- every degraded response is flagged, with the stage it was served from;
- retries are bounded by the policy, exactly;
- the runtime always quiesces (every workload here terminates);
- two runs from the same seed produce byte-identical fault logs.
"""

import numpy as np
import pytest

from repro import faults, telemetry
from repro.datasets import SyntheticImageConfig, make_image_dataset
from repro.faults import FaultPlan, FaultSpec, RetryPolicy
from repro.nn import StagedResNet, StagedResNetConfig
from repro.scheduler import FIFOPolicy, RuntimeConfig, StagedInferenceRuntime
from repro.service import EugeneService
from repro.service.client import EugeneClient

EPISODES = 2
MAX_ATTEMPTS = 4
CONSTRAINT_S = 1.0


@pytest.fixture(autouse=True)
def clean_sessions():
    faults.uninstall()
    telemetry.disable()
    yield
    faults.uninstall()
    telemetry.disable()


@pytest.fixture(scope="module")
def stack():
    """A trained tiny model behind a real service — built fault-free."""
    data = make_image_dataset(
        96, SyntheticImageConfig(num_classes=3, image_size=8, seed=3), seed=0
    )
    service = EugeneService(seed=0)
    client = EugeneClient(service)
    trained = client.train(
        data.inputs,
        data.labels,
        model_config=StagedResNetConfig(
            num_classes=3, image_size=8, stage_channels=(4, 8),
            blocks_per_stage=1, seed=0,
        ),
        epochs=2,
        name="chaos-acceptance",
    )
    return service, trained.model_id, data.inputs


def chaos_plan(seed):
    """Crashes + latency at sites across all four layers of the stack.

    Every spec is *scheduled* (``at=``), not probabilistic, so the set of
    fired faults — and therefore the fault log — is a pure function of the
    seed and the per-site invocation counters, immune to thread timing.
    """
    return FaultPlan(
        seed=seed,
        specs=[
            FaultSpec("runtime.worker.stage", faults.CRASH, at=(1,)),
            FaultSpec(
                "runtime.worker.stage", faults.LATENCY,
                at=(3, 5), latency_s=0.005,
            ),
            FaultSpec(
                "runtime.dispatch", faults.LATENCY, at=(0, 2), latency_s=0.003
            ),
            FaultSpec("service.infer", faults.ERROR, at=(0,)),
            FaultSpec("client.classify", faults.ERROR, at=(1,)),
        ],
    )


def run_workload(stack, seed):
    """Drive EPISODES rounds of infer+classify traffic under the plan."""
    service, model_id, inputs = stack
    client = EugeneClient(
        service,
        retry_policy=RetryPolicy(
            max_attempts=MAX_ATTEMPTS, base_delay_s=0.001, timeout_s=30.0
        ),
    )
    plan = chaos_plan(seed)
    responses = []
    unhandled = []
    typed_failures = 0
    with telemetry.session() as tel, faults.plan_session(plan):
        for _ in range(EPISODES):
            try:
                responses.append(
                    client.infer(
                        model_id,
                        inputs[:8],
                        latency_constraint_s=CONSTRAINT_S,
                        num_workers=2,
                        max_batch=4,
                        drain_window_s=0.002,
                    )
                )
            except faults.ResilienceError:
                typed_failures += 1
            except Exception as err:  # noqa: BLE001 — the invariant itself
                unhandled.append(err)
            try:
                client.classify(model_id, inputs[:16])
            except faults.ResilienceError:
                typed_failures += 1
            except Exception as err:  # noqa: BLE001
                unhandled.append(err)
        counters = dict(tel.registry.counters())
    return plan, responses, unhandled, typed_failures, counters


@pytest.fixture(scope="module")
def workload(stack):
    """One shared chaos run; each invariant below reads it independently."""
    return run_workload(stack, seed=0)


class TestNoUnhandledExceptions:
    def test_only_typed_resilience_errors_escape(self, workload):
        _, _, unhandled, _, _ = workload
        assert unhandled == []

    def test_workload_quiesced_with_responses(self, workload):
        # Reaching this assertion at all IS the quiescence check: the
        # runtime drained every episode despite a crashed worker.
        _, responses, _, typed_failures, _ = workload
        assert len(responses) + typed_failures >= EPISODES
        assert responses, "every single infer failed — resilience is broken"


class TestDegradedFlagging:
    def test_every_degraded_response_carries_its_stage(self, workload):
        _, responses, _, _, _ = workload
        for response in responses:
            n = len(response.predictions)
            assert len(response.degraded) == n
            assert len(response.served_stage) == n
            for flagged, stage, evicted, prediction in zip(
                response.degraded,
                response.served_stage,
                response.evicted,
                response.predictions,
            ):
                if flagged:
                    assert stage is not None and stage >= 0
                    assert evicted  # degraded implies the deadline struck
                if prediction is not None:
                    assert stage is not None

    def test_no_result_means_no_prediction(self, workload):
        _, responses, _, _, _ = workload
        for response in responses:
            for stage, prediction, confidence in zip(
                response.served_stage, response.predictions, response.confidences
            ):
                if stage is None:
                    assert prediction is None and confidence is None


class TestRetriesBounded:
    def test_faulted_endpoints_retried_exactly_once_each(self, workload):
        plan, _, _, _, counters = workload
        # service.infer: ERROR at invocation 0, clean after -> one retry on
        # episode 1, none later.  client.classify: ERROR at invocation 1 ->
        # one retry on episode 2.  Exactly EPISODES+1 invocations each.
        assert plan.invocations("service.infer") == EPISODES + 1
        assert plan.invocations("client.classify") == EPISODES + 1
        assert counters["client.retries.infer"] == 1
        assert counters["client.retries.classify"] == 1

    def test_no_site_exceeds_the_attempt_budget(self, workload):
        plan, _, _, _, _ = workload
        for endpoint in ("service.infer", "client.classify"):
            assert plan.invocations(endpoint) <= EPISODES * MAX_ATTEMPTS


class TestRecoveryHappened:
    def test_crashed_worker_was_respawned(self, workload):
        _, _, _, _, counters = workload
        assert counters.get("runtime.worker_respawns", 0) >= 1
        assert counters.get("runtime.items_lost", 0) >= 1

    def test_every_scheduled_fault_fired(self, workload):
        plan, _, _, _, _ = workload
        assert plan.log.counts() == {
            "runtime.worker.stage": 3,
            "runtime.dispatch": 2,
            "service.infer": 1,
            "client.classify": 1,
        }


class TestSeededReproducibility:
    def test_same_seed_byte_identical_fault_logs(self, stack):
        first, _, first_unhandled, _, _ = run_workload(stack, seed=11)
        second, _, second_unhandled, _, _ = run_workload(stack, seed=11)
        assert first_unhandled == [] and second_unhandled == []
        log_a = first.log.export_text()
        log_b = second.log.export_text()
        assert log_a == log_b
        assert log_a.encode("utf-8") == log_b.encode("utf-8")
        assert len(log_a.splitlines()) == 7  # every scheduled index, once


class TestNoExpiredTaskServed:
    def test_completed_tasks_fit_the_constraint_exactly(self):
        # Straight at the runtime: under crash + latency chaos, any task
        # reported completed must have finished inside its constraint; an
        # evicted task is never reported completed.
        model = StagedResNet(
            StagedResNetConfig(
                num_classes=3, in_channels=1, image_size=8,
                stage_channels=(4, 8), blocks_per_stage=1, seed=0,
            )
        )
        constraint = 0.4
        runtime = StagedInferenceRuntime(
            model,
            FIFOPolicy(),
            RuntimeConfig(
                num_workers=2, latency_constraint=constraint, item_timeout=0.1
            ),
        )
        runtime.submit(np.random.default_rng(0).normal(size=(8, 1, 8, 8)))
        plan = FaultPlan(
            seed=5,
            specs=[
                FaultSpec("runtime.worker.stage", faults.CRASH, probability=0.15),
                FaultSpec(
                    "runtime.worker.stage", faults.LATENCY,
                    probability=0.3, latency_s=0.01,
                ),
            ],
        )
        with faults.plan_session(plan):
            results = runtime.run_until_complete()
        assert len(results) == 8
        for r in results:
            if r.completed:
                assert not r.evicted
                assert r.elapsed <= constraint
            if r.evicted:
                assert not r.completed
