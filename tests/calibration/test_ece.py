"""Tests for ECE / reliability diagrams (Eq. 1-3, Fig. 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.calibration import (
    expected_calibration_error,
    maximum_calibration_error,
    reliability_diagram,
    summarize_calibration,
)


class TestReliabilityDiagram:
    def test_perfectly_calibrated_data(self):
        """Samples whose accuracy equals confidence in every bin → ECE ~ 0."""
        rng = np.random.default_rng(0)
        n = 60_000
        conf = rng.uniform(0.05, 0.95, size=n)
        correct = rng.random(n) < conf
        assert expected_calibration_error(conf, correct, 10) < 0.01

    def test_fully_overconfident(self):
        """Always conf=1.0 but 50% correct → ECE = 0.5."""
        conf = np.ones(100)
        correct = np.array([True, False] * 50)
        assert expected_calibration_error(conf, correct, 10) == pytest.approx(0.5)

    def test_binning_follows_paper_interval_convention(self):
        """Bins are ((m-1)/M, m/M]: conf exactly 0.1 goes to the first bin."""
        diagram = reliability_diagram(np.array([0.1, 0.10001]), np.array([True, True]), 10)
        assert diagram.counts[0] == 1
        assert diagram.counts[1] == 1

    def test_zero_confidence_lands_in_first_bin(self):
        diagram = reliability_diagram(np.array([0.0]), np.array([False]), 10)
        assert diagram.counts[0] == 1

    def test_empty_bins_are_nan(self):
        diagram = reliability_diagram(np.array([0.95, 0.92]), np.array([True, False]), 10)
        assert np.isnan(diagram.accuracy[0])
        assert diagram.counts[:9].sum() == 0

    def test_diagram_ece_matches_function(self):
        rng = np.random.default_rng(1)
        conf = rng.uniform(0, 1, 500)
        correct = rng.random(500) < 0.5
        diagram = reliability_diagram(conf, correct)
        assert diagram.ece() == pytest.approx(expected_calibration_error(conf, correct))

    def test_gap_property(self):
        diagram = reliability_diagram(
            np.array([0.95] * 10), np.array([True] * 5 + [False] * 5), 10
        )
        assert diagram.gap[-1] == pytest.approx(0.45)

    def test_render_ascii_mentions_bins(self):
        diagram = reliability_diagram(np.array([0.55]), np.array([True]), 10)
        text = diagram.render_ascii()
        assert "(0.55)" in text
        assert "(empty)" in text

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            reliability_diagram(np.array([1.5]), np.array([True]))
        with pytest.raises(ValueError):
            reliability_diagram(np.array([]), np.array([], dtype=bool))
        with pytest.raises(ValueError):
            reliability_diagram(np.array([0.5, 0.5]), np.array([True]))
        with pytest.raises(ValueError):
            reliability_diagram(np.array([0.5]), np.array([True]), num_bins=0)


class TestScalarMetrics:
    def test_mce_at_least_ece(self):
        rng = np.random.default_rng(2)
        conf = rng.uniform(0, 1, 300)
        correct = rng.random(300) < conf**2  # miscalibrated
        ece = expected_calibration_error(conf, correct)
        mce = maximum_calibration_error(conf, correct)
        assert mce >= ece

    def test_summary_overconfident_flag(self):
        conf = np.full(50, 0.9)
        correct = np.zeros(50, dtype=bool)
        summary = summarize_calibration(conf, correct)
        assert summary.overconfident
        assert summary.accuracy == 0.0
        assert summary.mean_confidence == pytest.approx(0.9)

    def test_summary_underconfident(self):
        conf = np.full(50, 0.4)
        correct = np.ones(50, dtype=bool)
        assert not summarize_calibration(conf, correct).overconfident

    @given(st.integers(1, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_property_ece_bounded(self, seed):
        rng = np.random.default_rng(seed)
        n = rng.integers(1, 200)
        conf = rng.uniform(0, 1, n)
        correct = rng.random(n) < 0.5
        ece = expected_calibration_error(conf, correct)
        assert 0.0 <= ece <= 1.0

    @given(st.integers(1, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_property_ece_invariant_to_permutation(self, seed):
        rng = np.random.default_rng(seed)
        conf = rng.uniform(0, 1, 50)
        correct = rng.random(50) < 0.5
        order = rng.permutation(50)
        assert expected_calibration_error(conf, correct) == pytest.approx(
            expected_calibration_error(conf[order], correct[order])
        )
