"""Tests for the RDeepSense regression-uncertainty module (Sec. II-D)."""

import numpy as np
import pytest

from repro.calibration.rdeepsense import (
    GaussianRegressor,
    coverage_bias,
    fit_gaussian_regressor,
    interval_coverage,
    regression_calibration_curve,
    sweep_loss_weight,
)


def heteroscedastic_data(n, seed=0):
    """y = sin(3x) + noise whose scale grows with |x| — nontrivial variance."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1, 1, size=(n, 1))
    noise_scale = 0.05 + 0.3 * np.abs(x)
    y = np.sin(3 * x) + rng.normal(0, noise_scale)
    return x, y


class TestIntervalCoverage:
    def test_perfect_gaussian_coverage(self):
        rng = np.random.default_rng(0)
        mean = np.zeros((20000, 1))
        std = np.ones((20000, 1))
        targets = rng.normal(size=(20000, 1))
        assert interval_coverage(mean, std, targets, 0.9) == pytest.approx(0.9, abs=0.01)

    def test_narrow_intervals_undercover(self):
        rng = np.random.default_rng(1)
        targets = rng.normal(size=(5000, 1))
        cov = interval_coverage(np.zeros((5000, 1)), 0.3 * np.ones((5000, 1)), targets, 0.9)
        assert cov < 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            interval_coverage(np.zeros(2), np.ones(2), np.zeros(2), nominal=1.0)

    def test_calibration_curve_monotone_nominal(self):
        rng = np.random.default_rng(2)
        targets = rng.normal(size=(3000, 1))
        curve = regression_calibration_curve(
            np.zeros((3000, 1)), np.ones((3000, 1)), targets
        )
        nominals = [n for n, _ in curve]
        empiricals = [e for _, e in curve]
        assert nominals == sorted(nominals)
        assert empiricals == sorted(empiricals)

    def test_coverage_bias_sign(self):
        too_narrow = [(0.5, 0.3), (0.9, 0.6)]
        too_wide = [(0.5, 0.8), (0.9, 0.99)]
        assert coverage_bias(too_narrow) < 0
        assert coverage_bias(too_wide) > 0


class TestGaussianRegressor:
    def test_forward_shapes(self):
        model = GaussianRegressor(3, hidden=8, output_dim=2)
        from repro.nn import Tensor

        mean, log_var = model(Tensor(np.zeros((5, 3))))
        assert mean.shape == (5, 2)
        assert log_var.shape == (5, 2)

    def test_predict_returns_positive_std(self):
        model = GaussianRegressor(2, hidden=4)
        _, std = model.predict(np.zeros((3, 2)))
        assert (std > 0).all()

    def test_fit_validates(self):
        with pytest.raises(ValueError):
            fit_gaussian_regressor(np.zeros((3, 1)), np.zeros(4), weight=0.5)


class TestSectionIIDArgument:
    """The paper's uncertainty-quality story, in its robust form.

    Sec. II-D: an MSE-trained estimator whose variance comes from training
    residuals *underestimates* uncertainty when the mean fits training data
    too well; the weighted MSE+NLL loss produces calibrated intervals.  We
    reproduce the underestimation in an overfit regime and show the weighted
    loss both stays calibrated and (unlike the constant post-hoc variance)
    tracks heteroscedastic noise.
    """

    @pytest.fixture(scope="class")
    def sweep(self):
        x_train, y_train = heteroscedastic_data(600, seed=0)
        x_test, y_test = heteroscedastic_data(400, seed=1)
        return sweep_loss_weight(
            x_train, y_train, x_test, y_test,
            weights=(1.0, 0.5, 0.0), steps=500, seed=0,
        )

    def test_overfit_mse_underestimates(self):
        """Tiny train set + big model: training residuals flatter the model
        and the post-hoc variance undercovers badly — the paper's claim."""
        x_train, y_train = heteroscedastic_data(60, seed=0)
        x_test, y_test = heteroscedastic_data(500, seed=1)
        model = fit_gaussian_regressor(
            x_train, y_train, weight=1.0, hidden=128, steps=2500, seed=0
        )
        mean, std = model.predict(x_test)
        curve = regression_calibration_curve(mean, std, y_test)
        assert coverage_bias(curve) < -0.05
        assert interval_coverage(mean, std, y_test, 0.9) < 0.8

    def test_weighted_loss_reasonably_calibrated(self, sweep):
        mixed = next(r for r in sweep if r.weight == 0.5)
        assert abs(mixed.bias) < 0.07
        assert mixed.coverage_90 == pytest.approx(0.9, abs=0.08)

    def test_weighted_variance_tracks_heteroscedastic_noise(self):
        """The NLL term lets the variance head learn input-dependent noise;
        pure-MSE post-hoc variance is a single constant."""
        x_train, y_train = heteroscedastic_data(600, seed=0)
        x_test, _ = heteroscedastic_data(500, seed=1)
        true_scale = 0.05 + 0.3 * np.abs(x_test)

        mixed = fit_gaussian_regressor(x_train, y_train, weight=0.5,
                                       steps=600, seed=0)
        _, std_mixed = mixed.predict(x_test)
        corr = np.corrcoef(std_mixed.ravel(), true_scale.ravel())[0, 1]
        assert corr > 0.7

        pure = fit_gaussian_regressor(x_train, y_train, weight=1.0,
                                      steps=600, seed=0)
        _, std_pure = pure.predict(x_test)
        assert len(np.unique(np.round(std_pure, 9))) == 1

    def test_means_remain_accurate(self, sweep):
        for row in sweep:
            assert row.mean_mae < 0.5
