"""Tests for entropy-regularization calibration, MC-dropout and temperature scaling."""

import numpy as np
import pytest

from repro.calibration import (
    EntropyCalibrator,
    MCDropoutClassifier,
    MCDropoutStagedWrapper,
    TemperatureScaler,
    choose_alpha,
    expected_calibration_error,
)
from repro.datasets import SyntheticImageConfig, make_image_dataset
from repro.nn import Dense, Dropout, ReLU, Sequential, StagedResNet, StagedResNetConfig
from repro.nn.training import collect_stage_outputs, train_staged_model


TINY = StagedResNetConfig(
    num_classes=4, image_size=8, stage_channels=(4, 8), blocks_per_stage=1, seed=0
)


@pytest.fixture(scope="module")
def trained_model():
    cfg = SyntheticImageConfig(num_classes=4, image_size=8, seed=3)
    train_set = make_image_dataset(600, cfg, seed=0)
    cal_set = make_image_dataset(300, cfg, seed=1)
    test_set = make_image_dataset(300, cfg, seed=2)
    model = StagedResNet(TINY)
    train_staged_model(model, train_set, epochs=10, batch_size=32, lr=1e-2)
    return model, cal_set, test_set


class TestChooseAlpha:
    def test_overconfident_gets_negative(self):
        assert choose_alpha(accuracy=0.6, mean_confidence=0.9, magnitude=0.5) == -0.5

    def test_underconfident_gets_positive(self):
        assert choose_alpha(accuracy=0.9, mean_confidence=0.6, magnitude=0.3) == 0.3

    def test_already_calibrated_gets_zero(self):
        assert choose_alpha(0.80, 0.8005) == 0.0


class TestEntropyCalibrator:
    def test_reduces_ece_on_heldout(self, trained_model):
        model, cal_set, test_set = trained_model
        before = collect_stage_outputs(model, test_set)
        ece_before = [
            expected_calibration_error(before["confidences"][s], before["correct"][s])
            for s in range(model.num_stages)
        ]
        results = EntropyCalibrator(epochs=3, seed=0).calibrate(model, cal_set)
        after = collect_stage_outputs(model, test_set)
        ece_after = [
            expected_calibration_error(after["confidences"][s], after["correct"][s])
            for s in range(model.num_stages)
        ]
        assert len(results) == model.num_stages
        # Calibration must help on average across stages.
        assert np.mean(ece_after) < np.mean(ece_before)

    def test_results_record_alpha_and_ece(self, trained_model):
        model, cal_set, _ = trained_model
        results = EntropyCalibrator(epochs=1, search=False).calibrate(model, cal_set)
        for r in results:
            assert r.ece_before >= 0
            assert r.ece_after >= 0


class TestMCDropout:
    def test_staged_wrapper_output_contract(self, trained_model):
        model, _, test_set = trained_model
        wrapper = MCDropoutStagedWrapper(model, rate=0.25, passes=5, seed=0)
        out = wrapper.collect_outputs(test_set)
        n = len(test_set)
        assert out["confidences"].shape == (model.num_stages, n)
        assert ((out["confidences"] > 0) & (out["confidences"] <= 1)).all()

    def test_probabilities_sum_to_one(self, trained_model):
        model, _, test_set = trained_model
        wrapper = MCDropoutStagedWrapper(model, rate=0.25, passes=3, seed=0)
        probs = wrapper.predict_proba(test_set.inputs[:8])
        for p in probs:
            np.testing.assert_allclose(p.sum(axis=-1), np.ones(8), atol=1e-9)

    def test_averaging_lowers_confidence_vs_deterministic(self, trained_model):
        """MC averaging over dropout masks softens overconfident outputs."""
        model, _, test_set = trained_model
        wrapper = MCDropoutStagedWrapper(model, rate=0.4, passes=10, seed=0)
        mc = wrapper.collect_outputs(test_set)["confidences"].mean()
        det = collect_stage_outputs(model, test_set)["confidences"].mean()
        assert mc < det + 1e-6

    def test_invalid_params(self, trained_model):
        model, *_ = trained_model
        with pytest.raises(ValueError):
            MCDropoutStagedWrapper(model, rate=0.0)
        with pytest.raises(ValueError):
            MCDropoutStagedWrapper(model, passes=0)

    def test_generic_classifier_wrapper(self):
        rng = np.random.default_rng(0)
        net = Sequential(Dense(4, 16, rng=rng), ReLU(),
                         Dropout(0.3, seed=1, always_on=True), Dense(16, 3, rng=rng))
        net.eval()
        clf = MCDropoutClassifier(net, passes=4)
        probs = clf.predict_proba(rng.normal(size=(6, 4)))
        assert probs.shape == (6, 3)
        np.testing.assert_allclose(probs.sum(axis=-1), np.ones(6), atol=1e-9)

    def test_generic_classifier_passes_validated(self):
        clf = MCDropoutClassifier(Dense(2, 2), passes=0)
        with pytest.raises(ValueError):
            clf.predict_proba(np.zeros((1, 2)))


class TestTemperatureScaler:
    def test_recovers_known_temperature(self):
        """Logits drawn well-calibrated then multiplied by 3 → T ~ 3."""
        rng = np.random.default_rng(0)
        n, c = 4000, 5
        true_logits = rng.normal(size=(n, c)) * 2
        probs = np.exp(true_logits) / np.exp(true_logits).sum(-1, keepdims=True)
        labels = np.array([rng.choice(c, p=p) for p in probs])
        scaler = TemperatureScaler().fit(true_logits * 3.0, labels)
        assert scaler.temperature == pytest.approx(3.0, rel=0.15)

    def test_reduces_ece_of_overconfident_logits(self):
        rng = np.random.default_rng(1)
        n, c = 3000, 4
        base = rng.normal(size=(n, c))
        probs = np.exp(base) / np.exp(base).sum(-1, keepdims=True)
        labels = np.array([rng.choice(c, p=p) for p in probs])
        sharp = base * 4.0
        sharp_probs = np.exp(sharp) / np.exp(sharp).sum(-1, keepdims=True)
        conf_before = sharp_probs.max(-1)
        correct = sharp_probs.argmax(-1) == labels
        ece_before = expected_calibration_error(conf_before, correct)
        calibrated = TemperatureScaler().fit_transform(sharp, labels)
        ece_after = expected_calibration_error(calibrated.max(-1), calibrated.argmax(-1) == labels)
        assert ece_after < ece_before

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            TemperatureScaler().transform(np.zeros((2, 2)))

    def test_fit_validates_shapes(self):
        with pytest.raises(ValueError):
            TemperatureScaler().fit(np.zeros(3), np.zeros(3, dtype=int))
