"""Tests for the Eugene service facade, registry and client stubs."""

import numpy as np
import pytest

from repro.datasets import SyntheticImageConfig, SyntheticImageGenerator, make_image_dataset
from repro.nn import StagedResNet, StagedResNetConfig
from repro.service import (
    EdgeDevice,
    EugeneClient,
    EugeneService,
    InferRequest,
    LabelRequest,
    ModelRegistry,
    ProfileRequest,
    ReduceRequest,
    TrainRequest,
)
from repro.service.messages import CalibrateRequest


TINY = StagedResNetConfig(
    num_classes=4, image_size=8, stage_channels=(4, 8), blocks_per_stage=1, seed=0
)
DATA_CFG = SyntheticImageConfig(num_classes=4, image_size=8, seed=3)


@pytest.fixture(scope="module")
def service_with_model():
    service = EugeneService(seed=0)
    train_set = make_image_dataset(500, DATA_CFG, seed=0)
    response = service.train(
        TrainRequest(
            inputs=train_set.inputs,
            labels=train_set.labels,
            model_config=TINY,
            epochs=8,
            name="campus-cam",
        )
    )
    return service, response


class TestModelRegistry:
    def test_register_get_list_delete(self):
        registry = ModelRegistry()
        entry = registry.register("m", StagedResNet(TINY))
        assert entry.model_id == "m1"
        assert entry.model_id in registry
        assert len(registry.list_models()) == 1
        registry.delete(entry.model_id)
        assert len(registry) == 0

    def test_unknown_id_raises(self):
        registry = ModelRegistry()
        with pytest.raises(KeyError):
            registry.get("nope")
        with pytest.raises(KeyError):
            registry.delete("nope")

    def test_sequential_ids(self):
        registry = ModelRegistry()
        a = registry.register("a", StagedResNet(TINY))
        b = registry.register("b", StagedResNet(TINY))
        assert (a.model_id, b.model_id) == ("m1", "m2")

    def test_children_lists_derived_models(self):
        registry = ModelRegistry()
        parent = registry.register("p", StagedResNet(TINY))
        child = registry.register(
            "c", StagedResNet(TINY), kind="reduced", parent_id=parent.model_id
        )
        registry.register("other", StagedResNet(TINY))
        assert [e.model_id for e in registry.children(parent.model_id)] == [
            child.model_id
        ]
        assert registry.children(child.model_id) == []

    def test_delete_refuses_parent_with_children(self):
        # Regression: deleting a parent used to orphan its reduced
        # children, leaving dangling parent_id references.
        registry = ModelRegistry()
        parent = registry.register("p", StagedResNet(TINY))
        child = registry.register(
            "c", StagedResNet(TINY), kind="reduced", parent_id=parent.model_id
        )
        with pytest.raises(ValueError, match=child.model_id):
            registry.delete(parent.model_id)
        assert parent.model_id in registry  # refused atomically

    def test_delete_cascade_removes_the_whole_subtree(self):
        registry = ModelRegistry()
        parent = registry.register("p", StagedResNet(TINY))
        child = registry.register(
            "c", StagedResNet(TINY), kind="reduced", parent_id=parent.model_id
        )
        grandchild = registry.register(
            "g", StagedResNet(TINY), kind="reduced", parent_id=child.model_id
        )
        deleted = registry.delete(parent.model_id, cascade=True)
        assert deleted[0] == parent.model_id
        assert set(deleted) == {parent.model_id, child.model_id, grandchild.model_id}
        assert len(registry) == 0

    def test_delete_leaf_child_then_parent(self):
        registry = ModelRegistry()
        parent = registry.register("p", StagedResNet(TINY))
        child = registry.register(
            "c", StagedResNet(TINY), kind="reduced", parent_id=parent.model_id
        )
        assert registry.delete(child.model_id) == [child.model_id]
        assert registry.delete(parent.model_id) == [parent.model_id]


class TestTrainEndpoint:
    def test_returns_model_and_metrics(self, service_with_model):
        service, response = service_with_model
        assert response.model_id in service.registry
        assert len(response.stage_accuracies) == 2
        assert response.stage_accuracies[-1] > 0.4
        entry = service.registry.get(response.model_id)
        assert entry.predictor is not None and entry.predictor.fitted

    def test_request_validation(self):
        with pytest.raises(ValueError):
            TrainRequest(inputs=np.zeros((2, 3, 8, 8)), labels=np.zeros(3))
        with pytest.raises(ValueError):
            TrainRequest(inputs=np.zeros((0, 3, 8, 8)), labels=np.zeros(0))
        with pytest.raises(ValueError):
            TrainRequest(inputs=np.zeros((2, 3, 8, 8)), labels=np.zeros(2), epochs=0)


class TestLabelEndpoint:
    def test_self_training_method(self, service_with_model):
        service, _ = service_with_model
        gen = SyntheticImageGenerator(DATA_CFG)
        rng = np.random.default_rng(0)
        xl, yl, _ = gen.sample(50, rng, difficulty=np.full(50, 0.2))
        xu, yu, _ = gen.sample(100, rng, difficulty=np.full(100, 0.2))
        response = service.label(
            LabelRequest(
                labeled_inputs=xl,
                labeled_targets=yl,
                unlabeled_inputs=xu,
                num_classes=4,
                method="self-training",
            )
        )
        assert response.labels.shape == (100,)
        assert float((response.labels == yu).mean()) > 0.4

    def test_method_validation(self):
        with pytest.raises(ValueError):
            LabelRequest(
                labeled_inputs=np.zeros((1, 2)),
                labeled_targets=np.zeros(1),
                unlabeled_inputs=np.zeros((1, 2)),
                num_classes=4,
                method="magic",
            )


class TestReduceEndpoint:
    def test_reduces_with_class_subset(self, service_with_model):
        service, trained = service_with_model
        response = service.reduce(
            ReduceRequest(model_id=trained.model_id, class_subset=[0, 1], epochs=2)
        )
        assert response.parameters < response.original_parameters
        assert response.class_map == {0: 0, 1: 1}
        child = service.registry.get(response.model_id)
        assert child.kind == "reduced"
        assert child.parent_id == trained.model_id

    def test_max_parameters_sizing(self, service_with_model):
        service, trained = service_with_model
        full = service.registry.get(trained.model_id).model.num_parameters()
        response = service.reduce(
            ReduceRequest(model_id=trained.model_id, max_parameters=full // 4, epochs=1)
        )
        assert response.parameters < full

    def test_unknown_model(self, service_with_model):
        service, _ = service_with_model
        with pytest.raises(KeyError):
            service.reduce(ReduceRequest(model_id="m999"))


class TestProfileEndpoint:
    def test_stage_times(self, service_with_model):
        service, trained = service_with_model
        response = service.profile(ProfileRequest(model_id=trained.model_id))
        assert len(response.stage_times_ms) == 2
        assert response.total_time_ms == pytest.approx(sum(response.stage_times_ms))

    def test_normalized_profile(self, service_with_model):
        service, trained = service_with_model
        response = service.profile(
            ProfileRequest(model_id=trained.model_id, normalize=True)
        )
        assert len(set(response.stage_times_ms)) == 1


class TestCalibrateEndpoint:
    def test_reports_per_stage_alphas(self, service_with_model):
        service, trained = service_with_model
        cal_set = make_image_dataset(250, DATA_CFG, seed=11)
        response = service.calibrate(
            CalibrateRequest(
                model_id=trained.model_id,
                inputs=cal_set.inputs,
                labels=cal_set.labels,
                epochs=2,
            )
        )
        assert len(response.alphas) == 2
        assert all(e >= 0 for e in response.ece_after)


class TestInferEndpoint:
    def test_serves_batch(self, service_with_model):
        service, trained = service_with_model
        test_set = make_image_dataset(6, DATA_CFG, seed=21)
        response = service.infer(
            InferRequest(
                model_id=trained.model_id,
                inputs=test_set.inputs,
                latency_constraint_s=30.0,
            )
        )
        assert len(response.predictions) == 6
        assert all(not e for e in response.evicted)
        assert all(s >= 1 for s in response.stages_executed)

    def test_request_validation(self):
        with pytest.raises(ValueError):
            InferRequest(model_id="m1", inputs=np.zeros((1, 3, 8, 8)),
                         latency_constraint_s=0.0)
        with pytest.raises(ValueError):
            InferRequest(model_id="m1", inputs=np.zeros((1, 3, 8, 8)), lookahead=0)

    def test_anytime_contract_over_the_wire(self, service_with_model):
        # Under a tight constraint with ``anytime`` set, a task that ran at
        # least one stage is never evicted — it is served best-so-far and
        # flagged in ``anytime_served``.
        service, trained = service_with_model
        test_set = make_image_dataset(32, DATA_CFG, seed=22)
        response = service.infer(
            InferRequest(
                model_id=trained.model_id,
                inputs=test_set.inputs,
                latency_constraint_s=0.02,
                anytime=True,
            )
        )
        assert len(response.anytime_served) == 32
        for served, evicted, stages, degraded in zip(
            response.anytime_served,
            response.evicted,
            response.stages_executed,
            response.degraded,
        ):
            if stages >= 1:
                assert not evicted  # computed work is always delivered
            if served:
                assert stages >= 1
                assert degraded

    def test_anytime_defaults_off(self, service_with_model):
        service, trained = service_with_model
        test_set = make_image_dataset(4, DATA_CFG, seed=23)
        response = service.infer(
            InferRequest(
                model_id=trained.model_id,
                inputs=test_set.inputs,
                latency_constraint_s=30.0,
            )
        )
        assert response.anytime_served == [False] * 4


class TestClientAndEdgeDevice:
    def test_client_roundtrip(self, service_with_model):
        service, trained = service_with_model
        client = EugeneClient(service)
        test_set = make_image_dataset(3, DATA_CFG, seed=31)
        response = client.infer(trained.model_id, test_set.inputs)
        assert len(response.predictions) == 3

    def test_edge_device_fetches_cache_under_skew(self, service_with_model):
        service, trained = service_with_model
        client = EugeneClient(service)
        from repro.compression import FrequencyTracker

        device = EdgeDevice(
            client,
            trained.model_id,
            tracker=FrequencyTracker(window=25, coverage_target=0.6, max_classes=3),
            confidence_threshold=0.4,
        )
        gen = SyntheticImageGenerator(DATA_CFG)
        rng = np.random.default_rng(5)
        n = 120
        images, labels, _ = gen.sample(n, rng, difficulty=np.full(n, 0.1))
        mask = (labels == 0) | (labels == 1)
        for img in images[mask][:60]:
            device.query(img)
        assert device.cached is not None
        assert device.queries_local > 0
        assert 0.0 < device.local_fraction <= 1.0
