"""Concurrency regression tests for :class:`DataPool` (the PR-5 bugfix).

The pre-fix pool mutated shared state with no lock, so concurrent
contributors interleaved *inside* each other's batches: provenance
indices of one ``contribute`` call were scattered among other devices'
rows, and (with views racing mutations) audits could observe torn state.
These tests force heavy thread interleaving (a tiny switch interval) and
pin the locked invariants:

- no contribution is ever lost: the pool size is the exact total;
- one batch's provenance indices are contiguous (batch atomicity —
  forensics can attribute a batch as a unit);
- concurrent quarantine/views never raise and always see whole batches;
- redelivered batches (same idempotency key) are not duplicated, even
  when the redeliveries race each other.
"""

import sys
import threading

import numpy as np
import pytest

from repro.service import DataPool


@pytest.fixture(autouse=True)
def aggressive_thread_switching():
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-5)
    yield
    sys.setswitchinterval(previous)


def run_threads(targets):
    threads = [threading.Thread(target=t) for t in targets]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return threads


NUM_DEVICES = 6
BATCHES = 8
BATCH = 120


def contribute_batches(pool, device, errors):
    try:
        rng = np.random.default_rng(hash(device) % (2**32))
        for _ in range(BATCHES):
            samples = rng.normal(size=(BATCH, 4))
            labels = rng.integers(0, 3, size=BATCH)
            accepted = pool.contribute(device, samples, labels)
            assert accepted == BATCH
    except Exception as e:  # pragma: no cover - failure reporting
        errors.append(e)


class TestConcurrentContribution:
    def test_no_contribution_is_lost(self):
        pool = DataPool("p", authorized=[f"d{i}" for i in range(NUM_DEVICES)])
        errors = []
        run_threads(
            [
                (lambda d=f"d{i}": contribute_batches(pool, d, errors))
                for i in range(NUM_DEVICES)
            ]
        )
        assert not errors
        assert pool.size == NUM_DEVICES * BATCHES * BATCH
        x, y = pool.training_view()
        assert len(x) == len(y) == pool.size

    def test_batches_are_atomic_contiguous_index_runs(self):
        # The pinned pre-fix failure: with no lock, the per-sample append
        # loop of one contribute() interleaves with other devices', so a
        # batch's provenance indices are not contiguous.
        pool = DataPool("p", authorized=[f"d{i}" for i in range(NUM_DEVICES)])
        errors = []
        run_threads(
            [
                (lambda d=f"d{i}": contribute_batches(pool, d, errors))
                for i in range(NUM_DEVICES)
            ]
        )
        assert not errors
        indices = {}
        for c in pool._contributions:
            indices.setdefault(c.device_id, []).append(c.index)
        for device, idx in indices.items():
            idx = sorted(idx)
            runs = []
            start = prev = idx[0]
            for i in idx[1:]:
                if i != prev + 1:
                    runs.append((start, prev))
                    start = i
                prev = i
            runs.append((start, prev))
            # every batch is one contiguous run, so a device with B batches
            # has at most B runs (adjacent batches may merge into one run)
            assert len(runs) <= BATCHES, (
                f"device {device} has {len(runs)} index runs for "
                f"{BATCHES} batches: contribute() batches interleaved"
            )
            for start, end in runs:
                assert (end - start + 1) % BATCH == 0

    def test_views_race_mutations_without_tearing(self):
        pool = DataPool("p", authorized=[f"d{i}" for i in range(4)])
        errors = []
        stop = threading.Event()

        def audit_loop():
            try:
                while not stop.is_set():
                    x, y = pool.training_view()
                    assert len(x) == len(y)
                    # whole batches only: every device's visible row count
                    # is a multiple of the batch size
                    pool.quarantine("d0")
                    x0, _ = pool.training_view()
                    pool.release("d0")
                    assert len(x0) % BATCH == 0 or len(x0) == 0
                    pool.contributors()
            except Exception as e:  # pragma: no cover
                errors.append(e)

        def writer(device):
            try:
                rng = np.random.default_rng(0)
                for _ in range(BATCHES):
                    pool.contribute(
                        device,
                        rng.normal(size=(BATCH, 4)),
                        rng.integers(0, 3, size=BATCH),
                    )
            except Exception as e:  # pragma: no cover
                errors.append(e)
            finally:
                stop.set()

        auditor = threading.Thread(target=audit_loop)
        auditor.start()
        run_threads([(lambda d=f"d{i}": writer(d)) for i in range(1, 4)])
        stop.set()
        auditor.join()
        assert not errors

    def test_racing_redeliveries_insert_exactly_once(self):
        pool = DataPool("p", authorized=["d0"])
        rng = np.random.default_rng(0)
        samples = rng.normal(size=(BATCH, 4))
        labels = rng.integers(0, 3, size=BATCH)
        counts = []

        def deliver():
            counts.append(
                pool.contribute("d0", samples, labels, idempotency_key="k-1")
            )

        run_threads([deliver for _ in range(8)])
        assert pool.size == BATCH  # one insertion, seven deduped replays
        assert counts == [BATCH] * 8  # every delivery reports the same count
