"""Tests for the DeepSense training / classify service endpoints."""

import numpy as np
import pytest

from repro.datasets import SensorTimeSeriesConfig, make_sensor_dataset
from repro.nn import DeepSenseConfig
from repro.service import (
    ClassifyRequest,
    DeepSenseTrainRequest,
    EugeneClient,
    EugeneService,
)

SENSOR_CFG = SensorTimeSeriesConfig(
    num_classes=3, num_sensors=2, channels_per_sensor=3,
    num_intervals=4, samples_per_interval=8, noise_scale=0.4, seed=13,
)
MODEL_CFG = DeepSenseConfig(
    num_sensors=2, channels_per_sensor=3, num_intervals=4,
    samples_per_interval=8, conv_channels=6, hidden_size=16,
    output_dim=3, seed=0,
)


@pytest.fixture(scope="module")
def trained():
    service = EugeneService(seed=0)
    client = EugeneClient(service)
    train_set = make_sensor_dataset(240, SENSOR_CFG, seed=0)
    response = client.train_deepsense(
        train_set.inputs, train_set.labels, model_config=MODEL_CFG, steps=120,
    )
    return service, client, response


class TestTrainDeepSense:
    def test_learns_activities(self, trained):
        _, _, response = trained
        assert response.train_accuracy > 0.6  # chance 1/3
        assert response.steps == 120

    def test_registered_kind(self, trained):
        service, _, response = trained
        assert service.registry.get(response.model_id).kind == "deepsense"

    def test_validation(self):
        with pytest.raises(ValueError):
            DeepSenseTrainRequest(inputs=np.zeros((2, 6, 4, 8)), labels=np.zeros(3))
        with pytest.raises(ValueError):
            DeepSenseTrainRequest(inputs=np.zeros((2, 6, 4)), labels=np.zeros(2))
        with pytest.raises(ValueError):
            DeepSenseTrainRequest(
                inputs=np.zeros((2, 6, 4, 8)), labels=np.zeros(2), steps=0
            )


class TestClassify:
    def test_classifies_heldout(self, trained):
        _, client, response = trained
        test_set = make_sensor_dataset(90, SENSOR_CFG, seed=1)
        out = client.classify(response.model_id, test_set.inputs)
        assert out.predictions.shape == (90,)
        assert ((out.confidences > 0) & (out.confidences <= 1)).all()
        assert float((out.predictions == test_set.labels).mean()) > 0.5

    def test_classify_works_for_staged_models_too(self, trained):
        service, client, _ = trained
        from repro.datasets import SyntheticImageConfig, make_image_dataset
        from repro.nn import StagedResNetConfig

        data = make_image_dataset(
            120, SyntheticImageConfig(num_classes=3, image_size=8, seed=0), seed=0
        )
        staged = client.train(
            data.inputs, data.labels,
            model_config=StagedResNetConfig(
                num_classes=3, image_size=8, stage_channels=(4, 8),
                blocks_per_stage=1, seed=0,
            ),
            epochs=3,
        )
        out = client.classify(staged.model_id, data.inputs[:10])
        assert out.predictions.shape == (10,)

    def test_rejects_estimators(self, trained):
        service, client, _ = trained
        est = client.train_estimator(np.zeros((20, 2)), np.zeros(20), steps=5)
        with pytest.raises(ValueError):
            client.classify(est.model_id, np.zeros((2, 2)))
