"""Round-trip and rejection tests for every service request dataclass.

Two properties of the message schema:

1. **Round-trip**: a valid request survives ``dataclasses.asdict`` →
   reconstruct with every field intact (serializable-by-construction,
   as the module docstring promises).
2. **Rejection**: invalid requests fail at *construction* with a
   ``ValueError`` whose message names the offending field — nothing
   invalid (negative deadlines, NaN payloads, contradictory batching
   knobs) ever reaches an endpoint.  A seeded fuzzer sweeps randomized
   invalid combinations on top of the hand-picked cases.
"""

import dataclasses

import numpy as np
import pytest

from repro.service.messages import (
    CalibrateRequest,
    ClassifyRequest,
    DeepSenseTrainRequest,
    EstimateRequest,
    EstimatorTrainRequest,
    InferRequest,
    LabelRequest,
    ProfileRequest,
    ReduceRequest,
    TrainRequest,
)


def _rng():
    return np.random.default_rng(0)


def images(n=4):
    return _rng().normal(size=(n, 1, 8, 8))


def labels(n=4):
    return _rng().integers(0, 3, size=n)


#: One canonical valid construction per request type.
VALID_FACTORIES = {
    TrainRequest: lambda: TrainRequest(inputs=images(), labels=labels()),
    LabelRequest: lambda: LabelRequest(
        labeled_inputs=images(),
        labeled_targets=labels(),
        unlabeled_inputs=images(6),
        num_classes=3,
    ),
    ReduceRequest: lambda: ReduceRequest(model_id="m", width_fraction=0.5),
    ProfileRequest: lambda: ProfileRequest(model_id="m"),
    CalibrateRequest: lambda: CalibrateRequest(
        model_id="m", inputs=images(), labels=labels()
    ),
    InferRequest: lambda: InferRequest(model_id="m", inputs=images()),
    DeepSenseTrainRequest: lambda: DeepSenseTrainRequest(
        inputs=_rng().normal(size=(4, 4, 4, 8)), labels=labels()
    ),
    ClassifyRequest: lambda: ClassifyRequest(model_id="m", inputs=images()),
    EstimatorTrainRequest: lambda: EstimatorTrainRequest(
        inputs=_rng().normal(size=(6, 3)), targets=_rng().normal(size=6)
    ),
    EstimateRequest: lambda: EstimateRequest(
        model_id="m", inputs=_rng().normal(size=(4, 3))
    ),
}


class TestRoundTrip:
    @pytest.mark.parametrize(
        "cls", list(VALID_FACTORIES), ids=lambda c: c.__name__
    )
    def test_asdict_reconstruct_preserves_every_field(self, cls):
        original = VALID_FACTORIES[cls]()
        rebuilt = cls(**dataclasses.asdict(original))
        for f in dataclasses.fields(cls):
            a, b = getattr(original, f.name), getattr(rebuilt, f.name)
            if isinstance(a, np.ndarray):
                np.testing.assert_array_equal(a, b)
            else:
                assert a == b, f.name


def _with_nan(x):
    x = np.array(x, dtype=np.float64)
    x.reshape(-1)[0] = np.nan
    return x


def _with_inf(x):
    x = np.array(x, dtype=np.float64)
    x.reshape(-1)[-1] = np.inf
    return x


#: (id, zero-arg constructor expected to raise ValueError).
INVALID_CASES = [
    # -- InferRequest: scheduling knobs -------------------------------
    ("negative-deadline", lambda: InferRequest(
        model_id="m", inputs=images(), latency_constraint_s=-1.0)),
    ("zero-deadline", lambda: InferRequest(
        model_id="m", inputs=images(), latency_constraint_s=0.0)),
    ("zero-lookahead", lambda: InferRequest(
        model_id="m", inputs=images(), lookahead=0)),
    ("zero-workers", lambda: InferRequest(
        model_id="m", inputs=images(), num_workers=0)),
    ("zero-max-batch", lambda: InferRequest(
        model_id="m", inputs=images(), max_batch=0)),
    ("negative-drain", lambda: InferRequest(
        model_id="m", inputs=images(), drain_window_s=-0.1)),
    ("drain-without-batching", lambda: InferRequest(
        model_id="m", inputs=images(), drain_window_s=0.01, max_batch=1)),
    ("infer-empty-inputs", lambda: InferRequest(
        model_id="m", inputs=np.zeros((0, 1, 8, 8)))),
    ("infer-nan-inputs", lambda: InferRequest(
        model_id="m", inputs=_with_nan(images()))),
    ("infer-inf-inputs", lambda: InferRequest(
        model_id="m", inputs=_with_inf(images()))),
    # -- TrainRequest -------------------------------------------------
    ("train-misaligned", lambda: TrainRequest(
        inputs=images(4), labels=labels(3))),
    ("train-empty", lambda: TrainRequest(
        inputs=np.zeros((0, 1, 8, 8)), labels=np.zeros(0, dtype=np.int64))),
    ("train-zero-epochs", lambda: TrainRequest(
        inputs=images(), labels=labels(), epochs=0)),
    ("train-zero-lr", lambda: TrainRequest(
        inputs=images(), labels=labels(), learning_rate=0.0)),
    ("train-zero-batch", lambda: TrainRequest(
        inputs=images(), labels=labels(), batch_size=0)),
    ("train-nan-inputs", lambda: TrainRequest(
        inputs=_with_nan(images()), labels=labels())),
    # -- LabelRequest -------------------------------------------------
    ("label-bad-method", lambda: LabelRequest(
        labeled_inputs=images(), labeled_targets=labels(),
        unlabeled_inputs=images(), num_classes=3, method="guess")),
    ("label-one-class", lambda: LabelRequest(
        labeled_inputs=images(), labeled_targets=labels(),
        unlabeled_inputs=images(), num_classes=1)),
    ("label-misaligned", lambda: LabelRequest(
        labeled_inputs=images(4), labeled_targets=labels(3),
        unlabeled_inputs=images(), num_classes=3)),
    ("label-zero-rounds", lambda: LabelRequest(
        labeled_inputs=images(), labeled_targets=labels(),
        unlabeled_inputs=images(), num_classes=3, rounds=0)),
    ("label-nan-unlabeled", lambda: LabelRequest(
        labeled_inputs=images(), labeled_targets=labels(),
        unlabeled_inputs=_with_nan(images()), num_classes=3)),
    # -- ReduceRequest ------------------------------------------------
    ("reduce-zero-width", lambda: ReduceRequest(
        model_id="m", width_fraction=0.0)),
    ("reduce-overwide", lambda: ReduceRequest(
        model_id="m", width_fraction=1.5)),
    ("reduce-zero-params", lambda: ReduceRequest(
        model_id="m", max_parameters=0)),
    ("reduce-zero-epochs", lambda: ReduceRequest(model_id="m", epochs=0)),
    # -- CalibrateRequest ---------------------------------------------
    ("calibrate-misaligned", lambda: CalibrateRequest(
        model_id="m", inputs=images(4), labels=labels(2))),
    ("calibrate-zero-epochs", lambda: CalibrateRequest(
        model_id="m", inputs=images(), labels=labels(), epochs=0)),
    ("calibrate-nan-inputs", lambda: CalibrateRequest(
        model_id="m", inputs=_with_nan(images()), labels=labels())),
    # -- DeepSenseTrainRequest ----------------------------------------
    ("deepsense-bad-rank", lambda: DeepSenseTrainRequest(
        inputs=_rng().normal(size=(4, 8)), labels=labels())),
    ("deepsense-zero-steps", lambda: DeepSenseTrainRequest(
        inputs=_rng().normal(size=(4, 4, 4, 8)), labels=labels(), steps=0)),
    ("deepsense-zero-batch", lambda: DeepSenseTrainRequest(
        inputs=_rng().normal(size=(4, 4, 4, 8)), labels=labels(),
        batch_size=0)),
    ("deepsense-zero-lr", lambda: DeepSenseTrainRequest(
        inputs=_rng().normal(size=(4, 4, 4, 8)), labels=labels(),
        learning_rate=0.0)),
    ("deepsense-nan", lambda: DeepSenseTrainRequest(
        inputs=_with_nan(_rng().normal(size=(4, 4, 4, 8))), labels=labels())),
    # -- ClassifyRequest ----------------------------------------------
    ("classify-zero-microbatch", lambda: ClassifyRequest(
        model_id="m", inputs=images(), micro_batch=0)),
    ("classify-empty", lambda: ClassifyRequest(
        model_id="m", inputs=np.zeros((0, 1, 8, 8)))),
    ("classify-nan", lambda: ClassifyRequest(
        model_id="m", inputs=_with_nan(images()))),
    # -- EstimatorTrainRequest ----------------------------------------
    ("estimator-misaligned", lambda: EstimatorTrainRequest(
        inputs=_rng().normal(size=(5, 3)), targets=_rng().normal(size=4))),
    ("estimator-bad-weight", lambda: EstimatorTrainRequest(
        inputs=_rng().normal(size=(5, 3)), targets=_rng().normal(size=5),
        loss_weight=1.5)),
    ("estimator-zero-hidden", lambda: EstimatorTrainRequest(
        inputs=_rng().normal(size=(5, 3)), targets=_rng().normal(size=5),
        hidden=0)),
    ("estimator-zero-steps", lambda: EstimatorTrainRequest(
        inputs=_rng().normal(size=(5, 3)), targets=_rng().normal(size=5),
        steps=0)),
    ("estimator-nan-targets", lambda: EstimatorTrainRequest(
        inputs=_rng().normal(size=(5, 3)),
        targets=_with_nan(_rng().normal(size=5)))),
    # -- EstimateRequest ----------------------------------------------
    ("estimate-level-zero", lambda: EstimateRequest(
        model_id="m", inputs=_rng().normal(size=(4, 3)),
        confidence_level=0.0)),
    ("estimate-level-one", lambda: EstimateRequest(
        model_id="m", inputs=_rng().normal(size=(4, 3)),
        confidence_level=1.0)),
    ("estimate-nan", lambda: EstimateRequest(
        model_id="m", inputs=_with_nan(_rng().normal(size=(4, 3))))),
]


class TestRejection:
    @pytest.mark.parametrize(
        "build", [c[1] for c in INVALID_CASES], ids=[c[0] for c in INVALID_CASES]
    )
    def test_invalid_request_rejected_with_clear_error(self, build):
        with pytest.raises(ValueError) as excinfo:
            build()
        # The error must say *what* is wrong, not just that something is.
        assert len(str(excinfo.value)) > 10


class TestFuzzedInvalidCombos:
    """Randomized sweep: any mutation from the catalogue must reject."""

    MUTATIONS = [
        lambda rng: {"latency_constraint_s": -float(rng.uniform(0.1, 10))},
        lambda rng: {"lookahead": -int(rng.integers(0, 5))},
        lambda rng: {"num_workers": -int(rng.integers(0, 3))},
        lambda rng: {"max_batch": -int(rng.integers(0, 3))},
        lambda rng: {"drain_window_s": -float(rng.uniform(0.01, 1))},
        lambda rng: {"drain_window_s": float(rng.uniform(0.01, 1)),
                     "max_batch": 1},
        lambda rng: {"inputs": _with_nan(images())},
        lambda rng: {"inputs": _with_inf(images())},
        lambda rng: {"inputs": np.zeros((0, 1, 8, 8))},
    ]

    @pytest.mark.parametrize("seed", range(24))
    def test_fuzzed_infer_request_always_rejected(self, seed):
        rng = np.random.default_rng(seed)
        overrides = {"model_id": "m", "inputs": images()}
        # Apply 1–3 mutations; at least one invalidates the request.
        for i in rng.choice(len(self.MUTATIONS), size=rng.integers(1, 4),
                            replace=False):
            overrides.update(self.MUTATIONS[i](rng))
        with pytest.raises(ValueError):
            InferRequest(**overrides)
