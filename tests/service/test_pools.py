"""Tests for data pools, authorization and rogue-contributor detection."""

import numpy as np
import pytest

from repro.service.pools import (
    AuditReport,
    Contribution,
    ContributorAuditor,
    DataPool,
    PoolAuthorizationError,
)


#: shared class geometry — every device in a pool sees the same classes.
_CENTERS = np.random.default_rng(1234).normal(0, 3.0, size=(3, 6))


def gaussian_class_data(rng, n):
    """Linearly separable blobs around the shared class centers."""
    labels = rng.integers(0, len(_CENTERS), size=n)
    samples = _CENTERS[labels] + rng.normal(0, 0.6, size=(n, _CENTERS.shape[1]))
    return samples, labels


class TestDataPoolBasics:
    def test_requires_name(self):
        with pytest.raises(ValueError):
            DataPool("")

    def test_authorization_enforced(self):
        pool = DataPool("mall-cams", authorized=["cam-1"])
        rng = np.random.default_rng(0)
        x, y = gaussian_class_data(rng, 5)
        pool.contribute("cam-1", x, y)
        with pytest.raises(PoolAuthorizationError):
            pool.contribute("intruder", x, y)

    def test_authorize_and_revoke(self):
        pool = DataPool("p")
        pool.authorize("d")
        assert pool.is_authorized("d")
        pool.revoke("d")
        assert not pool.is_authorized("d")

    def test_contribution_alignment_checked(self):
        pool = DataPool("p", authorized=["d"])
        with pytest.raises(ValueError):
            pool.contribute("d", np.zeros((3, 2)), np.zeros(4, dtype=int))

    def test_provenance_recorded(self):
        pool = DataPool("p", authorized=["a", "b"])
        rng = np.random.default_rng(1)
        xa, ya = gaussian_class_data(rng, 4)
        xb, yb = gaussian_class_data(rng, 6)
        pool.contribute("a", xa, ya)
        pool.contribute("b", xb, yb)
        assert pool.size == 10
        assert pool.contributors() == ["a", "b"]
        x_dev, y_dev = pool.device_view("b")
        assert len(x_dev) == 6

    def test_training_view_excludes_quarantined(self):
        pool = DataPool("p", authorized=["a", "b"])
        rng = np.random.default_rng(2)
        pool.contribute("a", *gaussian_class_data(rng, 4))
        pool.contribute("b", *gaussian_class_data(rng, 6))
        pool.quarantine("b")
        x, y = pool.training_view()
        assert len(x) == 4
        pool.release("b")
        x, _ = pool.training_view()
        assert len(x) == 10

    def test_excluding_device_also_skips_quarantined(self):
        pool = DataPool("p", authorized=["a", "b", "c"])
        rng = np.random.default_rng(3)
        for d in ("a", "b", "c"):
            pool.contribute(d, *gaussian_class_data(rng, 4))
        pool.quarantine("c")
        x, _ = pool.excluding_device("a")
        assert len(x) == 4  # only b's data

    def test_empty_views(self):
        pool = DataPool("p", authorized=["a"])
        x, y = pool.training_view()
        assert len(x) == 0 and len(y) == 0


class TestContributorAuditor:
    def build_pool(self, poison_fraction=1.0, num_honest=4, seed=0):
        """Honest devices contribute correctly-labelled blobs; the rogue
        contributes a ``poison_fraction`` of label-flipped samples."""
        rng = np.random.default_rng(seed)
        pool = DataPool("audit", authorized=[f"h{i}" for i in range(num_honest)] + ["rogue"])
        for i in range(num_honest):
            x, y = gaussian_class_data(rng, 40)
            pool.contribute(f"h{i}", x, y)
        x, y = gaussian_class_data(rng, 40)
        flip = rng.random(40) < poison_fraction
        y_poisoned = np.where(flip, (y + 1) % 3, y)
        pool.contribute("rogue", x, y_poisoned)
        return pool

    def test_flags_full_poisoner(self):
        pool = self.build_pool(poison_fraction=1.0)
        report = ContributorAuditor(num_classes=3, seed=0).audit(pool)
        assert report.flagged == ["rogue"]
        assert report.rate("rogue") > 0.8

    def test_flags_partial_poisoner_hiding_in_good_data(self):
        """The paper's hard case: the rogue mixes bad labels with good ones."""
        pool = self.build_pool(poison_fraction=0.5)
        report = ContributorAuditor(num_classes=3, seed=0).audit(pool)
        assert "rogue" in report.flagged

    def test_no_false_positives_when_all_honest(self):
        rng = np.random.default_rng(5)
        pool = DataPool("clean", authorized=[f"h{i}" for i in range(5)])
        for i in range(5):
            pool.contribute(f"h{i}", *gaussian_class_data(rng, 40))
        report = ContributorAuditor(num_classes=3, seed=0).audit(pool)
        assert report.flagged == []

    def test_audit_and_quarantine(self):
        pool = self.build_pool(poison_fraction=1.0)
        ContributorAuditor(num_classes=3, seed=0).audit_and_quarantine(pool)
        assert pool.quarantined == {"rogue"}
        x, y = pool.training_view()
        assert len(x) == 4 * 40

    def test_needs_two_contributors(self):
        pool = DataPool("single", authorized=["only"])
        rng = np.random.default_rng(6)
        pool.contribute("only", *gaussian_class_data(rng, 10))
        with pytest.raises(ValueError):
            ContributorAuditor(num_classes=3).audit(pool)

    def test_validation(self):
        with pytest.raises(ValueError):
            ContributorAuditor(num_classes=1)
        with pytest.raises(ValueError):
            ContributorAuditor(num_classes=3, z_threshold=0.0)

    def test_custom_classifier_factory(self):
        """The auditor accepts any fit/predict classifier."""

        class Majority:
            def fit(self, x, y):
                self.label = np.bincount(y).argmax()
                return self

            def predict(self, x):
                return np.full(len(x), self.label)

        pool = self.build_pool(poison_fraction=1.0)
        report = ContributorAuditor(
            num_classes=3, classifier_factory=Majority, min_rate=0.0
        ).audit(pool)
        assert set(report.misclassification_rates) == set(pool.contributors())
