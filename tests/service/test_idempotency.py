"""Idempotency-key dedup of non-idempotent endpoints (the PR-5 bugfix).

Pre-fix, ``EugeneClient``'s retry policy happily retried train / reduce /
delete on transient errors and timeouts: safe when the failure hit the
*request* leg, but a failure on the *response* leg (service executed, the
answer got lost) made the retry a **redelivery** — a second model
registered, a second child reduced, a delete replayed into a KeyError.
The moment a router can replay a request on another replica this goes
from latent to routine, so every non-idempotent request now carries an
idempotency key honoured server-side inside a bounded dedup window.

The fault plan's ``client.<endpoint>.response`` site models exactly the
lost-response leg, so these tests pin true fault-injected double delivery
end to end.
"""

import numpy as np
import pytest

from repro import faults, telemetry
from repro.faults import FaultPlan, FaultSpec, RetryPolicy
from repro.nn.resnet import StagedResNet, StagedResNetConfig
from repro.service import (
    DeleteRequest,
    EugeneClient,
    EugeneService,
    TrainRequest,
)
from repro.service.server import IdempotencyCache


@pytest.fixture(autouse=True)
def clean_sessions():
    faults.uninstall()
    telemetry.disable()
    yield
    faults.uninstall()
    telemetry.disable()


TINY = StagedResNetConfig(
    num_classes=3, image_size=8, stage_channels=(4, 8), blocks_per_stage=1, seed=0
)


def tiny_data(n=24, seed=0):
    rng = np.random.default_rng(seed)
    return (
        rng.normal(size=(n, 3, 8, 8)),
        rng.integers(0, 3, size=n),
    )


def service_with_models(count=1):
    service = EugeneService(seed=0)
    for i in range(count):
        service.registry.register(f"m-{i}", StagedResNet(TINY))
    return service


class TestServerSideDedup:
    def test_redelivered_train_registers_exactly_one_model(self):
        inputs, labels = tiny_data()
        service = EugeneService(seed=0)
        request = TrainRequest(
            inputs=inputs, labels=labels, model_config=TINY, epochs=1,
            idempotency_key="train-key-1",
        )
        first = service.train(request)
        replay = service.train(request)
        assert replay.model_id == first.model_id
        assert replay is first  # the original response, not a re-execution
        assert len(service.registry) == 1

    def test_redelivered_delete_returns_the_original_outcome(self):
        service = service_with_models(1)
        request = DeleteRequest(model_id="m1", idempotency_key="del-key")
        first = service.delete(request)
        assert first.deleted == ("m1",)
        # pre-fix this replay raised KeyError("unknown model id 'm1'")
        replay = service.delete(request)
        assert replay.deleted == ("m1",)

    def test_requests_without_a_key_are_not_deduped(self):
        inputs, labels = tiny_data()
        service = EugeneService(seed=0)
        for _ in range(2):
            service.train(
                TrainRequest(
                    inputs=inputs, labels=labels, model_config=TINY, epochs=1
                )
            )
        assert len(service.registry) == 2

    def test_distinct_keys_execute_independently(self):
        service = service_with_models(2)
        service.delete(DeleteRequest(model_id="m1", idempotency_key="a"))
        service.delete(DeleteRequest(model_id="m2", idempotency_key="b"))
        assert len(service.registry) == 0

    def test_dedup_window_is_bounded_lru(self):
        cache = IdempotencyCache(capacity=2)
        cache.put("delete", "k1", "r1")
        cache.put("delete", "k2", "r2")
        assert cache.get("delete", "k1") == "r1"  # refreshes k1
        cache.put("delete", "k3", "r3")  # evicts k2 (least recent)
        assert cache.get("delete", "k2") is None
        assert cache.get("delete", "k1") == "r1"
        assert cache.get("delete", "k3") == "r3"
        assert len(cache) == 2

    def test_keys_are_scoped_per_endpoint(self):
        cache = IdempotencyCache()
        cache.put("train", "k", "train-response")
        assert cache.get("delete", "k") is None

    def test_invalid_keys_are_rejected_at_the_boundary(self):
        with pytest.raises(ValueError):
            DeleteRequest(model_id="m1", idempotency_key="")
        with pytest.raises(ValueError):
            DeleteRequest(model_id="m1", idempotency_key=7)


class TestFaultInjectedDoubleDelivery:
    def test_lost_delete_response_is_redelivered_not_replayed(self):
        # The pinned pre-fix failure: the response leg drops the answer to
        # an executed delete; the retry redelivers, and without dedup the
        # second execution raises KeyError instead of succeeding.
        plan = FaultPlan(
            seed=0,
            specs=[FaultSpec("client.delete.response", faults.ERROR, at=(0,))],
        )
        service = service_with_models(1)
        client = EugeneClient(
            service, retry_policy=RetryPolicy(max_attempts=3, base_delay_s=0.0)
        )
        with telemetry.session() as tel, faults.plan_session(plan):
            response = client.delete("m1")
            retries = tel.registry.counter("client.retries.delete").value
            deduped = tel.registry.counter("service.deduplicated.delete").value
        assert response.deleted == ("m1",)
        assert "m1" not in service.registry
        assert retries == 1  # the lost response forced exactly one retry
        assert deduped == 1  # ... and the redelivery was recognised

    def test_lost_train_response_registers_exactly_one_model(self):
        inputs, labels = tiny_data()
        plan = FaultPlan(
            seed=0,
            specs=[FaultSpec("client.train.response", faults.ERROR, at=(0,))],
        )
        service = EugeneService(seed=0)
        client = EugeneClient(
            service, retry_policy=RetryPolicy(max_attempts=3, base_delay_s=0.0)
        )
        with faults.plan_session(plan):
            response = client.train(
                inputs, labels, model_config=TINY, epochs=1, name="once"
            )
        assert len(service.registry) == 1
        assert service.registry.get(response.model_id).name == "once"

    def test_request_leg_faults_still_retry_and_execute_once(self):
        # A request-leg fault fires before the service runs: no dedup
        # record may exist, and the retry must execute for real.
        plan = FaultPlan(
            seed=0,
            specs=[FaultSpec("client.delete", faults.ERROR, at=(0,))],
        )
        service = service_with_models(1)
        client = EugeneClient(
            service, retry_policy=RetryPolicy(max_attempts=3, base_delay_s=0.0)
        )
        with telemetry.session() as tel, faults.plan_session(plan):
            response = client.delete("m1")
            deduped = tel.registry.counter("service.deduplicated.delete").value
        assert response.deleted == ("m1",)
        assert deduped == 0

    def test_caller_supplied_key_is_preserved_across_retries(self):
        plan = FaultPlan(
            seed=0,
            specs=[FaultSpec("client.delete.response", faults.ERROR, at=(0,))],
        )
        service = service_with_models(1)
        client = EugeneClient(
            service, retry_policy=RetryPolicy(max_attempts=3, base_delay_s=0.0)
        )
        seen = []
        original = service.delete

        def spying_delete(request):
            seen.append(request.idempotency_key)
            return original(request)

        service.delete = spying_delete
        with faults.plan_session(plan):
            client.delete("m1")
        assert len(seen) == 2
        assert seen[0] == seen[1]  # same logical request, same key
