"""Admission gating at the service endpoints and the typed backpressure
path through the client (RejectedResponse -> BackpressureError)."""

import pytest

from repro import telemetry
from repro.admission import (
    CONCURRENCY,
    RATE_LIMIT,
    AdmissionController,
    EndpointLimits,
)
from repro.faults import BackpressureError, RetryPolicy
from repro.nn import StagedResNet, StagedResNetConfig
from repro.service import (
    DeleteRequest,
    EugeneClient,
    EugeneService,
    RejectedResponse,
)


TINY = StagedResNetConfig(
    num_classes=4, image_size=8, stage_channels=(4, 8), blocks_per_stage=1, seed=0
)


def service_with_models(n=2, admission=None):
    service = EugeneService(seed=0, admission=admission)
    for i in range(n):
        service.registry.register(f"model-{i}", StagedResNet(TINY))
    return service


class TestDeleteEndpoint:
    def test_delete_removes_the_model(self):
        service = service_with_models(1)
        response = service.delete(DeleteRequest(model_id="m1"))
        assert response.deleted == ("m1",)
        assert "m1" not in service.registry

    def test_parent_with_children_is_guarded(self):
        service = service_with_models(1)
        service.registry.register(
            "reduced", StagedResNet(TINY), kind="reduced", parent_id="m1"
        )
        with pytest.raises(ValueError, match="cascade"):
            service.delete(DeleteRequest(model_id="m1"))
        assert "m1" in service.registry  # refused, nothing removed

    def test_cascade_removes_the_subtree(self):
        service = service_with_models(1)
        service.registry.register(
            "reduced", StagedResNet(TINY), kind="reduced", parent_id="m1"
        )
        response = service.delete(DeleteRequest(model_id="m1", cascade=True))
        assert response.deleted[0] == "m1"
        assert set(response.deleted) == {"m1", "m2"}
        assert len(service.registry) == 0

    def test_unknown_model_raises(self):
        service = service_with_models(0)
        with pytest.raises(KeyError):
            service.delete(DeleteRequest(model_id="nope"))


class TestEndpointGate:
    def test_ungated_by_default(self):
        service = service_with_models(2)
        assert service.admission is None
        assert service.delete(DeleteRequest(model_id="m1")).deleted == ("m1",)

    def test_rejection_is_a_typed_response_not_an_exception(self):
        controller = AdmissionController(
            per_endpoint={"delete": EndpointLimits(rate_per_s=0.001, burst=1)}
        )
        service = service_with_models(2, admission=controller)
        first = service.delete(DeleteRequest(model_id="m1"))
        assert first.deleted == ("m1",)
        second = service.delete(DeleteRequest(model_id="m2"))
        assert isinstance(second, RejectedResponse)
        assert second.endpoint == "delete"
        assert second.reason == RATE_LIMIT
        assert second.retry_after_s > 0
        assert "m2" in service.registry  # rejected before any work

    def test_concurrency_slot_released_on_success(self):
        controller = AdmissionController(
            per_endpoint={"delete": EndpointLimits(max_concurrent=1)}
        )
        service = service_with_models(2, admission=controller)
        assert service.delete(DeleteRequest(model_id="m1")).deleted == ("m1",)
        # The slot came back: a second sequential call is admitted.
        assert service.delete(DeleteRequest(model_id="m2")).deleted == ("m2",)
        assert controller.in_flight("delete") == 0

    def test_concurrency_slot_released_on_endpoint_error(self):
        controller = AdmissionController(
            per_endpoint={"delete": EndpointLimits(max_concurrent=1)}
        )
        service = service_with_models(1, admission=controller)
        with pytest.raises(KeyError):
            service.delete(DeleteRequest(model_id="nope"))
        assert controller.in_flight("delete") == 0
        assert service.delete(DeleteRequest(model_id="m1")).deleted == ("m1",)

    def test_default_limits_gate_unlisted_endpoints(self):
        controller = AdmissionController(
            default=EndpointLimits(rate_per_s=0.001, burst=1)
        )
        service = service_with_models(2, admission=controller)
        assert service.delete(DeleteRequest(model_id="m1")).deleted == ("m1",)
        rejected = service.delete(DeleteRequest(model_id="m2"))
        assert isinstance(rejected, RejectedResponse)


class TestClientBackpressure:
    def test_client_raises_typed_backpressure(self):
        controller = AdmissionController(
            per_endpoint={"delete": EndpointLimits(rate_per_s=0.001, burst=1)}
        )
        client = EugeneClient(
            service_with_models(2, admission=controller),
            retry_policy=RetryPolicy(max_attempts=1),
        )
        assert client.delete("m1").deleted == ("m1",)
        with pytest.raises(BackpressureError) as excinfo:
            client.delete("m2")
        assert excinfo.value.reason == RATE_LIMIT
        assert excinfo.value.endpoint == "delete"
        assert excinfo.value.retry_after_s > 0

    def test_client_retry_honours_retry_after_and_recovers(self):
        # Bucket refills fast enough that the retry-after-floored backoff
        # clears the rejection on the second attempt.
        controller = AdmissionController(
            per_endpoint={"delete": EndpointLimits(rate_per_s=100.0, burst=1)}
        )
        session = telemetry.enable()
        try:
            client = EugeneClient(
                service_with_models(2, admission=controller),
                retry_policy=RetryPolicy(max_attempts=3, base_delay_s=0.0),
            )
            assert client.delete("m1").deleted == ("m1",)
            assert client.delete("m2").deleted == ("m2",)  # retried past reject
            counters = session.registry.counters()
            assert counters.get("client.rejected.delete", 0) >= 1
        finally:
            telemetry.disable()

    def test_backpressure_not_retried_when_attempts_exhausted(self):
        controller = AdmissionController(
            per_endpoint={"delete": EndpointLimits(max_concurrent=1)}
        )
        service = service_with_models(1, admission=controller)
        # Hold the only slot so every attempt is rejected.
        assert controller.admit("delete").admitted
        client = EugeneClient(
            service, retry_policy=RetryPolicy(max_attempts=2, base_delay_s=0.0)
        )
        with pytest.raises(BackpressureError) as excinfo:
            client.delete("m1")
        assert excinfo.value.reason == CONCURRENCY
        controller.release("delete")
