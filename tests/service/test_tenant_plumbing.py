"""Tenant plumbing end to end: messages -> client stamping -> server gate.

Every request dataclass carries an optional ``tenant``; a client built
with a default tenant stamps it on every request; the service's
admission gate hands it to the controller verbatim.
"""

import dataclasses

import numpy as np
import pytest

from repro.admission import AdmissionController
from repro.nn import StagedResNet, StagedResNetConfig
from repro.service import EugeneClient, EugeneService
from repro.service.messages import (
    CalibrateRequest,
    ClassifyRequest,
    DeepSenseTrainRequest,
    DeleteRequest,
    EstimateRequest,
    EstimatorTrainRequest,
    InferRequest,
    LabelRequest,
    ProfileRequest,
    ReduceRequest,
    TrainRequest,
)

REQUEST_CLASSES = (
    TrainRequest,
    DeepSenseTrainRequest,
    EstimatorTrainRequest,
    ClassifyRequest,
    LabelRequest,
    ReduceRequest,
    ProfileRequest,
    CalibrateRequest,
    EstimateRequest,
    InferRequest,
    DeleteRequest,
)

TINY = StagedResNetConfig(
    num_classes=3, image_size=8, stage_channels=(4, 8), blocks_per_stage=1,
    seed=0,
)


class TestMessageTenantField:
    def test_every_request_class_has_an_optional_tenant(self):
        assert len(REQUEST_CLASSES) == 11
        for cls in REQUEST_CLASSES:
            fields = {f.name: f for f in dataclasses.fields(cls)}
            assert "tenant" in fields, cls.__name__
            assert fields["tenant"].default is None, cls.__name__

    def test_tenant_validation(self):
        with pytest.raises(ValueError):
            ProfileRequest(model_id="m1", tenant="")
        with pytest.raises(ValueError):
            ProfileRequest(model_id="m1", tenant=7)
        assert ProfileRequest(model_id="m1", tenant="acme").tenant == "acme"
        assert ProfileRequest(model_id="m1").tenant is None


class _RecordingService:
    """Duck-typed stand-in: records every request, echoes it back."""

    def __init__(self):
        self.requests = []

    def __getattr__(self, name):
        def method(request):
            self.requests.append(request)
            return request

        return method


def exercise_all_endpoints(client, rng):
    x1 = rng.normal(size=(1, 3, 8, 8))
    xs = rng.normal(size=(6, 3, 8, 8))
    ys = rng.integers(0, 3, size=6)
    client.train(xs, ys, model_config=TINY, epochs=1, batch_size=6)
    client.train_deepsense(
        rng.normal(size=(8, 2, 3, 4)), rng.integers(0, 2, size=8), steps=1
    )
    client.train_estimator(
        rng.normal(size=(12, 3)), rng.normal(size=12), hidden=2, steps=1
    )
    client.classify("m1", x1)
    client.label(xs[:4], ys[:4], xs[4:], num_classes=3,
                 method="self-training", rounds=1)
    client.reduce("m1", width_fraction=0.5, epochs=1)
    client.profile("m1")
    client.calibrate("m1", xs, ys, epochs=1)
    client.estimate("m1", rng.normal(size=(2, 3)))
    client.infer("m1", x1, latency_constraint_s=10.0, num_workers=1)
    client.delete("m1")


class TestClientStamping:
    def test_default_tenant_reaches_all_eleven_requests(self):
        service = _RecordingService()
        client = EugeneClient(service, tenant="acme")
        exercise_all_endpoints(client, np.random.default_rng(0))
        assert len(service.requests) == 11
        assert {type(r) for r in service.requests} == set(REQUEST_CLASSES)
        for request in service.requests:
            assert request.tenant == "acme", type(request).__name__

    def test_explicit_tenant_wins_over_the_default(self):
        service = _RecordingService()
        client = EugeneClient(service, tenant="acme")
        client.profile("m1", tenant="other")
        assert service.requests[-1].tenant == "other"

    def test_untenanted_client_leaves_requests_untenanted(self):
        service = _RecordingService()
        client = EugeneClient(service)
        client.profile("m1")
        assert service.requests[-1].tenant is None


class _RecordingController(AdmissionController):
    """Real controller that also records what the server hands it."""

    def __init__(self):
        super().__init__()
        self.seen = []

    def admit(self, endpoint, model_id=None, tenant=None, now=None):
        self.seen.append((endpoint, tenant))
        return super().admit(
            endpoint, model_id=model_id, tenant=tenant, now=now
        )


class TestServerPassesTenantToAdmission:
    def test_request_tenant_reaches_the_controller(self):
        controller = _RecordingController()
        service = EugeneService(seed=0, admission=controller)
        service.registry.register("m1", StagedResNet(TINY))
        service.profile(ProfileRequest(model_id="m1", tenant="acme"))
        service.delete(DeleteRequest(model_id="m1"))
        assert ("profile", "acme") in controller.seen
        assert ("delete", None) in controller.seen
