"""Tests for the estimation (regression) service endpoints."""

import numpy as np
import pytest

from repro.service import (
    EstimateRequest,
    EstimatorTrainRequest,
    EugeneClient,
    EugeneService,
)


def regression_data(n, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1, 1, size=(n, 3))
    y = x @ np.array([1.0, -2.0, 0.5]) + rng.normal(0, 0.1, n)
    return x, y


@pytest.fixture(scope="module")
def trained_estimator():
    service = EugeneService(seed=0)
    client = EugeneClient(service)
    x, y = regression_data(500)
    response = client.train_estimator(x, y, steps=500, name="position")
    return service, client, response


class TestTrainEstimator:
    def test_learns_linear_map(self, trained_estimator):
        _, _, response = trained_estimator
        assert response.train_mae < 0.2
        assert 0.7 <= response.coverage_90 <= 1.0

    def test_registered_as_estimator(self, trained_estimator):
        service, _, response = trained_estimator
        entry = service.registry.get(response.model_id)
        assert entry.kind == "estimator"

    def test_request_validation(self):
        with pytest.raises(ValueError):
            EstimatorTrainRequest(inputs=np.zeros((2, 3)), targets=np.zeros(3))
        with pytest.raises(ValueError):
            EstimatorTrainRequest(inputs=np.zeros((0, 3)), targets=np.zeros(0))
        with pytest.raises(ValueError):
            EstimatorTrainRequest(
                inputs=np.zeros((2, 3)), targets=np.zeros(2), loss_weight=1.5
            )


class TestEstimate:
    def test_intervals_bracket_truth_mostly(self, trained_estimator):
        _, client, response = trained_estimator
        x, y = regression_data(300, seed=1)
        out = client.estimate(response.model_id, x, confidence_level=0.9)
        inside = ((y[:, None] >= out.lower) & (y[:, None] <= out.upper)).mean()
        assert inside > 0.75
        assert (out.stds > 0).all()
        assert out.confidence_level == 0.9

    def test_wider_level_wider_interval(self, trained_estimator):
        _, client, response = trained_estimator
        x, _ = regression_data(20, seed=2)
        narrow = client.estimate(response.model_id, x, confidence_level=0.5)
        wide = client.estimate(response.model_id, x, confidence_level=0.99)
        assert ((wide.upper - wide.lower) > (narrow.upper - narrow.lower)).all()

    def test_rejects_classifier_models(self, trained_estimator):
        service, client, _ = trained_estimator
        from repro.datasets import SyntheticImageConfig, make_image_dataset
        from repro.nn import StagedResNetConfig

        data = make_image_dataset(
            60, SyntheticImageConfig(num_classes=3, image_size=8, seed=0), seed=0
        )
        trained = client.train(
            data.inputs, data.labels,
            model_config=StagedResNetConfig(
                num_classes=3, image_size=8, stage_channels=(4,),
                blocks_per_stage=1, seed=0,
            ),
            epochs=1,
        )
        with pytest.raises(ValueError):
            client.estimate(trained.model_id, np.zeros((1, 3 * 8 * 8)))

    def test_request_validation(self):
        with pytest.raises(ValueError):
            EstimateRequest(model_id="m1", inputs=np.zeros((1, 2)),
                            confidence_level=1.0)
