"""Trace generation: determinism, tenant stability, shaped arrivals."""

import numpy as np
import pytest

from repro.workload import ENDPOINTS, FlashCrowd, TenantSpec, generate_trace
from repro.workload.tenants import serving_mix, uniform_mix


def spec(name="t0", rate=200.0, **kwargs):
    return TenantSpec(name=name, rate_per_s=rate, **kwargs)


class TestTenantSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            TenantSpec(name="", rate_per_s=1.0)
        with pytest.raises(ValueError):
            spec(rate=0.0)
        with pytest.raises(ValueError):
            spec(diurnal_amplitude=1.5)
        with pytest.raises(ValueError):
            spec(burst_multiplier=0.5)
        with pytest.raises(ValueError):
            spec(endpoint_mix={"teleport": 1.0})

    def test_mixes_cover_all_endpoints(self):
        assert len(ENDPOINTS) == 11
        assert set(uniform_mix()) == set(ENDPOINTS)
        assert set(serving_mix()) == set(ENDPOINTS)
        assert sum(spec().normalized_mix()) == pytest.approx(1.0)

    def test_normalized_mix_aligned_with_endpoints(self):
        s = spec(endpoint_mix={"classify": 3.0, "delete": 1.0})
        mix = s.normalized_mix()
        assert mix[ENDPOINTS.index("classify")] == pytest.approx(0.75)
        assert mix[ENDPOINTS.index("delete")] == pytest.approx(0.25)
        assert sum(mix) == pytest.approx(1.0)


class TestGenerateTrace:
    def test_deterministic_in_seed(self):
        specs = [spec("a"), spec("b", rate=120.0)]
        one = generate_trace(specs, duration_s=20.0, seed=3)
        two = generate_trace(specs, duration_s=20.0, seed=3)
        other = generate_trace(specs, duration_s=20.0, seed=4)
        assert np.array_equal(one.times, two.times)
        assert np.array_equal(one.tenant_idx, two.tenant_idx)
        assert np.array_equal(one.endpoint_idx, two.endpoint_idx)
        assert not np.array_equal(one.times, other.times)

    def test_sorted_and_parallel_arrays(self):
        trace = generate_trace([spec("a"), spec("b")], duration_s=30.0, seed=0)
        assert (np.diff(trace.times) >= 0).all()
        assert len(trace.times) == len(trace.tenant_idx)
        assert len(trace.times) == len(trace.endpoint_idx)
        assert trace.times.max() <= 30.0
        counts = trace.per_tenant_counts()
        assert sum(counts.values()) == len(trace)

    def test_adding_a_tenant_never_perturbs_another(self):
        # The isolation experiment's bedrock: a tenant's arrivals are a
        # pure function of (its name, seed, duration), independent of
        # who else is in the population.
        solo = generate_trace([spec("victim")], duration_s=25.0, seed=9)
        crowd = generate_trace(
            [spec("victim"), spec("abuser", rate=2000.0), spec("extra")],
            duration_s=25.0,
            seed=9,
        )
        mask = crowd.tenant_idx == crowd.tenant_names.index("victim")
        assert np.array_equal(crowd.times[mask], solo.times)
        assert np.array_equal(crowd.endpoint_idx[mask], solo.endpoint_idx)

    def test_rate_scales_arrival_counts(self):
        slow = generate_trace([spec(rate=50.0)], duration_s=40.0, seed=5)
        fast = generate_trace([spec(rate=500.0)], duration_s=40.0, seed=5)
        assert len(slow) == pytest.approx(2000, rel=0.15)
        assert len(fast) == pytest.approx(20000, rel=0.05)

    def test_diurnal_cycle_shapes_arrivals(self):
        s = spec(
            rate=400.0,
            diurnal_amplitude=0.9,
            diurnal_period_s=40.0,
            diurnal_phase=0.0,
        )
        trace = generate_trace([s], duration_s=40.0, seed=2)
        # sin > 0 over the first half period: the crest half must carry
        # substantially more arrivals than the trough half.
        crest = (trace.times < 20.0).sum()
        trough = (trace.times >= 20.0).sum()
        assert crest > 2.0 * trough

    def test_flash_crowd_only_hits_its_group(self):
        members = [
            spec("in-a", flash_group="g"),
            spec("in-b", flash_group="g"),
            spec("out", flash_group=None),
        ]
        crowd = FlashCrowd(group="g", start_s=10.0, duration_s=10.0, multiplier=4.0)
        trace = generate_trace(members, duration_s=30.0, seed=6, flash_crowds=(crowd,))
        base = generate_trace(members, duration_s=30.0, seed=6)

        def in_window(t, name):
            mask = t.tenant_idx == t.tenant_names.index(name)
            times = t.times[mask]
            return ((times >= 10.0) & (times < 20.0)).sum()

        assert in_window(trace, "in-a") > 2.5 * in_window(base, "in-a")
        assert in_window(trace, "out") == in_window(base, "out")

    def test_bursts_increase_dispersion(self):
        calm = generate_trace([spec(rate=300.0)], duration_s=60.0, seed=8)
        bursty = generate_trace(
            [spec(rate=300.0, burst_multiplier=6.0, burst_fraction=0.1,
                  burst_mean_s=2.0)],
            duration_s=60.0,
            seed=8,
        )
        # Index-of-dispersion of per-second counts: Poisson ~1, MMPP >> 1.
        def dispersion(trace):
            counts = np.bincount(trace.times.astype(int), minlength=60)
            return counts.var() / counts.mean()

        assert dispersion(calm) < 2.0
        assert dispersion(bursty) > 3.0

    def test_endpoint_mix_respected(self):
        s = spec(rate=500.0, endpoint_mix={"classify": 0.9, "train": 0.1})
        trace = generate_trace([s], duration_s=40.0, seed=1)
        counts = trace.per_endpoint_counts()
        total = sum(counts.values())
        assert counts["classify"] / total == pytest.approx(0.9, abs=0.02)
        assert counts["train"] / total == pytest.approx(0.1, abs=0.02)
        assert counts["delete"] == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_trace([], duration_s=10.0, seed=0)
        with pytest.raises(ValueError):
            generate_trace([spec("x"), spec("x")], duration_s=10.0, seed=0)
        with pytest.raises(ValueError):
            generate_trace([spec()], duration_s=0.0, seed=0)
        with pytest.raises(ValueError):
            FlashCrowd(group="g", start_s=0.0, duration_s=1.0, multiplier=0.5)
