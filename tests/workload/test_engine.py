"""The DES workload engine: exact accounting, fairness, shedding, SLOs."""

import pytest

from repro.admission import AdmissionController, TenantQuota
from repro.workload import (
    EngineConfig,
    TenantSpec,
    WorkloadEngine,
    generate_trace,
)


def run_engine(specs, duration_s=20.0, seed=0, admission=None, config=None,
               weights=None):
    trace = generate_trace(specs, duration_s=duration_s, seed=seed)
    engine = WorkloadEngine(
        config=config, admission=admission, weights=weights, seed=seed
    )
    return engine.run(trace)


class TestEngineConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(servers=0)
        with pytest.raises(ValueError):
            EngineConfig(max_queue=0)
        with pytest.raises(ValueError):
            EngineConfig(slo_s=0.0)
        with pytest.raises(ValueError):
            EngineConfig(service_times_s={"teleport": 1.0})


class TestAccounting:
    def test_exact_without_admission(self):
        report = run_engine(
            [TenantSpec(name="a", rate_per_s=300.0),
             TenantSpec(name="b", rate_per_s=150.0)]
        )
        assert report.accounting_exact, report.accounting_detail
        assert report.total_admitted == report.total_arrivals
        assert report.total_served == report.total_admitted
        assert report.total_rejected == 0

    def test_exact_against_real_controller(self):
        admission = AdmissionController(
            per_tenant={
                "a": TenantQuota(weight=1.0),
                "b": TenantQuota(weight=1.0),
            },
            tenant_capacity_per_s=200.0,
            tenant_capacity_burst=1.0,
        )
        report = run_engine(
            [TenantSpec(name="a", rate_per_s=400.0),
             TenantSpec(name="b", rate_per_s=50.0)],
            admission=admission,
        )
        assert report.accounting_exact, report.accounting_detail
        assert report.total_rejected > 0
        # The overloaded tenant is the one shedding; per-tenant integers
        # reconcile with the controller's own stats by construction.
        assert report.tenants["a"].rejected > 0
        assert report.tenants["b"].rejected == 0
        stats = admission.tenant_stats()
        assert stats["a"]["admitted"] == report.tenants["a"].admitted
        assert stats["a"]["rejected"] == report.tenants["a"].rejected

    def test_queue_shed_when_servers_overwhelmed(self):
        config = EngineConfig(
            servers=1,
            service_times_s={"classify": 0.5},
            max_queue=20,
            slo_s=1.0,
        )
        report = run_engine(
            [TenantSpec(
                name="a", rate_per_s=100.0,
                endpoint_mix={"classify": 1.0},
            )],
            duration_s=10.0,
            config=config,
        )
        assert report.accounting_exact, report.accounting_detail
        rep = report.tenants["a"]
        assert rep.queue_shed > 0
        assert rep.admitted + rep.rejected == rep.arrivals
        # Everything admitted eventually drains, but the queue bound caps
        # admissions near served-capacity (~2/s) plus the bound itself:
        # the vast majority of the 100/s offered load is shed.
        assert rep.served == rep.admitted
        assert rep.admitted < 0.1 * rep.arrivals


class TestDispatchFairness:
    def test_backlogged_tenant_cannot_starve_a_light_one(self):
        # One tenant floods a single slow server; the light tenant's
        # requests must still be dispatched promptly (deficit round
        # robin), not queued behind the flood.
        config = EngineConfig(
            servers=4,
            service_times_s={"classify": 0.02},
            max_queue=100_000,
            slo_s=0.5,
        )
        report = run_engine(
            [TenantSpec(name="flood", rate_per_s=400.0,
                        endpoint_mix={"classify": 1.0}),
             TenantSpec(name="light", rate_per_s=10.0,
                        endpoint_mix={"classify": 1.0})],
            duration_s=20.0,
            config=config,
        )
        # Offered 410/s * 0.02 s = 8.2 server-demand on 4 servers: the
        # flood's backlog grows without bound, yet the light tenant is
        # served within its fair share.
        assert report.accounting_exact, report.accounting_detail
        light = report.tenants["light"]
        flood = report.tenants["flood"]
        assert light.within_slo >= 0.9 * light.arrivals
        # The flood's own backlog blows through the SLO (its queue drains
        # only after the trace ends).
        assert flood.within_slo < 0.7 * flood.arrivals

    def test_weights_bias_dispatch(self):
        # A single 100/s server, "lite" permanently backlogged at 200/s.
        # "heavy" offers 70/s: above the 50/s it would get under equal
        # round-robin quanta, below the 80/s its 4:1 weight guarantees.
        # Only weighted dispatch keeps heavy inside the SLO.
        config = EngineConfig(
            servers=1,
            service_times_s={"classify": 0.01},
            max_queue=100_000,
            slo_s=0.5,
        )
        report = run_engine(
            [TenantSpec(name="heavy", rate_per_s=70.0,
                        endpoint_mix={"classify": 1.0}),
             TenantSpec(name="lite", rate_per_s=200.0,
                        endpoint_mix={"classify": 1.0})],
            duration_s=10.0,
            config=config,
            weights={"heavy": 4.0, "lite": 1.0},
        )
        heavy = report.tenants["heavy"]
        lite = report.tenants["lite"]
        assert heavy.within_slo >= 0.9 * heavy.arrivals
        assert lite.within_slo < 0.3 * lite.arrivals


class TestReports:
    def test_latency_quantiles_populated(self):
        report = run_engine([TenantSpec(name="a", rate_per_s=200.0)])
        rep = report.tenants["a"]
        assert rep.p50_ms > 0
        assert rep.p50_ms <= rep.p95_ms <= rep.p99_ms
        assert rep.goodput_per_s > 0

    def test_as_dict_round_trip(self):
        import json

        report = run_engine([TenantSpec(name="a", rate_per_s=100.0)])
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["accounting_exact"] is True
        assert payload["tenants"]["a"]["arrivals"] == (
            report.tenants["a"].arrivals
        )
        assert payload["completed_s"] >= payload["duration_s"]
