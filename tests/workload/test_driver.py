"""Live replay: ClusterDriver's exact accounting against a real router."""

import json

from repro.admission import AdmissionController, TenantQuota
from repro.workload import ClusterDriver, TenantSpec, generate_trace

#: serving-only mix keeps the replay to cheap endpoints so the whole
#: module stays in the seconds range.
SERVING = {"classify": 0.5, "estimate": 0.3, "profile": 0.2}


def make_trace(duration_s=3.0, rate=60.0, seed=0):
    return generate_trace(
        [
            TenantSpec(name="a", rate_per_s=rate, endpoint_mix=SERVING),
            TenantSpec(name="b", rate_per_s=rate, endpoint_mix=SERVING),
        ],
        duration_s=duration_s,
        seed=seed,
    )


class TestClusterDriver:
    def test_replay_accounting_is_exact(self):
        trace = make_trace()
        driver = ClusterDriver(
            trace, num_replicas=1, num_threads=4, backend="thread", seed=0
        )
        report = driver.run()
        assert report.accounting_exact, report.accounting_detail
        # Serving-only mix: exactly one router call per trace arrival.
        assert report.requests == len(trace)
        assert set(report.per_tenant) == {"a", "b"}
        for outcome in report.per_tenant.values():
            assert outcome.ok + outcome.rejected + outcome.errors == (
                outcome.issued
            )
            assert outcome.errors == 0
        tenants = report.snapshot.get("tenants", {})
        assert {"a", "b"} <= set(tenants)
        assert report.throughput_per_s > 0
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["accounting_exact"] is True
        assert payload["per_tenant"]["a"]["issued"] == (
            report.per_tenant["a"].issued
        )

    def test_limit_caps_the_replay(self):
        trace = make_trace()
        driver = ClusterDriver(
            trace, num_replicas=1, num_threads=2, backend="thread", seed=1
        )
        report = driver.run(limit=40)
        assert report.accounting_exact, report.accounting_detail
        assert report.requests == 40

    def test_rejections_stay_exact_under_tight_quotas(self):
        # Closed-loop replay floods far past a 5/s per-tenant quota: the
        # vast majority of calls come back as typed rejections, and the
        # client-side integers must still reconcile with the router's
        # snapshot to the last request.
        admission = AdmissionController(
            per_tenant={
                "a": TenantQuota(rate_per_s=5.0),
                "b": TenantQuota(rate_per_s=5.0),
            },
            tenant_capacity_per_s=50.0,
        )
        trace = make_trace(duration_s=4.0, rate=80.0, seed=2)
        driver = ClusterDriver(
            trace,
            num_replicas=1,
            num_threads=4,
            backend="thread",
            admission=admission,
            seed=2,
        )
        report = driver.run()
        assert report.accounting_exact, report.accounting_detail
        total_rejected = sum(
            o.rejected for o in report.per_tenant.values()
        )
        assert total_rejected > 0
        stats = admission.tenant_stats()
        for tenant in ("a", "b"):
            outcome = report.per_tenant[tenant]
            assert stats[tenant]["rejected"] == outcome.rejected
