"""Tests for cross-camera tracking and track stitching."""

import numpy as np
import pytest

from repro.collaborative import (
    CollaborativeFrameResult,
    CollaborativePipeline,
    Detection,
    SSDDetector,
    World,
    WorldConfig,
    ring_of_cameras,
)
from repro.collaborative.tracking import (
    Track,
    TrackPoint,
    Tracker,
    stitch_tracks,
    tracking_metrics,
)


def frame(t, dets_by_cam):
    return CollaborativeFrameResult(
        t=t,
        detections=dets_by_cam,
        latency_ms={c: 1.0 for c in dets_by_cam},
        mode={c: "full" for c in dets_by_cam},
    )


def det(x, y, cam=0, person=None, conf=0.9):
    return Detection(camera_id=cam, bearing=0.0, distance=1.0,
                     world_xy=(float(x), float(y)), confidence=conf,
                     true_person=person)


class TestTracker:
    def test_straight_walk_becomes_one_track(self):
        frames = [frame(t, {0: [det(t * 1.0, 0.0, person=3)]}) for t in range(6)]
        tracks = Tracker(gate=2.5).build_tracks(frames, camera_id=0)
        assert len(tracks) == 1
        assert tracks[0].length == 6
        assert tracks[0].dominant_person() == 3

    def test_two_people_two_tracks(self):
        frames = [
            frame(t, {0: [det(t, 0.0, person=0), det(t, 30.0, person=1)]})
            for t in range(5)
        ]
        tracks = Tracker(gate=2.5).build_tracks(frames, camera_id=0)
        assert len(tracks) == 2
        assert {t.dominant_person() for t in tracks} == {0, 1}

    def test_gap_beyond_silence_closes_track(self):
        frames = (
            [frame(t, {0: [det(t, 0.0, person=0)]}) for t in range(3)]
            + [frame(t, {0: []}) for t in range(3, 10)]
            + [frame(t, {0: [det(t, 0.0, person=0)]}) for t in range(10, 12)]
        )
        tracks = Tracker(gate=30.0, max_silence=3.0).build_tracks(frames, 0)
        assert len(tracks) == 2

    def test_prediction_constant_velocity(self):
        track = Track(track_id=0, camera_id=0)
        for t in range(4):
            track.points.append(TrackPoint(t=float(t), xy=np.array([2.0 * t, 0.0])))
        np.testing.assert_allclose(track.predict(5.0), [10.0, 0.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            Tracker(gate=0.0)
        with pytest.raises(ValueError):
            Tracker(max_silence=-1.0)

    def test_clutter_starts_short_tracks(self):
        frames = [frame(0.0, {0: [det(50, 50, person=None)]})]
        tracks = Tracker().build_tracks(frames, 0)
        assert len(tracks) == 1
        assert tracks[0].dominant_person() is None


class TestStitching:
    def walk_track(self, track_id, cam, t0, x0, vx=1.0, steps=4, person=0):
        track = Track(track_id=track_id, camera_id=cam)
        for i in range(steps):
            track.points.append(
                TrackPoint(t=t0 + i, xy=np.array([x0 + vx * i, 0.0]),
                           true_person=person)
            )
        return track

    def test_handover_between_cameras(self):
        a = self.walk_track(0, cam=0, t0=0.0, x0=0.0)
        b = self.walk_track(1, cam=1, t0=5.0, x0=5.0)  # continues a's motion
        groups = stitch_tracks([a, b], max_gap_s=3.0, max_distance=3.0)
        assert len(groups) == 1
        assert [t.track_id for t in groups[0]] == [0, 1]

    def test_distant_tracks_not_stitched(self):
        a = self.walk_track(0, cam=0, t0=0.0, x0=0.0)
        b = self.walk_track(1, cam=1, t0=5.0, x0=80.0)
        groups = stitch_tracks([a, b], max_gap_s=3.0, max_distance=3.0)
        assert len(groups) == 2

    def test_lagged_corridor_stitching(self):
        """The Sec. IV-C corridor: camera 1 sees the person 20s after
        camera 0; stitching succeeds only with the broker-supplied lag."""
        a = self.walk_track(0, cam=0, t0=0.0, x0=0.0, vx=0.0)
        b = self.walk_track(1, cam=1, t0=23.0, x0=0.5, vx=0.0)
        no_lag = stitch_tracks([a, b], max_gap_s=3.0, max_distance=3.0, lag_s=0.0)
        assert len(no_lag) == 2
        with_lag = stitch_tracks([a, b], max_gap_s=3.0, max_distance=3.0, lag_s=20.0)
        assert len(with_lag) == 1

    def test_chain_of_three(self):
        a = self.walk_track(0, 0, t0=0.0, x0=0.0)
        b = self.walk_track(1, 1, t0=5.0, x0=5.0)
        c = self.walk_track(2, 2, t0=10.0, x0=10.0)
        groups = stitch_tracks([a, b, c], max_gap_s=3.0, max_distance=3.0)
        assert len(groups) == 1
        assert len(groups[0]) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            stitch_tracks([], max_gap_s=0.0)


class TestTrackingMetrics:
    def test_empty(self):
        world = World(WorldConfig(num_people=3))
        metrics = tracking_metrics([], world)
        assert metrics.num_tracks == 0
        assert metrics.person_coverage == 0.0

    def test_pure_single_person_group(self):
        world = World(WorldConfig(num_people=2))
        track = Track(track_id=0, camera_id=0)
        for t in range(5):
            track.points.append(TrackPoint(t=float(t), xy=np.zeros(2), true_person=1))
        metrics = tracking_metrics([[track]], world)
        assert metrics.purity == 1.0
        assert metrics.person_coverage == 0.5
        assert metrics.identity_switches == 0

    def test_identity_switch_counted(self):
        world = World(WorldConfig(num_people=2))
        a = Track(track_id=0, camera_id=0)
        a.points.append(TrackPoint(t=0.0, xy=np.zeros(2), true_person=0))
        b = Track(track_id=1, camera_id=1)
        b.points.append(TrackPoint(t=1.0, xy=np.zeros(2), true_person=1))
        metrics = tracking_metrics([[a, b]], world)
        assert metrics.identity_switches == 1

    def test_end_to_end_on_simulated_campus(self):
        """Tracking over real pipeline output reaches decent purity."""
        world = World(WorldConfig(num_people=8, num_occluders=4, seed=4))
        cameras = ring_of_cameras(6, world)
        pipeline = CollaborativePipeline(world, cameras, SSDDetector(seed=0))
        frames = pipeline.run_collaborative(50)
        tracker = Tracker(gate=4.0)
        all_tracks = []
        for cam in cameras:
            all_tracks.extend(tracker.build_tracks(frames, cam.camera_id))
        long_tracks = [t for t in all_tracks if t.length >= 3]
        groups = stitch_tracks(long_tracks, max_gap_s=3.0, max_distance=6.0)
        metrics = tracking_metrics(groups, world)
        assert metrics.num_tracks > 0
        assert metrics.purity > 0.75
        assert metrics.person_coverage > 0.6
