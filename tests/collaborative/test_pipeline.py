"""Tests for the detector, collaborative pipeline, broker and resilience."""

import numpy as np
import pytest

from repro.collaborative import (
    Camera,
    CameraPose,
    CollaborationBroker,
    CollaborativePipeline,
    Detection,
    DetectorConfig,
    ResilienceMonitor,
    RogueCamera,
    SSDDetector,
    World,
    WorldConfig,
    match_detections,
    ring_of_cameras,
)


@pytest.fixture(scope="module")
def campus():
    world = World(WorldConfig(num_people=12, num_occluders=6, seed=2))
    return world, ring_of_cameras(8, world)


class TestDetector:
    def test_detection_probability_zero_outside_fov(self, campus):
        world, cams = campus
        detector = SSDDetector(seed=0)
        # Camera 0 sits on the +x boundary facing the center, so "behind"
        # is further along +x.
        behind = cams[0].pose.position + np.array([10.0, 0.0])
        # A point straight behind camera 0 (which faces the center).
        p = detector.detection_probability(cams[0], behind, world)
        assert p == 0.0

    def test_probability_decays_with_distance(self, campus):
        world, cams = campus
        cam = Camera(0, CameraPose(x=0, y=50, orientation=0.0, max_range=80))
        detector = SSDDetector(seed=0)
        near = detector.detection_probability(cam, np.array([5.0, 50.0]), world)
        far = detector.detection_probability(cam, np.array([70.0, 50.0]), world)
        assert near > far

    def test_detections_have_world_remap_consistency(self, campus):
        world, cams = campus
        detector = SSDDetector(seed=1)
        for det in detector.detect(cams[0], world, t=3.0):
            recon = cams[0].to_world(det.bearing, det.distance)
            np.testing.assert_allclose(recon, det.world_xy, atol=1e-9)

    def test_false_positives_have_no_true_person(self, campus):
        world, cams = campus
        cfg = DetectorConfig(clutter_rate=5.0)
        detector = SSDDetector(cfg, seed=2)
        dets = detector.detect(cams[0], world, t=0.0)
        assert any(d.true_person is None for d in dets)

    def test_verify_prior_confirms_real_person(self, campus):
        world, cams = campus
        detector = SSDDetector(seed=3)
        positions = world.positions_at(5.0)
        visible = [p for p in positions if cams[0].in_fov(p)]
        if not visible:
            pytest.skip("no visible person at this instant")
        hits = 0
        for _ in range(20):
            if detector.verify_prior(cams[0], world, 5.0, visible[0]) is not None:
                hits += 1
        assert hits >= 10  # ROI verification is highly sensitive

    def test_verify_prior_rejects_empty_region(self, campus):
        world, cams = campus
        detector = SSDDetector(seed=4)
        positions = world.positions_at(5.0)
        # Find an in-FoV point far from every person.
        rng = np.random.default_rng(0)
        for _ in range(500):
            candidate = np.array(
                [rng.uniform(0, 100), rng.uniform(0, 100)]
            )
            if cams[0].in_fov(candidate) and (
                np.linalg.norm(positions - candidate, axis=1).min() > 6.0
            ):
                assert detector.verify_prior(cams[0], world, 5.0, candidate) is None
                return
        pytest.skip("no empty in-FoV region found")

    def test_latency_model(self):
        detector = SSDDetector()
        assert detector.full_frame_latency_ms() == 550.0
        assert detector.prior_frame_latency_ms(10) == pytest.approx(12.0 + 1.5)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DetectorConfig(base_detect_prob=0.0)
        with pytest.raises(ValueError):
            DetectorConfig(full_latency_ms=-1)


class TestMatchDetections:
    def make_det(self, xy, conf=0.9):
        return Detection(camera_id=0, bearing=0.0, distance=1.0,
                         world_xy=xy, confidence=conf)

    def test_perfect_match(self):
        truth = np.array([[0.0, 0.0], [10.0, 10.0]])
        dets = [self.make_det((0.2, 0.1)), self.make_det((10.1, 9.8))]
        assert match_detections(dets, truth) == (2, 0, 0)

    def test_false_positive_and_negative(self):
        truth = np.array([[0.0, 0.0]])
        dets = [self.make_det((50.0, 50.0))]
        assert match_detections(dets, truth) == (0, 1, 1)

    def test_no_double_matching(self):
        truth = np.array([[0.0, 0.0]])
        dets = [self.make_det((0.1, 0.0)), self.make_det((0.0, 0.1))]
        tp, fp, fn = match_detections(dets, truth)
        assert (tp, fp, fn) == (1, 1, 0)

    def test_tolerance_validation(self):
        with pytest.raises(ValueError):
            match_detections([], np.zeros((0, 2)), tolerance=0)


class TestCollaborativePipeline:
    @pytest.fixture(scope="class")
    def runs(self, campus):
        world, cams = campus
        individual = CollaborativePipeline(world, cams, SSDDetector(seed=0))
        ind_results = individual.run_individual(60)
        ind_eval = individual.evaluate(ind_results)
        collab = CollaborativePipeline(world, cams, SSDDetector(seed=0))
        col_results = collab.run_collaborative(60)
        col_eval = collab.evaluate(col_results)
        return ind_eval, col_eval, col_results

    def test_collaboration_improves_detection_accuracy(self, runs):
        ind_eval, col_eval, _ = runs
        assert col_eval.detection_accuracy > ind_eval.detection_accuracy

    def test_collaboration_slashes_latency(self, runs):
        """Table IV: >10x average latency reduction."""
        ind_eval, col_eval, _ = runs
        assert ind_eval.mean_latency_ms / col_eval.mean_latency_ms > 8.0

    def test_most_frames_use_prior_path(self, runs):
        *_, col_results = runs
        modes = [m for frame in col_results[1:] for m in frame.mode.values()]
        assert modes.count("prior") / len(modes) > 0.8

    def test_frame_zero_bootstraps_full(self, runs):
        *_, col_results = runs
        assert set(col_results[0].mode.values()) == {"full"}

    def test_validation(self, campus):
        world, cams = campus
        with pytest.raises(ValueError):
            CollaborativePipeline(world, [], SSDDetector())
        with pytest.raises(ValueError):
            CollaborativePipeline(world, cams, SSDDetector(), refresh_every=0)
        with pytest.raises(ValueError):
            CollaborativePipeline(world, cams, SSDDetector(), share_threshold=1.5)


class TestBroker:
    def test_discovers_synthetic_concurrent_overlap(self):
        rng = np.random.default_rng(0)
        shared = rng.poisson(3, 200).astype(float)
        streams = {
            0: shared + rng.normal(0, 0.3, 200),
            1: shared + rng.normal(0, 0.3, 200),
            2: rng.poisson(3, 200).astype(float),
        }
        results = CollaborationBroker(threshold=0.5).discover(streams)
        pairs = {(r.camera_a, r.camera_b) for r in results}
        assert (0, 1) in pairs
        assert (0, 2) not in pairs and (1, 2) not in pairs

    def test_discovers_lagged_corridor_correlation(self):
        """Two corridor cameras see the same people ~20 frames apart."""
        rng = np.random.default_rng(1)
        base = rng.poisson(2, 300).astype(float)
        lag = 20
        streams = {
            0: base + rng.normal(0, 0.2, 300),
            1: np.concatenate([np.zeros(lag), base[:-lag]]) + rng.normal(0, 0.2, 300),
        }
        results = CollaborationBroker(max_lag=30, threshold=0.5).discover(streams)
        assert results
        assert abs(results[0].lag) == lag

    def test_no_lag_search_misses_lagged_pair(self):
        rng = np.random.default_rng(2)
        base = rng.poisson(2, 300).astype(float)
        streams = {
            0: base,
            1: np.concatenate([np.zeros(25), base[:-25]]),
        }
        assert CollaborationBroker(max_lag=0, threshold=0.5).discover(streams) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            CollaborationBroker(max_lag=-1)
        with pytest.raises(ValueError):
            CollaborationBroker(threshold=0.0)
        with pytest.raises(ValueError):
            CollaborationBroker().discover({0: np.zeros(5), 1: np.zeros(6)})

    def test_single_stream_returns_empty(self):
        assert CollaborationBroker().discover({0: np.zeros(10)}) == []

    def test_count_streams_from_pipeline(self, campus):
        world, cams = campus
        pipeline = CollaborativePipeline(world, cams, SSDDetector(seed=0))
        results = pipeline.run_individual(5)
        streams = CollaborationBroker.count_streams(results, cams)
        assert set(streams) == {c.camera_id for c in cams}
        assert all(len(v) == 5 for v in streams.values())


class TestResilience:
    def test_rogue_degrades_accuracy_over_20_percent(self, campus):
        """Sec. IV-C: false boxes from one node cut peer accuracy > 20%."""
        world, cams = campus
        clean = CollaborativePipeline(world, cams, SSDDetector(seed=0))
        clean_eval = clean.evaluate(clean.run_collaborative(100))
        attacked = CollaborativePipeline(
            world, cams, SSDDetector(seed=0),
            rogues=[RogueCamera(camera_id=99, rate=25.0, seed=7)],
        )
        att_eval = attacked.evaluate(attacked.run_collaborative(100))
        drop = 1.0 - att_eval.detection_accuracy / clean_eval.detection_accuracy
        assert drop > 0.15

    def test_monitor_restores_accuracy(self, campus):
        world, cams = campus
        clean = CollaborativePipeline(world, cams, SSDDetector(seed=0))
        clean_eval = clean.evaluate(clean.run_collaborative(100))
        monitor = ResilienceMonitor()
        defended = CollaborativePipeline(
            world, cams, SSDDetector(seed=0),
            rogues=[RogueCamera(camera_id=99, rate=25.0, seed=7)],
            monitor=monitor,
        )
        def_eval = defended.evaluate(defended.run_collaborative(100))
        assert 99 in monitor.distrusted_sources()
        assert def_eval.detection_accuracy > 0.9 * clean_eval.detection_accuracy

    def test_monitor_trust_mechanics(self):
        monitor = ResilienceMonitor(min_verify_rate=0.5, min_observations=4)
        assert monitor.trusted(7)  # innocent until observed
        for verified in [False, False, False]:
            monitor.record(7, verified)
        assert monitor.trusted(7)  # below min observations
        monitor.record(7, False)
        assert not monitor.trusted(7)
        assert monitor.verify_rate(7) == 0.0

    def test_honest_source_stays_trusted(self):
        monitor = ResilienceMonitor(min_verify_rate=0.3, min_observations=5)
        for i in range(20):
            monitor.record(3, verified=(i % 3 != 0))  # ~66% verify rate
        assert monitor.trusted(3)

    def test_rogue_validation(self):
        with pytest.raises(ValueError):
            RogueCamera(camera_id=1, rate=-1.0)
        with pytest.raises(ValueError):
            ResilienceMonitor(min_verify_rate=1.5)
        with pytest.raises(ValueError):
            ResilienceMonitor(min_observations=0)

    def test_rogue_boxes_inside_world(self, campus):
        world, _ = campus
        rogue = RogueCamera(camera_id=1, rate=10.0, seed=0)
        boxes = rogue.fake_boxes(world, 0.0)
        for b in boxes:
            assert 0 <= b[0] <= world.config.width
            assert 0 <= b[1] <= world.config.height
