"""Tests for client/server model partitioning (Sec. IV-A extension)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collaborative import (
    LinkSpec,
    PartitionPlanner,
    exit_probabilities,
    plan_chain_partition,
)


FAST_LINK = LinkSpec(bandwidth_bytes_per_s=1e9, rtt_s=0.0)
SLOW_LINK = LinkSpec(bandwidth_bytes_per_s=1e4, rtt_s=0.2)


def planner(link=FAST_LINK, exit_probs=None, client=(1.0, 1.0, 1.0),
            server=(0.1, 0.1, 0.1), boundary=(1000.0, 500.0, 100.0),
            input_bytes=4000.0):
    return PartitionPlanner(
        client_stage_costs_s=client,
        server_stage_costs_s=server,
        boundary_feature_bytes=boundary,
        input_bytes=input_bytes,
        link=link,
        exit_probs=exit_probs,
    )


class TestExitProbabilities:
    def test_all_exit_at_first_stage(self):
        conf = np.array([[0.9, 0.95], [0.99, 0.99], [0.99, 0.99]])
        np.testing.assert_allclose(exit_probabilities(conf, 0.8), [1, 0, 0])

    def test_never_crossing_goes_to_last(self):
        conf = np.full((3, 4), 0.2)
        np.testing.assert_allclose(exit_probabilities(conf, 0.9), [0, 0, 1])

    def test_mixed(self):
        conf = np.array(
            [[0.9, 0.3, 0.3, 0.3],
             [0.95, 0.9, 0.4, 0.4],
             [0.99, 0.95, 0.9, 0.5]]
        )
        np.testing.assert_allclose(exit_probabilities(conf, 0.85), [0.25, 0.25, 0.5])

    def test_validation(self):
        with pytest.raises(ValueError):
            exit_probabilities(np.zeros(3), 0.5)
        with pytest.raises(ValueError):
            exit_probabilities(np.zeros((3, 0)), 0.5)

    @given(st.floats(0.1, 0.99))
    @settings(max_examples=30, deadline=None)
    def test_property_distribution(self, threshold):
        rng = np.random.default_rng(int(threshold * 1000))
        conf = rng.uniform(0, 1, (3, 50))
        probs = exit_probabilities(conf, threshold)
        assert probs.sum() == pytest.approx(1.0)
        assert (probs >= 0).all()


class TestPartitionPlanner:
    def test_fast_server_fast_link_prefers_full_offload(self):
        plan = planner(link=FAST_LINK).plan()
        assert plan.cut == 0
        assert plan.fully_remote

    def test_slow_link_prefers_local_execution(self):
        """When the uplink is expensive and the client is capable, keep it local."""
        plan = planner(link=SLOW_LINK, client=(0.2, 0.2, 0.2)).plan()
        assert plan.cut == 3
        assert plan.offload_probability == 0.0

    def test_early_exits_pull_work_toward_the_client(self):
        """If most tasks exit confidently after stage 1, running stage 1 on
        the client avoids most uplinks even on a moderate link."""
        link = LinkSpec(bandwidth_bytes_per_s=1e4, rtt_s=0.0)
        kwargs = dict(
            link=link,
            client=(0.3, 0.5, 0.5),
            server=(0.1, 0.1, 0.1),
            boundary=(200.0, 150.0, 100.0),
            input_bytes=4000.0,
        )
        no_exit = planner(**kwargs).plan()
        with_exit = planner(exit_probs=(0.8, 0.1, 0.1), **kwargs).plan()
        assert with_exit.cut >= 1
        assert with_exit.cut >= no_exit.cut
        assert with_exit.offload_probability <= 0.2 + 1e-9
        assert with_exit.expected_latency_s < no_exit.expected_latency_s

    def test_smaller_boundary_exploited(self):
        """Cutting where the representation is small reduces transfer time."""
        p = planner(
            link=LinkSpec(bandwidth_bytes_per_s=1e5, rtt_s=0.0),
            client=(0.01, 0.01, 10.0),
            server=(0.01, 0.01, 0.01),
            boundary=(10_000.0, 10.0, 5.0),
            input_bytes=20_000.0,
        )
        plan = p.plan()
        assert plan.cut == 2  # cut after stage 2 where the boundary is tiny

    def test_compute_budget_constrains(self):
        p = planner(link=SLOW_LINK, client=(0.2, 0.2, 0.2))
        plan = p.plan(client_compute_budget_s=0.25)
        assert plan.client_compute_s <= 0.25
        assert plan.cut <= 1

    def test_infeasible_raises(self):
        p = planner(link=SLOW_LINK)
        with pytest.raises(ValueError):
            p.plan(latency_constraint_s=1e-6)

    def test_expected_latency_cut_bounds(self):
        p = planner()
        with pytest.raises(ValueError):
            p.expected_latency(7)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkSpec(bandwidth_bytes_per_s=0)
        with pytest.raises(ValueError):
            PartitionPlanner([1.0], [1.0, 1.0], [10.0], 10.0, FAST_LINK)
        with pytest.raises(ValueError):
            planner(exit_probs=(0.5, 0.5, 0.5))

    def test_per_cut_latencies_reported(self):
        plan = planner().plan()
        assert len(plan.per_cut_latencies) == 4
        assert min(plan.per_cut_latencies) == pytest.approx(plan.expected_latency_s)


class TestChainPartition:
    def test_single_tier_runs_everything(self):
        cuts, total = plan_chain_partition(
            [(1.0, 1.0)], boundary_feature_bytes=(10.0, 10.0),
            input_bytes=10.0, links=(),
        )
        assert cuts == []
        assert total == pytest.approx(2.0)

    def test_three_tier_chain(self):
        """Sensor slow, gateway medium, server fast; links get faster deeper."""
        cuts, total = plan_chain_partition(
            [
                (5.0, 5.0, 5.0, 5.0),   # sensor
                (1.0, 1.0, 1.0, 1.0),   # gateway
                (0.1, 0.1, 0.1, 0.1),   # server
            ],
            boundary_feature_bytes=(100.0, 50.0, 25.0, 10.0),
            input_bytes=200.0,
            links=(
                LinkSpec(bandwidth_bytes_per_s=1e3),
                LinkSpec(bandwidth_bytes_per_s=1e6),
            ),
        )
        assert len(cuts) == 2
        assert 0 <= cuts[0] <= cuts[1] <= 4
        # The expensive sensor should not run everything.
        assert cuts[0] < 4
        assert total > 0

    def test_monotone_cuts(self):
        cuts, _ = plan_chain_partition(
            [(1.0,) * 5, (0.5,) * 5, (0.1,) * 5],
            boundary_feature_bytes=(10.0,) * 5,
            input_bytes=10.0,
            links=(LinkSpec(1e6), LinkSpec(1e6)),
        )
        assert cuts == sorted(cuts)

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_chain_partition([], (), 1.0, ())
        with pytest.raises(ValueError):
            plan_chain_partition([(1.0,)], (1.0,), 1.0, (LinkSpec(1e6),))
