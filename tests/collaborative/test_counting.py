"""Tests for region-occupancy counting across cameras."""

import numpy as np
import pytest

from repro.collaborative import (
    CollaborativeFrameResult,
    CollaborativePipeline,
    Detection,
    SSDDetector,
    World,
    WorldConfig,
    ring_of_cameras,
)
from repro.collaborative.counting import (
    OccupancyEstimator,
    RegionGrid,
    deduplicate_detections,
)


def det(x, y, cam=0, conf=0.9, person=None):
    return Detection(camera_id=cam, bearing=0.0, distance=1.0,
                     world_xy=(float(x), float(y)), confidence=conf,
                     true_person=person)


def frame(t, dets_by_cam):
    return CollaborativeFrameResult(
        t=t, detections=dets_by_cam,
        latency_ms={c: 1.0 for c in dets_by_cam},
        mode={c: "full" for c in dets_by_cam},
    )


class TestRegionGrid:
    def test_region_indexing(self):
        grid = RegionGrid(width=100, height=100, rows=2, cols=2)
        assert grid.num_regions == 4
        assert grid.region_of(np.array([10.0, 10.0])) == 0
        assert grid.region_of(np.array([90.0, 10.0])) == 1
        assert grid.region_of(np.array([10.0, 90.0])) == 2
        assert grid.region_of(np.array([90.0, 90.0])) == 3

    def test_out_of_bounds_clamped(self):
        grid = RegionGrid(width=100, height=100, rows=2, cols=2)
        assert grid.region_of(np.array([-5.0, -5.0])) == 0
        assert grid.region_of(np.array([150.0, 150.0])) == 3

    def test_region_names(self):
        grid = RegionGrid(width=10, height=10, rows=2, cols=3)
        assert grid.region_name(0) == "R00"
        assert grid.region_name(5) == "R12"
        with pytest.raises(IndexError):
            grid.region_name(6)

    def test_validation(self):
        with pytest.raises(ValueError):
            RegionGrid(width=0, height=10)
        with pytest.raises(ValueError):
            RegionGrid(width=10, height=10, rows=0)


class TestDeduplication:
    def test_merges_cross_camera_duplicates(self):
        dets = [det(10, 10, cam=0, conf=0.9), det(10.5, 10.2, cam=1, conf=0.8)]
        assert len(deduplicate_detections(dets)) == 1

    def test_keeps_distinct_people(self):
        dets = [det(10, 10), det(50, 50), det(90, 10)]
        assert len(deduplicate_detections(dets)) == 3

    def test_highest_confidence_survives(self):
        dets = [det(10, 10, conf=0.5), det(10.1, 10.0, conf=0.95)]
        kept = deduplicate_detections(dets)
        assert kept[0].confidence == 0.95

    def test_validation(self):
        with pytest.raises(ValueError):
            deduplicate_detections([], merge_radius=0.0)


class TestOccupancyEstimator:
    def test_exact_counts_from_perfect_detections(self):
        world = World(WorldConfig(num_people=0, num_occluders=0))
        grid = RegionGrid(width=100, height=100, rows=2, cols=2)
        estimator = OccupancyEstimator(world, grid)
        # Three people, one duplicated across two cameras.
        f = frame(0.0, {
            0: [det(10, 10, cam=0), det(80, 80, cam=0)],
            1: [det(10.3, 10.1, cam=1), det(60, 20, cam=1)],
        })
        counts = estimator.counts_for_frame(f)
        np.testing.assert_array_equal(counts, [1, 1, 0, 1])

    def test_truth_counts(self):
        world = World(WorldConfig(num_people=5, num_occluders=0, seed=1))
        grid = RegionGrid(width=100, height=100, rows=1, cols=1)
        estimator = OccupancyEstimator(world, grid)
        np.testing.assert_array_equal(estimator.truth_for_time(3.0), [5])

    def test_evaluate_requires_frames(self):
        world = World(WorldConfig())
        grid = RegionGrid(width=100, height=100)
        with pytest.raises(ValueError):
            OccupancyEstimator(world, grid).evaluate([])

    def test_collaborative_counting_beats_single_camera(self):
        """The Sec. IV motivation: aggregated multi-camera occupancy beats
        any single camera's view of the whole campus."""
        world = World(WorldConfig(num_people=10, num_occluders=4, seed=3))
        cameras = ring_of_cameras(8, world)
        pipeline = CollaborativePipeline(world, cameras, SSDDetector(seed=0))
        frames = pipeline.run_collaborative(40)
        grid = RegionGrid(width=world.config.width, height=world.config.height,
                          rows=2, cols=2)
        estimator = OccupancyEstimator(world, grid)
        report = estimator.evaluate(frames)
        assert report.counting_accuracy > 0.4
        # Single-camera baseline: only camera 0's detections.
        solo_frames = [
            CollaborativeFrameResult(
                t=f.t,
                detections={0: f.detections[0]},
                latency_ms={0: f.latency_ms[0]},
                mode={0: f.mode[0]},
            )
            for f in frames
        ]
        solo = estimator.evaluate(solo_frames)
        assert report.counting_accuracy > solo.counting_accuracy
        # Single camera sees a fraction of campus => undercounts.
        assert solo.total_count_bias < 0
