"""Tests for scenario builders, including the Sec. IV-C corridor story."""

import numpy as np
import pytest

from repro.collaborative import (
    CollaborationBroker,
    CollaborativePipeline,
    SSDDetector,
)
from repro.collaborative.scenarios import campus_quad, corridor


class TestCampusQuad:
    def test_builds_world_and_cameras(self):
        world, cameras = campus_quad(num_cameras=6, num_people=10)
        assert len(cameras) == 6
        assert len(world.people) == 10


class TestCorridor:
    def test_validation(self):
        with pytest.raises(ValueError):
            corridor(num_people=0)
        with pytest.raises(ValueError):
            corridor(transit_time=-1.0)

    def test_fovs_disjoint(self):
        scenario = corridor(transit_time=20.0)
        overlap = scenario.camera_a.fov_overlap(
            scenario.camera_b, scenario.world, samples=800
        )
        assert overlap == 0.0

    def test_walkers_pass_a_then_b_after_transit_time(self):
        scenario = corridor(num_people=1, transit_time=20.0, seed=3)
        walker = scenario.world.people[0]
        # Find a time when the walker is at camera A's spot.
        times_at_a = [
            t for t in np.arange(0, 80, 0.5)
            if scenario.camera_a.in_fov(walker.position_at(t))
        ]
        assert times_at_a
        t_a = times_at_a[0]
        assert scenario.camera_b.in_fov(walker.position_at(t_a + 20.0))

    def test_broker_discovers_lagged_pair_only_with_lag_search(self):
        """End to end: only a lag-aware broker finds the corridor pair —
        and it recovers the transit time."""
        from repro.collaborative import DetectorConfig

        scenario = corridor(num_people=6, transit_time=20.0, seed=1)
        # A clean detector isolates the brokering logic from sensing noise.
        detector = SSDDetector(
            DetectorConfig(clutter_rate=0.0, distance_decay=0.002,
                           lighting_artifact=0.0),
            seed=0,
        )
        pipeline = CollaborativePipeline(
            scenario.world, scenario.cameras, detector
        )
        frames = pipeline.run_individual(150)
        streams = CollaborationBroker.count_streams(frames, scenario.cameras)

        lag_blind = CollaborationBroker(max_lag=0, threshold=0.5).discover(streams)
        assert lag_blind == []

        lag_aware = CollaborationBroker(max_lag=30, threshold=0.5).discover(streams)
        assert lag_aware
        result = lag_aware[0]
        assert {result.camera_a, result.camera_b} == {0, 1}
        assert abs(result.lag) == pytest.approx(20, abs=3)
