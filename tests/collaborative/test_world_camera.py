"""Tests for the world simulation and camera geometry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collaborative import (
    Camera,
    CameraPose,
    Occluder,
    World,
    WorldConfig,
    ring_of_cameras,
)


class TestOccluder:
    def test_blocks_segment_through_center(self):
        occ = Occluder(x=5.0, y=0.0, radius=1.0)
        assert occ.blocks(np.array([0.0, 0.0]), np.array([10.0, 0.0]))

    def test_does_not_block_distant_segment(self):
        occ = Occluder(x=5.0, y=10.0, radius=1.0)
        assert not occ.blocks(np.array([0.0, 0.0]), np.array([10.0, 0.0]))

    def test_degenerate_segment(self):
        occ = Occluder(x=0.0, y=0.0, radius=1.0)
        assert occ.blocks(np.array([0.1, 0.1]), np.array([0.1, 0.1]))
        assert not occ.blocks(np.array([5.0, 5.0]), np.array([5.0, 5.0]))

    def test_validation(self):
        with pytest.raises(ValueError):
            Occluder(0, 0, radius=0)


class TestWorld:
    def test_positions_shape_and_bounds(self):
        world = World(WorldConfig(num_people=7, seed=1))
        pos = world.positions_at(12.3)
        assert pos.shape == (7, 2)
        # Waypoints are inside the world; linear interpolation stays inside
        # the convex hull, hence inside the rectangle.
        assert (pos >= 0).all()
        assert (pos[:, 0] <= world.config.width).all()
        assert (pos[:, 1] <= world.config.height).all()

    def test_deterministic(self):
        a = World(WorldConfig(seed=4)).positions_at(5.0)
        b = World(WorldConfig(seed=4)).positions_at(5.0)
        np.testing.assert_allclose(a, b)

    def test_people_actually_move(self):
        world = World(WorldConfig(num_people=3, seed=0))
        assert not np.allclose(world.positions_at(0.0), world.positions_at(10.0))

    def test_trajectory_continuity(self):
        """Positions change by at most speed * dt between close instants."""
        world = World(WorldConfig(num_people=5, seed=2))
        for person in world.people:
            a = person.position_at(7.0)
            b = person.position_at(7.1)
            assert np.linalg.norm(b - a) <= person.speed * 0.1 + 1e-9

    def test_empty_world(self):
        world = World(WorldConfig(num_people=0, num_occluders=0))
        assert world.positions_at(1.0).shape == (0, 2)
        assert world.line_of_sight(np.zeros(2), np.ones(2))

    def test_line_of_sight_blocked_by_occluder(self):
        world = World(WorldConfig(num_occluders=0))
        world.occluders = [Occluder(x=50.0, y=50.0, radius=3.0)]
        assert not world.line_of_sight(np.array([0.0, 50.0]), np.array([100.0, 50.0]))
        assert world.line_of_sight(np.array([0.0, 0.0]), np.array([100.0, 0.0]))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WorldConfig(width=-1)
        with pytest.raises(ValueError):
            WorldConfig(num_people=-1)


class TestCamera:
    def make(self, x=0.0, y=0.0, orientation=0.0, fov=90.0, rng=50.0):
        return Camera(0, CameraPose(x=x, y=y, orientation=orientation,
                                    fov_degrees=fov, max_range=rng))

    def test_in_fov_geometry(self):
        cam = self.make()
        assert cam.in_fov(np.array([10.0, 0.0]))
        assert cam.in_fov(np.array([10.0, 9.0]))      # within the 45-deg half
        assert not cam.in_fov(np.array([10.0, 11.0]))  # just past it
        assert not cam.in_fov(np.array([-10.0, 0.0]))  # behind
        assert not cam.in_fov(np.array([60.0, 0.0]))   # out of range

    def test_bearing_distance(self):
        cam = self.make()
        bearing, distance = cam.bearing_distance(np.array([3.0, 3.0]))
        assert distance == pytest.approx(np.hypot(3, 3))
        assert bearing == pytest.approx(np.pi / 4)

    def test_to_world_roundtrip(self):
        cam = self.make(x=4.0, y=-2.0, orientation=1.1)
        point = np.array([10.0, 5.0])
        bearing, distance = cam.bearing_distance(point)
        np.testing.assert_allclose(cam.to_world(bearing, distance), point, atol=1e-9)

    def test_can_see_respects_occlusion(self):
        world = World(WorldConfig(num_occluders=0))
        world.occluders = [Occluder(x=10.0, y=0.0, radius=2.0)]
        cam = self.make()
        target = np.array([20.0, 0.0])
        assert cam.in_fov(target)
        assert not cam.can_see(target, world)

    def test_pose_validation(self):
        with pytest.raises(ValueError):
            CameraPose(0, 0, 0, fov_degrees=0)
        with pytest.raises(ValueError):
            CameraPose(0, 0, 0, max_range=-1)

    @given(st.floats(-3, 3), st.floats(0.5, 40))
    @settings(max_examples=40, deadline=None)
    def test_property_roundtrip_any_pose(self, bearing_frac, distance):
        cam = self.make(x=1.0, y=2.0, orientation=0.7, fov=120)
        bearing = bearing_frac * cam.pose.half_fov / 3
        world_xy = cam.to_world(bearing, distance)
        b2, d2 = cam.bearing_distance(world_xy)
        assert b2 == pytest.approx(bearing, abs=1e-9)
        assert d2 == pytest.approx(distance, rel=1e-9)


class TestRingOfCameras:
    def test_count_and_facing_center(self):
        world = World(WorldConfig(seed=0))
        cams = ring_of_cameras(8, world)
        assert len(cams) == 8
        center = np.array([50.0, 50.0])
        for cam in cams:
            assert cam.in_fov(center)

    def test_neighbours_overlap_far_pairs_dont(self):
        world = World(WorldConfig(seed=0, num_occluders=0))
        cams = ring_of_cameras(8, world, fov_degrees=70)
        near = cams[0].fov_overlap(cams[1], world, samples=600)
        # Cameras on opposite sides still share the center region but
        # adjacent cameras overlap at least as much.
        assert near > 0.2

    def test_validation(self):
        with pytest.raises(ValueError):
            ring_of_cameras(0, World())
