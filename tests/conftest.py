"""Shared test fixtures: deterministic time for the whole suite.

Timing-dependent tests come in two shapes, and each gets a tool here:

- **Pure time logic** (autoscaler cooldowns, circuit-breaker windows,
  EWMA decay): inject a :class:`repro.cluster.VirtualClock` — the
  ``virtual_clock`` fixture — and *advance* time instead of sleeping.
  These tests run in microseconds and cannot flake.
- **Real concurrency** (a child process dying, a worker thread draining
  a queue): there is genuinely something to wait for, but the wait must
  be *bounded polling*, never a bare ``time.sleep`` tuned to one
  machine.  Use :func:`repro.cluster.wait_until` (re-exported here for
  visibility) and assert its return value.
"""

import pytest

from repro.cluster import VirtualClock, wait_until

__all__ = ["VirtualClock", "wait_until"]


@pytest.fixture
def virtual_clock() -> VirtualClock:
    """A fresh deterministic clock starting at t=0."""
    return VirtualClock()
