"""Tests for classification metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.metrics import (
    accuracy,
    classification_report,
    confusion_matrix,
    macro_f1,
    per_class_f1,
    top_k_accuracy,
)


class TestAccuracy:
    def test_basic(self):
        assert accuracy(np.array([0, 1, 2]), np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            accuracy(np.array([0, 1]), np.array([0]))
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))


class TestTopK:
    def test_top1_equals_accuracy(self):
        probs = np.array([[0.7, 0.2, 0.1], [0.1, 0.1, 0.8]])
        labels = np.array([0, 1])
        assert top_k_accuracy(probs, labels, k=1) == accuracy(
            probs.argmax(1), labels
        )

    def test_top2(self):
        probs = np.array([[0.5, 0.4, 0.1], [0.1, 0.2, 0.7]])
        labels = np.array([1, 0])
        assert top_k_accuracy(probs, labels, k=2) == pytest.approx(0.5)

    def test_top_all_is_one(self):
        probs = np.random.default_rng(0).random((10, 4))
        labels = np.random.default_rng(1).integers(0, 4, 10)
        assert top_k_accuracy(probs, labels, k=4) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            top_k_accuracy(np.zeros((2, 3)), np.zeros(2, dtype=int), k=0)
        with pytest.raises(ValueError):
            top_k_accuracy(np.zeros((2, 3)), np.zeros(3, dtype=int), k=1)


class TestConfusionMatrix:
    def test_rows_truth_columns_pred(self):
        matrix = confusion_matrix(np.array([1, 1, 0]), np.array([0, 1, 0]), 2)
        np.testing.assert_array_equal(matrix, [[1, 1], [0, 1]])

    def test_trace_counts_correct(self):
        preds = np.array([0, 1, 2, 2])
        labels = np.array([0, 1, 2, 1])
        matrix = confusion_matrix(preds, labels)
        assert np.trace(matrix) == 3
        assert matrix.sum() == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([3]), np.array([0]), num_classes=2)
        with pytest.raises(ValueError):
            confusion_matrix(np.array([-1]), np.array([0]))


class TestF1:
    def test_perfect_predictions(self):
        labels = np.array([0, 1, 2, 0])
        np.testing.assert_allclose(per_class_f1(labels, labels), [1.0, 1.0, 1.0])
        assert macro_f1(labels, labels) == 1.0

    def test_absent_class_scores_zero(self):
        preds = np.array([0, 0])
        labels = np.array([0, 0])
        f1 = per_class_f1(preds, labels, num_classes=3)
        assert f1[0] == 1.0
        assert f1[1] == 0.0 and f1[2] == 0.0
        # macro_f1 ignores classes with no true support.
        assert macro_f1(preds, labels, num_classes=3) == 1.0

    def test_known_value(self):
        preds = np.array([0, 0, 1, 1])
        labels = np.array([0, 1, 1, 1])
        f1 = per_class_f1(preds, labels, num_classes=2)
        # class 0: tp=1 fp=1 fn=0 -> 2/3; class 1: tp=2 fp=0 fn=1 -> 4/5
        np.testing.assert_allclose(f1, [2 / 3, 0.8])

    def test_report(self):
        report = classification_report(np.array([0, 1]), np.array([0, 1]))
        assert report["accuracy"] == 1.0
        assert report["macro_f1"] == 1.0
        assert report["num_samples"] == 2.0

    @given(st.integers(0, 5000), st.integers(2, 5), st.integers(5, 40))
    @settings(max_examples=30, deadline=None)
    def test_property_f1_bounded_and_consistent(self, seed, classes, n):
        rng = np.random.default_rng(seed)
        preds = rng.integers(0, classes, n)
        labels = rng.integers(0, classes, n)
        f1 = per_class_f1(preds, labels, classes)
        assert ((f1 >= 0) & (f1 <= 1)).all()
        matrix = confusion_matrix(preds, labels, classes)
        assert matrix.sum() == n
        assert accuracy(preds, labels) == pytest.approx(np.trace(matrix) / n)
