"""Tests for conv/pool/softmax ops, including gradient checks vs central differences."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, numeric_gradient
from repro.nn import functional as F
from repro.nn.functional import col2im, conv_output_size, im2col


class TestIm2Col:
    def test_output_size(self):
        assert conv_output_size(16, 3, 1, 1) == 16
        assert conv_output_size(16, 3, 2, 1) == 8
        assert conv_output_size(5, 3, 1, 0) == 3

    def test_im2col_shapes(self):
        x = np.arange(2 * 3 * 5 * 5, dtype=float).reshape(2, 3, 5, 5)
        cols, (oh, ow) = im2col(x, 3, 1, 1)
        assert (oh, ow) == (5, 5)
        assert cols.shape == (2, 27, 25)

    def test_im2col_center_patch_matches_input(self):
        x = np.arange(1 * 1 * 4 * 4, dtype=float).reshape(1, 1, 4, 4)
        cols, _ = im2col(x, 3, 1, 1)
        # The center element of each 3x3 patch is the original pixel.
        np.testing.assert_allclose(cols[0, 4, :], x.reshape(-1))

    def test_col2im_is_adjoint_of_im2col(self):
        """<im2col(x), y> == <x, col2im(y)> — adjointness property."""
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 6, 6))
        cols, _ = im2col(x, 3, 2, 1)
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        rhs = float((x * col2im(y, x.shape, 3, 2, 1)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)


class TestConv2D:
    def test_matches_direct_convolution(self):
        """Compare against an explicit nested-loop convolution."""
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2, 2, 5, 5))
        w = rng.normal(size=(3, 2, 3, 3))
        b = rng.normal(size=(3,))
        out = F.conv2d(Tensor(x), Tensor(w), Tensor(b), stride=1, padding=1).data

        padded = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        expected = np.zeros((2, 3, 5, 5))
        for n in range(2):
            for o in range(3):
                for i in range(5):
                    for j in range(5):
                        patch = padded[n, :, i : i + 3, j : j + 3]
                        expected[n, o, i, j] = (patch * w[o]).sum() + b[o]
        np.testing.assert_allclose(out, expected, atol=1e-10)

    def test_strided_output_shape(self):
        x = Tensor(np.zeros((1, 3, 8, 8)))
        w = Tensor(np.zeros((4, 3, 3, 3)))
        out = F.conv2d(x, w, stride=2, padding=1)
        assert out.shape == (1, 4, 4, 4)

    def test_grad_input(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(1, 2, 4, 4))
        w = rng.normal(size=(2, 2, 3, 3))
        t = Tensor(x.copy(), requires_grad=True)
        F.conv2d(t, Tensor(w), stride=1, padding=1).sum().backward()
        numeric = numeric_gradient(
            lambda arr: float(F.conv2d(Tensor(arr), Tensor(w), stride=1, padding=1).sum().data),
            x.copy(),
        )
        np.testing.assert_allclose(t.grad, numeric, atol=1e-5)

    def test_grad_weight_and_bias(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(2, 2, 4, 4))
        w = rng.normal(size=(3, 2, 3, 3))
        b = rng.normal(size=(3,))
        wt = Tensor(w.copy(), requires_grad=True)
        bt = Tensor(b.copy(), requires_grad=True)
        F.conv2d(Tensor(x), wt, bt, stride=2, padding=1).sum().backward()
        numeric_w = numeric_gradient(
            lambda arr: float(F.conv2d(Tensor(x), Tensor(arr), Tensor(b), stride=2, padding=1).sum().data),
            w.copy(),
        )
        numeric_b = numeric_gradient(
            lambda arr: float(F.conv2d(Tensor(x), Tensor(w), Tensor(arr), stride=2, padding=1).sum().data),
            b.copy(),
        )
        np.testing.assert_allclose(wt.grad, numeric_w, atol=1e-5)
        np.testing.assert_allclose(bt.grad, numeric_b, atol=1e-5)

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(np.zeros((1, 3, 4, 4))), Tensor(np.zeros((2, 4, 3, 3))))

    def test_rectangular_kernel_rejected(self):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(np.zeros((1, 2, 4, 4))), Tensor(np.zeros((2, 2, 3, 2))))


class TestPooling:
    def test_max_pool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), 2).data
        np.testing.assert_allclose(out, [[[[5, 7], [13, 15]]]])

    def test_max_pool_grad_goes_to_argmax(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        t = Tensor(x, requires_grad=True)
        F.max_pool2d(t, 2).sum().backward()
        expected = np.zeros((1, 1, 4, 4))
        expected[0, 0, 1, 1] = expected[0, 0, 1, 3] = 1
        expected[0, 0, 3, 1] = expected[0, 0, 3, 3] = 1
        np.testing.assert_allclose(t.grad, expected)

    def test_avg_pool_values_and_grad(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        t = Tensor(x, requires_grad=True)
        out = F.avg_pool2d(t, 2)
        np.testing.assert_allclose(out.data, [[[[2.5, 4.5], [10.5, 12.5]]]])
        out.sum().backward()
        np.testing.assert_allclose(t.grad, np.full((1, 1, 4, 4), 0.25))

    def test_global_avg_pool(self):
        x = np.ones((2, 3, 4, 4))
        out = F.global_avg_pool2d(Tensor(x))
        assert out.shape == (2, 3)
        np.testing.assert_allclose(out.data, np.ones((2, 3)))


class TestSoftmaxFamily:
    def test_softmax_rows_sum_to_one(self):
        rng = np.random.default_rng(4)
        out = F.softmax(Tensor(rng.normal(size=(5, 7)))).data
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(5))
        assert (out > 0).all()

    def test_softmax_stability_large_logits(self):
        out = F.softmax(Tensor(np.array([[1000.0, 1000.0]]))).data
        np.testing.assert_allclose(out, [[0.5, 0.5]])

    def test_log_softmax_consistent_with_softmax(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(4, 6))
        np.testing.assert_allclose(
            F.log_softmax(Tensor(x)).data, np.log(F.softmax(Tensor(x)).data), atol=1e-12
        )

    def test_softmax_grad(self):
        rng = np.random.default_rng(6)
        x = rng.normal(size=(3, 4))
        t = Tensor(x.copy(), requires_grad=True)
        (F.softmax(t) ** 2).sum().backward()
        numeric = numeric_gradient(
            lambda arr: float((F.softmax(Tensor(arr)) ** 2).sum().data), x.copy()
        )
        np.testing.assert_allclose(t.grad, numeric, atol=1e-6)

    def test_log_softmax_grad(self):
        rng = np.random.default_rng(7)
        x = rng.normal(size=(3, 4))
        w = rng.normal(size=(3, 4))
        t = Tensor(x.copy(), requires_grad=True)
        (F.log_softmax(t) * w).sum().backward()
        numeric = numeric_gradient(
            lambda arr: float((F.log_softmax(Tensor(arr)) * w).sum().data), x.copy()
        )
        np.testing.assert_allclose(t.grad, numeric, atol=1e-6)

    @given(st.integers(2, 6), st.integers(2, 8))
    @settings(max_examples=25, deadline=None)
    def test_property_softmax_invariant_to_shift(self, n, c):
        rng = np.random.default_rng(n * 100 + c)
        x = rng.normal(size=(n, c))
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 5.0)).data
        np.testing.assert_allclose(a, b, atol=1e-12)


class TestDropoutOneHot:
    def test_dropout_eval_identity(self):
        x = Tensor(np.ones((4, 4)))
        out = F.dropout(x, 0.5, np.random.default_rng(0), training=False)
        assert out is x

    def test_dropout_preserves_expectation(self):
        rng = np.random.default_rng(8)
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.3, rng, training=True)
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)

    def test_dropout_invalid_rate(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.0, np.random.default_rng(0))

    def test_dropout_grad_uses_same_mask(self):
        rng = np.random.default_rng(9)
        t = Tensor(np.ones(1000), requires_grad=True)
        out = F.dropout(t, 0.5, rng)
        out.sum().backward()
        np.testing.assert_allclose(t.grad, out.data)

    def test_one_hot(self):
        out = F.one_hot(np.array([0, 2]), 3)
        np.testing.assert_allclose(out, [[1, 0, 0], [0, 0, 1]])

    def test_one_hot_out_of_range(self):
        with pytest.raises(ValueError):
            F.one_hot(np.array([3]), 3)

    def test_one_hot_requires_1d(self):
        with pytest.raises(ValueError):
            F.one_hot(np.zeros((2, 2), dtype=int), 3)
