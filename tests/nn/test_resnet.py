"""Tests for the staged ResNet (paper Fig. 3) and its training loop."""

import numpy as np
import pytest

from repro.datasets import make_image_dataset, SyntheticImageConfig
from repro.nn import (
    StagedResNet,
    StagedResNetConfig,
    Tensor,
    collect_stage_outputs,
    evaluate_stage_accuracy,
    staged_loss,
    train_staged_model,
)
from repro.nn.resnet import ResidualBlock


TINY = StagedResNetConfig(
    num_classes=4, image_size=8, stage_channels=(4, 8), blocks_per_stage=1, seed=0
)


class TestResidualBlock:
    def test_identity_shortcut_shape(self):
        block = ResidualBlock(4, 4)
        assert block.shortcut is None
        out = block(Tensor(np.random.default_rng(0).normal(size=(2, 4, 6, 6))))
        assert out.shape == (2, 4, 6, 6)

    def test_projection_shortcut_on_channel_change(self):
        block = ResidualBlock(4, 8, stride=2)
        assert block.shortcut is not None
        out = block(Tensor(np.zeros((2, 4, 6, 6))))
        assert out.shape == (2, 8, 3, 3)

    def test_gradient_flows_through_shortcut(self):
        block = ResidualBlock(2, 2)
        x = Tensor(np.random.default_rng(1).normal(size=(2, 2, 4, 4)), requires_grad=True)
        block(x).sum().backward()
        assert x.grad is not None
        assert np.abs(x.grad).sum() > 0


class TestStagedResNetTopology:
    def test_default_config_matches_paper(self):
        """Paper Fig. 3: 3 stages, each 6 conv layers (3 residual blocks)."""
        model = StagedResNet()
        assert model.num_stages == 3
        specs = model.stage_layer_specs()
        assert all(len(stage) == 6 for stage in specs)

    def test_forward_returns_one_logits_per_stage(self):
        model = StagedResNet(TINY)
        logits = model(Tensor(np.zeros((3, 3, 8, 8))))
        assert len(logits) == 2
        assert all(l.shape == (3, 4) for l in logits)

    def test_run_stage_incremental_matches_forward(self):
        model = StagedResNet(TINY).eval()
        x = np.random.default_rng(2).normal(size=(2, 3, 8, 8))
        full = model(Tensor(x))
        features = model.run_stem(Tensor(x))
        for s in range(model.num_stages):
            features, logits = model.run_stage(features, s)
            np.testing.assert_allclose(logits.data, full[s].data, atol=1e-10)

    def test_run_stage_out_of_range(self):
        model = StagedResNet(TINY)
        with pytest.raises(IndexError):
            model.run_stage(Tensor(np.zeros((1, 4, 8, 8))), 5)

    def test_predict_proba_rows_sum_to_one(self):
        model = StagedResNet(TINY).eval()
        probs = model.predict_proba(np.random.default_rng(3).normal(size=(4, 3, 8, 8)))
        for p in probs:
            np.testing.assert_allclose(p.sum(axis=-1), np.ones(4))

    def test_stage_confidences_shape_and_range(self):
        model = StagedResNet(TINY).eval()
        confs = model.stage_confidences(np.zeros((5, 3, 8, 8)))
        assert confs.shape == (2, 5)
        assert (confs >= 1 / 4 - 1e-9).all() and (confs <= 1.0).all()


class TestTraining:
    @pytest.fixture(scope="class")
    def trained(self):
        cfg = SyntheticImageConfig(num_classes=4, image_size=8, seed=3)
        train_set = make_image_dataset(600, cfg, seed=0)
        test_set = make_image_dataset(200, cfg, seed=1)
        model = StagedResNet(TINY)
        report = train_staged_model(model, train_set, epochs=10, batch_size=32, lr=1e-2)
        return model, train_set, test_set, report

    def test_loss_decreases(self, trained):
        _, _, _, report = trained
        assert report.epoch_losses[-1] < report.epoch_losses[0]

    def test_beats_chance_on_heldout(self, trained):
        model, _, test_set, _ = trained
        accs = evaluate_stage_accuracy(model, test_set)
        assert accs[-1] > 1.5 / 4  # well above 25% chance

    def test_collect_stage_outputs_shapes(self, trained):
        model, _, test_set, _ = trained
        out = collect_stage_outputs(model, test_set)
        n = len(test_set)
        assert out["confidences"].shape == (2, n)
        assert out["predictions"].shape == (2, n)
        assert out["correct"].shape == (2, n)
        assert out["labels"].shape == (n,)
        assert out["correct"].dtype == bool

    def test_staged_loss_weights_validated(self):
        model = StagedResNet(TINY)
        logits = model(Tensor(np.zeros((2, 3, 8, 8))))
        with pytest.raises(ValueError):
            staged_loss(logits, np.zeros(2, dtype=int), stage_weights=[1.0])

    def test_model_in_eval_mode_after_training(self, trained):
        model, *_ = trained
        assert not model.training
