"""Reusable finite-difference gradient check for the nn test suites.

Every gradient test in this repo follows the same shape: build a scalar
objective from a differentiable map, run autograd backward, and compare
the input gradient against :func:`repro.nn.numeric_gradient` central
differences.  :func:`gradcheck` packages that pattern once so test files
state only the map under test, not the boilerplate.
"""

import numpy as np

from repro.nn import Tensor, numeric_gradient


def gradcheck(fn, x, atol=1e-6, eps=1e-6):
    """Assert autograd and finite differences agree on ``sum(fn(x))``.

    ``fn`` maps a :class:`Tensor` to a :class:`Tensor` of any shape; the
    scalar objective checked is ``fn(t).sum()``.  ``fn`` must be a pure
    function of its input *values* (stochastic layers must be in a
    deterministic mode), but it may mutate unrelated internal state —
    e.g. a train-mode BatchNorm updating running statistics is fine
    because train-mode output depends only on batch statistics.

    Returns the autograd gradient so callers can make further assertions.
    """
    x = np.asarray(x, dtype=np.float64)

    def scalar(arr: np.ndarray) -> float:
        return float(fn(Tensor(arr)).sum().data)

    t = Tensor(x.copy(), requires_grad=True)
    fn(t).sum().backward()
    assert t.grad is not None, "no gradient reached the input"
    numeric = numeric_gradient(scalar, x.copy(), eps=eps)
    np.testing.assert_allclose(t.grad, numeric, atol=atol)
    return t.grad
