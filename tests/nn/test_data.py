"""Tests for Dataset/DataLoader."""

import numpy as np
import pytest

from repro.nn import DataLoader, Dataset


def toy(n=10):
    return Dataset(np.arange(n * 2.0).reshape(n, 2), np.arange(n))


class TestDataset:
    def test_len_and_getitem(self):
        ds = toy()
        assert len(ds) == 10
        x, y = ds[3]
        np.testing.assert_allclose(x, [6.0, 7.0])
        assert y == 3

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 2)), np.zeros(4))

    def test_subset(self):
        sub = toy().subset([0, 2])
        assert len(sub) == 2
        np.testing.assert_allclose(sub.labels, [0, 2])

    def test_split_partitions_everything(self):
        first, second = toy(100).split(0.7, rng=np.random.default_rng(0))
        assert len(first) == 70
        assert len(second) == 30
        all_labels = sorted(list(first.labels) + list(second.labels))
        assert all_labels == list(range(100))

    def test_split_invalid_fraction(self):
        with pytest.raises(ValueError):
            toy().split(1.0)


class TestDataLoader:
    def test_batches_cover_dataset(self):
        loader = DataLoader(toy(10), batch_size=3, shuffle=False)
        seen = []
        for x, y in loader:
            assert len(x) == len(y)
            seen.extend(y.tolist())
        assert sorted(seen) == list(range(10))
        assert len(loader) == 4

    def test_drop_last(self):
        loader = DataLoader(toy(10), batch_size=3, shuffle=False, drop_last=True)
        batches = list(loader)
        assert len(batches) == 3
        assert all(len(b[0]) == 3 for b in batches)
        assert len(loader) == 3

    def test_shuffle_changes_order_but_not_content(self):
        loader = DataLoader(toy(50), batch_size=50, shuffle=True, seed=1)
        (x1, y1), = list(loader)
        (x2, y2), = list(loader)
        assert not np.array_equal(y1, y2)  # reshuffled between epochs
        assert sorted(y1.tolist()) == sorted(y2.tolist())

    def test_shuffle_false_preserves_order(self):
        loader = DataLoader(toy(5), batch_size=5, shuffle=False)
        (_, y), = list(loader)
        np.testing.assert_array_equal(y, np.arange(5))

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(toy(), batch_size=0)
