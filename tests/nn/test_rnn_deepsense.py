"""Tests for the GRU layers and the DeepSense architecture."""

import numpy as np
import pytest

from repro.datasets import SensorTimeSeriesConfig, make_sensor_dataset
from repro.nn import (
    Adam,
    DeepSense,
    DeepSenseConfig,
    GRU,
    GRUCell,
    Tensor,
    cross_entropy,
    gaussian_nll_mse,
)

from .gradcheck import gradcheck


class TestGRUCell:
    def test_output_shape_and_range(self):
        cell = GRUCell(4, 6)
        out = cell(Tensor(np.random.default_rng(0).normal(size=(3, 4))))
        assert out.shape == (3, 6)
        assert (np.abs(out.data) <= 1.0).all()  # convex mix of h0=0 and tanh

    def test_zero_initial_hidden_default(self):
        cell = GRUCell(2, 3)
        x = Tensor(np.zeros((2, 2)))
        explicit = cell(x, Tensor(np.zeros((2, 3))))
        implicit = cell(x)
        np.testing.assert_allclose(explicit.data, implicit.data)

    def test_input_validation(self):
        cell = GRUCell(4, 6)
        with pytest.raises(ValueError):
            cell(Tensor(np.zeros((3, 5))))

    def test_gradients_flow_to_all_parameters(self):
        cell = GRUCell(3, 4)
        out = cell(Tensor(np.random.default_rng(1).normal(size=(2, 3))))
        out.sum().backward()
        for name, p in cell.named_parameters():
            assert p.grad is not None, name
        # Hidden-to-hidden weights need a nonzero hidden state to matter.
        h = Tensor(np.random.default_rng(2).normal(size=(2, 4)))
        cell.zero_grad()
        cell(Tensor(np.random.default_rng(3).normal(size=(2, 3))), h).sum().backward()
        assert np.abs(cell.w_hidden.grad).sum() > 0

    def test_gradcheck_small(self):
        rng = np.random.default_rng(4)
        cell = GRUCell(2, 2, rng=rng)
        gradcheck(lambda t: cell(t), rng.normal(size=(1, 2)))


class TestGRU:
    def test_sequence_shapes(self):
        gru = GRU(4, 5)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 7, 4)))
        outputs, state = gru(x)
        assert outputs.shape == (2, 7, 5)
        assert state.shape == (2, 5)
        np.testing.assert_allclose(outputs.data[:, -1, :], state.data)

    def test_last_output(self):
        gru = GRU(3, 4)
        x = Tensor(np.random.default_rng(1).normal(size=(2, 5, 3)))
        np.testing.assert_allclose(gru.last_output(x).data, gru(x)[1].data)

    def test_validation(self):
        gru = GRU(3, 4)
        with pytest.raises(ValueError):
            gru(Tensor(np.zeros((2, 5, 7))))

    def test_memorizes_first_token(self):
        """A GRU can learn to output the first element of a sequence —
        a pure memory task that breaks non-recurrent models."""
        rng = np.random.default_rng(5)
        n, t = 256, 6
        x = np.zeros((n, t, 2))
        first = rng.integers(0, 2, size=n)
        x[np.arange(n), 0, first] = 1.0
        x[:, 1:, :] = rng.normal(0, 0.1, size=(n, t - 1, 2))
        from repro.nn import Dense

        gru = GRU(2, 8, rng=rng)
        head = Dense(8, 2, rng=rng)
        params = gru.parameters() + head.parameters()
        opt = Adam(params, lr=0.02)
        for _ in range(80):
            logits = head(gru.last_output(Tensor(x)))
            loss = cross_entropy(logits, first)
            opt.zero_grad()
            loss.backward()
            opt.step()
        preds = head(gru.last_output(Tensor(x))).data.argmax(-1)
        assert (preds == first).mean() > 0.95


class TestDeepSenseConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            DeepSenseConfig(task="magic")
        with pytest.raises(ValueError):
            DeepSenseConfig(task="classification", predict_variance=True)
        with pytest.raises(ValueError):
            DeepSenseConfig(num_sensors=0)


class TestDeepSenseClassification:
    CFG = SensorTimeSeriesConfig(
        num_classes=3, num_sensors=2, channels_per_sensor=3,
        num_intervals=4, samples_per_interval=8, noise_scale=0.4, seed=13,
    )

    def make_model(self):
        return DeepSense(DeepSenseConfig(
            num_sensors=2, channels_per_sensor=3, num_intervals=4,
            samples_per_interval=8, conv_channels=6, hidden_size=16,
            output_dim=3, seed=0,
        ))

    def test_forward_shape(self):
        model = self.make_model()
        ds = make_sensor_dataset(6, self.CFG, seed=0)
        out = model(Tensor(ds.inputs))
        assert out.shape == (6, 3)

    def test_input_validation(self):
        model = self.make_model()
        with pytest.raises(ValueError):
            model(Tensor(np.zeros((2, 6, 5, 8))))

    def test_learns_activity_classes(self):
        model = self.make_model()
        train = make_sensor_dataset(300, self.CFG, seed=0)
        test = make_sensor_dataset(120, self.CFG, seed=1)
        opt = Adam(model.parameters(), lr=3e-3)
        rng = np.random.default_rng(0)
        for _ in range(60):
            idx = rng.choice(len(train), size=32, replace=False)
            loss = cross_entropy(model(Tensor(train.inputs[idx])), train.labels[idx])
            opt.zero_grad()
            loss.backward()
            opt.step()
        model.eval()
        acc = float((model.predict(test.inputs) == test.labels).mean())
        assert acc > 0.6  # chance is 1/3

    def test_predict_proba_normalized(self):
        model = self.make_model().eval()
        ds = make_sensor_dataset(5, self.CFG, seed=2)
        probs = model.predict_proba(ds.inputs)
        np.testing.assert_allclose(probs.sum(axis=-1), np.ones(5))

    def test_uncertainty_api_guarded(self):
        model = self.make_model()
        with pytest.raises(RuntimeError):
            model.predict_with_uncertainty(np.zeros((1, 6, 4, 8)))


class TestDeepSenseEstimation:
    def make_model(self, predict_variance=True):
        return DeepSense(DeepSenseConfig(
            num_sensors=1, channels_per_sensor=2, num_intervals=4,
            samples_per_interval=8, conv_channels=4, hidden_size=12,
            output_dim=1, task="estimation", predict_variance=predict_variance,
            seed=0,
        ))

    @staticmethod
    def make_regression_data(n, seed=0, noise=0.05):
        """Target = mean amplitude of the signal; input = noisy sinusoids."""
        rng = np.random.default_rng(seed)
        amp = rng.uniform(0.5, 2.0, size=n)
        t = np.linspace(0, 4 * np.pi, 32)
        signal = amp[:, None] * np.sin(t)[None, :]
        x = np.stack([signal, np.gradient(signal, axis=1)], axis=1)
        x = x + rng.normal(0, noise, size=x.shape)
        return x.reshape(n, 2, 4, 8), amp[:, None]

    def test_estimation_head_shapes(self):
        model = self.make_model()
        x, _ = self.make_regression_data(4)
        out = model(Tensor(x))
        assert out.shape == (4, 2)  # mean + log-variance
        mean, log_var = model.split_mean_logvar(out)
        assert mean.shape == (4, 1) and log_var.shape == (4, 1)

    def test_learns_amplitude_regression_with_uncertainty(self):
        model = self.make_model()
        x, y = self.make_regression_data(400, seed=1)
        opt = Adam(model.parameters(), lr=3e-3)
        rng = np.random.default_rng(0)
        for _ in range(150):
            idx = rng.choice(len(x), size=48, replace=False)
            out = model(Tensor(x[idx]))
            mean, log_var = model.split_mean_logvar(out)
            loss = gaussian_nll_mse(mean, log_var, y[idx], weight=0.5)
            opt.zero_grad()
            loss.backward()
            opt.step()
        model.eval()
        xt, yt = self.make_regression_data(100, seed=2)
        pred, std = model.predict_with_uncertainty(xt)
        mae = float(np.abs(pred - yt).mean())
        assert mae < 0.25
        assert (std > 0).all()

    def test_split_requires_variance_head(self):
        model = self.make_model(predict_variance=False)
        with pytest.raises(RuntimeError):
            model.split_mean_logvar(Tensor(np.zeros((2, 1))))
