"""Parameterized gradient checks for layers and losses.

Coverage the ad-hoc per-file checks never had: BatchNorm (1D and 2D, in
both train and eval mode), eval-mode Dropout, every differentiable loss,
and the GRU cell — all through the shared :func:`tests.nn.gradcheck
.gradcheck` helper.
"""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm1D,
    BatchNorm2D,
    Dropout,
    GRUCell,
    Tensor,
    cross_entropy,
    gaussian_nll_mse,
)
from repro.nn.losses import entropy_regularized_ce, gaussian_nll, mae, mse

from .gradcheck import gradcheck


class TestBatchNormGradients:
    @pytest.mark.parametrize("training", [True, False], ids=["train", "eval"])
    def test_batchnorm1d(self, training):
        layer = BatchNorm1D(4)
        if not training:
            # Give eval mode non-trivial running statistics first.
            layer(Tensor(np.random.default_rng(0).normal(size=(16, 4))))
            layer.eval()
        x = np.random.default_rng(1).normal(size=(5, 4))
        gradcheck(lambda t: layer(t) ** 2, x, atol=1e-5)

    @pytest.mark.parametrize("training", [True, False], ids=["train", "eval"])
    def test_batchnorm2d(self, training):
        layer = BatchNorm2D(3)
        if not training:
            layer(Tensor(np.random.default_rng(0).normal(size=(8, 3, 4, 4))))
            layer.eval()
        x = np.random.default_rng(1).normal(size=(2, 3, 4, 4))
        gradcheck(lambda t: layer(t) ** 2, x, atol=1e-5)


class TestDropoutGradients:
    def test_eval_mode_is_identity_gradient(self):
        layer = Dropout(0.5)
        layer.eval()
        x = np.random.default_rng(2).normal(size=(4, 6))
        grad = gradcheck(lambda t: layer(t) ** 2, x)
        # Eval-mode dropout is the identity, so d(sum(x^2))/dx = 2x exactly.
        np.testing.assert_allclose(grad, 2 * x, atol=1e-9)


class TestLossGradients:
    def test_cross_entropy(self):
        labels = np.array([0, 2, 1])
        x = np.random.default_rng(3).normal(size=(3, 4))
        gradcheck(lambda t: cross_entropy(t, labels), x, atol=1e-5)

    def test_entropy_regularized_ce(self):
        labels = np.array([1, 0])
        x = np.random.default_rng(4).normal(size=(2, 3))
        gradcheck(
            lambda t: entropy_regularized_ce(t, labels, alpha=0.3), x, atol=1e-5
        )

    def test_mse(self):
        target = np.random.default_rng(5).normal(size=(4, 2))
        x = np.random.default_rng(6).normal(size=(4, 2))
        gradcheck(lambda t: mse(t, target), x)

    def test_mae(self):
        target = np.random.default_rng(7).normal(size=(5,))
        # Keep predictions away from targets: |.| is non-differentiable at 0.
        x = target + np.random.default_rng(8).choice([-1.0, 1.0], size=5) * 0.5
        gradcheck(lambda t: mae(t, target), x)

    def test_gaussian_nll(self):
        target = np.random.default_rng(9).normal(size=(4, 1))
        x = np.random.default_rng(10).normal(size=(4, 2))
        gradcheck(
            lambda t: gaussian_nll(t[:, 0:1], t[:, 1:2], target), x, atol=1e-5
        )

    def test_gaussian_nll_mse(self):
        target = np.random.default_rng(11).normal(size=(3, 1))
        x = np.random.default_rng(12).normal(size=(3, 2))
        gradcheck(
            lambda t: gaussian_nll_mse(t[:, 0:1], t[:, 1:2], target, weight=0.5),
            x,
            atol=1e-5,
        )


class TestRNNGradients:
    def test_gru_cell_input_gradient(self):
        cell = GRUCell(3, 4, rng=np.random.default_rng(13))
        x = np.random.default_rng(14).normal(size=(2, 3))
        gradcheck(lambda t: cell(t), x, atol=1e-5)

    def test_gru_cell_with_hidden_state(self):
        cell = GRUCell(2, 3, rng=np.random.default_rng(15))
        h = Tensor(np.random.default_rng(16).normal(size=(2, 3)))
        x = np.random.default_rng(17).normal(size=(2, 2))
        gradcheck(lambda t: cell(t, h), x, atol=1e-5)
