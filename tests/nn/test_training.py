"""Tests for the staged training loop knobs not covered elsewhere."""

import numpy as np
import pytest

from repro.datasets import SyntheticImageConfig, make_image_dataset
from repro.nn import (
    SGD,
    StagedResNet,
    StagedResNetConfig,
    Tensor,
    staged_loss,
    train_staged_model,
)

TINY = StagedResNetConfig(
    num_classes=3, image_size=8, stage_channels=(4, 6), blocks_per_stage=1, seed=0
)
DATA = SyntheticImageConfig(num_classes=3, image_size=8, seed=2)


class TestStagedLoss:
    def test_stage_weights_scale_terms(self):
        model = StagedResNet(TINY)
        logits = model(Tensor(np.zeros((4, 3, 8, 8))))
        labels = np.zeros(4, dtype=int)
        base = staged_loss(logits, labels, stage_weights=[1.0, 1.0]).item()
        doubled = staged_loss(logits, labels, stage_weights=[2.0, 2.0]).item()
        assert doubled == pytest.approx(2 * base)

    def test_alpha_changes_loss(self):
        model = StagedResNet(TINY)
        logits = model(Tensor(np.random.default_rng(0).normal(size=(4, 3, 8, 8))))
        labels = np.zeros(4, dtype=int)
        plain = staged_loss(logits, labels).item()
        regularized = staged_loss(logits, labels, alpha=0.5).item()
        assert regularized > plain  # entropy is positive


class TestTrainLoopKnobs:
    def test_on_epoch_end_callback_invoked(self):
        train_set = make_image_dataset(90, DATA, seed=0)
        model = StagedResNet(TINY)
        seen = []
        train_staged_model(
            model, train_set, epochs=2, batch_size=32,
            on_epoch_end=lambda epoch, loss: seen.append((epoch, loss)),
        )
        assert [e for e, _ in seen] == [0, 1]
        assert all(np.isfinite(l) for _, l in seen)

    def test_custom_optimizer_used(self):
        train_set = make_image_dataset(90, DATA, seed=0)
        model = StagedResNet(TINY)
        optimizer = SGD(model.parameters(), lr=1e-2, momentum=0.9)
        report = train_staged_model(
            model, train_set, epochs=2, optimizer=optimizer
        )
        assert len(report.epoch_losses) == 2

    def test_grad_clip_disabled(self):
        train_set = make_image_dataset(60, DATA, seed=1)
        model = StagedResNet(TINY)
        report = train_staged_model(model, train_set, epochs=1, grad_clip=0.0)
        assert np.isfinite(report.final_loss)

    def test_report_final_loss_nan_when_untrained(self):
        from repro.nn import TrainReport

        assert np.isnan(TrainReport().final_loss)

    def test_accuracy_tracked_per_epoch(self):
        train_set = make_image_dataset(120, DATA, seed=3)
        model = StagedResNet(TINY)
        report = train_staged_model(model, train_set, epochs=3, lr=1e-2)
        assert len(report.epoch_accuracies) == 3
        assert all(0.0 <= a <= 1.0 for a in report.epoch_accuracies)
