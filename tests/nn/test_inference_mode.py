"""The no-grad inference fast path: semantics and bit-for-bit parity.

The fast path must be an *optimisation*, not an approximation: every raw
ndarray ``*_infer`` helper and every ``Module.infer`` override must produce
exactly the bytes the autograd forward produces in eval mode.  These tests
pin that contract with ``assert_array_equal`` (no tolerances).
"""

import threading

import numpy as np
import pytest

from repro.nn import (
    BatchNorm1D,
    BatchNorm2D,
    Conv2D,
    Dense,
    Dropout,
    Sequential,
    StagedResNet,
    StagedResNetConfig,
    Tensor,
    is_grad_enabled,
    no_grad,
    set_grad_enabled,
)
from repro.nn import functional as F
from repro.nn.deepsense import DeepSense, DeepSenseConfig
from repro.nn.functional import im2col
from repro.nn.resnet import ResidualBlock

from .gradcheck import gradcheck


# ----------------------------------------------------------------------
# no_grad semantics
# ----------------------------------------------------------------------
class TestNoGradMode:
    def test_default_is_enabled(self):
        assert is_grad_enabled()

    def test_context_manager_disables_and_restores(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            with no_grad():  # nesting
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert is_grad_enabled()

    def test_no_graph_is_built(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        with no_grad():
            y = (x * 2.0).relu().sum()
        assert not y.requires_grad
        assert y._parents == ()
        assert y._backward_fn is None

    def test_values_match_grad_mode(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        ref = (x @ Tensor(rng.normal(size=(5, 3)))).sigmoid()
        rng = np.random.default_rng(0)
        x2 = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        with no_grad():
            fast = (x2 @ Tensor(rng.normal(size=(5, 3)))).sigmoid()
        np.testing.assert_array_equal(ref.data, fast.data)

    def test_decorator(self):
        @no_grad()
        def f(t):
            assert not is_grad_enabled()
            return t * 3.0

        x = Tensor(np.ones(3), requires_grad=True)
        y = f(x)
        assert not y.requires_grad
        assert is_grad_enabled()

    def test_set_grad_enabled_returns_previous(self):
        prev = set_grad_enabled(False)
        try:
            assert prev is True
            assert not is_grad_enabled()
        finally:
            set_grad_enabled(prev)
        assert is_grad_enabled()

    def test_mode_is_thread_local(self):
        seen = {}

        def probe():
            seen["worker"] = is_grad_enabled()

        with no_grad():
            t = threading.Thread(target=probe)
            t.start()
            t.join()
        assert seen["worker"] is True  # other threads keep grad on

    def test_backward_still_works_after_no_grad(self):
        x = Tensor(np.array([2.0, 3.0]), requires_grad=True)
        with no_grad():
            (x * 5.0).sum()
        loss = (x * x).sum()
        loss.backward()
        np.testing.assert_allclose(x.grad, [4.0, 6.0])


# ----------------------------------------------------------------------
# im2col: pinned against a loop reference + gradcheck through the new path
# ----------------------------------------------------------------------
def _im2col_reference(x, kernel, stride, pad):
    """The straightforward per-offset implementation (the old code path)."""
    n, c, h, w = x.shape
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    out_h = (h + 2 * pad - kernel) // stride + 1
    out_w = (w + 2 * pad - kernel) // stride + 1
    cols = np.empty((n, c, kernel, kernel, out_h, out_w), dtype=x.dtype)
    for ki in range(kernel):
        for kj in range(kernel):
            cols[:, :, ki, kj, :, :] = x[
                :, :, ki : ki + stride * out_h : stride, kj : kj + stride * out_w : stride
            ]
    return cols.reshape(n, c * kernel * kernel, out_h * out_w), (out_h, out_w)


class TestIm2ColFastPath:
    @pytest.mark.parametrize(
        "shape,kernel,stride,pad",
        [
            ((2, 3, 6, 6), 3, 1, 1),
            ((1, 1, 5, 5), 3, 2, 0),
            ((3, 4, 8, 8), 2, 2, 0),
            ((2, 2, 7, 7), 3, 2, 1),
            ((1, 3, 4, 4), 1, 1, 0),
        ],
    )
    def test_matches_loop_reference(self, shape, kernel, stride, pad):
        rng = np.random.default_rng(0)
        x = rng.normal(size=shape)
        ref, ref_dims = _im2col_reference(x, kernel, stride, pad)
        got, dims = im2col(x, kernel, stride, pad)
        assert dims == ref_dims
        np.testing.assert_array_equal(got, ref)

    def test_scratch_reuse_matches_fresh(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2, 3, 6, 6))
        fresh, _ = im2col(x, 3, 1, 1)
        reused, _ = im2col(x, 3, 1, 1, reuse_scratch=True)
        np.testing.assert_array_equal(reused, fresh)
        # A second reuse call on new data must not be polluted by the first.
        y = rng.normal(size=(2, 3, 6, 6))
        fresh_y, _ = im2col(y, 3, 1, 1)
        reused_y, _ = im2col(y, 3, 1, 1, reuse_scratch=True)
        np.testing.assert_array_equal(reused_y, fresh_y)

    def test_im2col_output_is_writable_copy(self):
        x = np.ones((1, 1, 4, 4))
        cols, _ = im2col(x, 2, 2, 0)
        cols[...] = 0.0  # a view would raise; the contract is a real copy
        assert x.sum() == 16.0

    def test_gradcheck_conv2d_through_new_im2col(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(2, 2, 5, 5))
        w = Tensor(rng.normal(size=(3, 2, 3, 3)))
        b = Tensor(rng.normal(size=(3,)))
        gradcheck(lambda t: F.conv2d(t, w, b, stride=2, padding=1), x)


# ----------------------------------------------------------------------
# Bit-for-bit parity: functional ops
# ----------------------------------------------------------------------
class TestFunctionalParity:
    def setup_method(self):
        self.rng = np.random.default_rng(7)

    def test_conv2d(self):
        x = self.rng.normal(size=(2, 3, 8, 8))
        w = self.rng.normal(size=(4, 3, 3, 3))
        b = self.rng.normal(size=(4,))
        ref = F.conv2d(Tensor(x), Tensor(w), Tensor(b), stride=2, padding=1).data
        fast = F.conv2d_infer(x, w, b, stride=2, padding=1)
        np.testing.assert_array_equal(fast, ref)

    def test_conv2d_no_bias(self):
        x = self.rng.normal(size=(1, 2, 6, 6))
        w = self.rng.normal(size=(3, 2, 3, 3))
        ref = F.conv2d(Tensor(x), Tensor(w), None, stride=1, padding=1).data
        np.testing.assert_array_equal(
            F.conv2d_infer(x, w, None, stride=1, padding=1), ref
        )

    def test_max_pool2d(self):
        x = self.rng.normal(size=(2, 4, 8, 8))
        ref = F.max_pool2d(Tensor(x), kernel=2).data
        np.testing.assert_array_equal(F.max_pool2d_infer(x, kernel=2), ref)

    def test_avg_pool2d(self):
        x = self.rng.normal(size=(2, 4, 8, 8))
        ref = F.avg_pool2d(Tensor(x), kernel=2).data
        np.testing.assert_array_equal(F.avg_pool2d_infer(x, kernel=2), ref)

    def test_global_avg_pool2d(self):
        x = self.rng.normal(size=(3, 5, 6, 6))
        ref = F.global_avg_pool2d(Tensor(x)).data
        np.testing.assert_array_equal(F.global_avg_pool2d_infer(x), ref)

    def test_softmax(self):
        x = self.rng.normal(size=(4, 10))
        ref = F.softmax(Tensor(x), axis=-1).data
        np.testing.assert_array_equal(F.softmax_infer(x, axis=-1), ref)

    def test_relu(self):
        x = self.rng.normal(size=(4, 10))
        ref = Tensor(x).relu().data
        np.testing.assert_array_equal(F.relu_infer(x), ref)


# ----------------------------------------------------------------------
# Bit-for-bit parity: layers and models (eval mode)
# ----------------------------------------------------------------------
class TestLayerParity:
    def setup_method(self):
        self.rng = np.random.default_rng(11)

    def _check(self, layer, x):
        layer.eval()
        ref = layer(Tensor(x)).data
        np.testing.assert_array_equal(layer.infer(x), ref)

    def test_dense(self):
        self._check(Dense(6, 4, rng=self.rng), self.rng.normal(size=(5, 6)))

    def test_conv2d_layer(self):
        self._check(
            Conv2D(3, 4, 3, stride=1, padding=1, rng=self.rng),
            self.rng.normal(size=(2, 3, 6, 6)),
        )

    def test_batchnorm2d_eval(self):
        bn = BatchNorm2D(4)
        # Give the running stats some non-trivial values first.
        bn.train()
        for _ in range(3):
            bn(Tensor(self.rng.normal(loc=1.5, scale=2.0, size=(8, 4, 5, 5))))
        self._check(bn, self.rng.normal(size=(2, 4, 5, 5)))

    def test_batchnorm1d_eval(self):
        bn = BatchNorm1D(6)
        bn.train()
        for _ in range(3):
            bn(Tensor(self.rng.normal(loc=-0.5, scale=3.0, size=(16, 6))))
        self._check(bn, self.rng.normal(size=(4, 6)))

    def test_dropout_eval_is_identity(self):
        drop = Dropout(0.5)
        drop.eval()
        x = self.rng.normal(size=(3, 7))
        np.testing.assert_array_equal(drop.infer(x), x)

    def test_sequential_chains_infer(self):
        seq = Sequential(
            Conv2D(2, 3, 3, stride=1, padding=1, rng=self.rng),
            BatchNorm2D(3),
        )
        self._check(seq, self.rng.normal(size=(2, 2, 5, 5)))

    def test_residual_block(self):
        block = ResidualBlock(3, 6, stride=2, rng=self.rng)
        self._check(block, self.rng.normal(size=(2, 3, 8, 8)))

    def test_residual_block_identity_shortcut(self):
        block = ResidualBlock(4, 4, stride=1, rng=self.rng)
        self._check(block, self.rng.normal(size=(2, 4, 6, 6)))


class TestModelParity:
    def test_staged_resnet_predict_proba(self):
        rng = np.random.default_rng(3)
        model = StagedResNet(
            StagedResNetConfig(
                num_classes=5, image_size=8, stage_channels=(4, 8), blocks_per_stage=1
            )
        )
        model.eval()
        x = rng.normal(size=(4, 3, 8, 8))
        fast = model.predict_proba(x)
        ref = [
            F.softmax(l, axis=-1).data for l in model.forward(Tensor(x))
        ]
        assert len(fast) == len(ref) == model.num_stages
        for got, want in zip(fast, ref):
            np.testing.assert_array_equal(got, want)

    def test_staged_resnet_infer_stage_matches_run_stage(self):
        rng = np.random.default_rng(4)
        model = StagedResNet(
            StagedResNetConfig(
                num_classes=5, image_size=8, stage_channels=(4, 8), blocks_per_stage=1
            )
        )
        model.eval()
        x = rng.normal(size=(2, 3, 8, 8))
        feats_ref = model.run_stem(Tensor(x))
        feats_fast = model.infer_stem(x)
        np.testing.assert_array_equal(feats_fast, feats_ref.data)
        for stage in range(model.num_stages):
            feats_ref, logits_ref = model.run_stage(feats_ref, stage)
            feats_fast, logits_fast = model.infer_stage(feats_fast, stage)
            np.testing.assert_array_equal(feats_fast, feats_ref.data)
            np.testing.assert_array_equal(logits_fast, logits_ref.data)

    def test_deepsense_predict_proba(self):
        cfg = DeepSenseConfig(
            num_sensors=2,
            channels_per_sensor=2,
            num_intervals=4,
            samples_per_interval=8,
            conv_channels=4,
            hidden_size=8,
            output_dim=3,
        )
        model = DeepSense(cfg)
        model.eval()
        rng = np.random.default_rng(5)
        x = rng.normal(size=(3, 4, 4, 8))
        fast = model.predict_proba(x)
        ref = F.softmax(model.forward(Tensor(x)), axis=-1).data
        np.testing.assert_array_equal(fast, ref)


# ----------------------------------------------------------------------
# avg_pool2d backward (the satellite fix): gradients stay exact
# ----------------------------------------------------------------------
class TestAvgPoolBackward:
    @pytest.mark.parametrize("kernel,stride", [(2, 2), (3, 1), (2, 1), (3, 3)])
    def test_gradcheck(self, kernel, stride):
        x = np.random.default_rng(6).normal(size=(2, 3, 6, 6))
        gradcheck(lambda t: F.avg_pool2d(t, kernel=kernel, stride=stride) ** 2, x)
