"""Tests for the model .npz wire format used by the caching service."""

import numpy as np
import pytest

from repro.nn import StagedResNet, StagedResNetConfig
from repro.nn.serialization import (
    load_staged_model,
    model_size_bytes,
    save_staged_model,
)

TINY = StagedResNetConfig(
    num_classes=4, image_size=8, stage_channels=(4, 8), blocks_per_stage=1, seed=3
)


class TestSerialization:
    def test_roundtrip_preserves_outputs(self, tmp_path):
        model = StagedResNet(TINY)
        # Run a forward pass in train mode so batch-norm buffers move away
        # from their initial values — the roundtrip must preserve them.
        from repro.nn import Tensor

        rng = np.random.default_rng(0)
        model(Tensor(rng.normal(size=(8, 3, 8, 8))))
        model.eval()
        x = rng.normal(size=(4, 3, 8, 8))
        expected = model.predict_proba(x)

        path = save_staged_model(model, tmp_path / "m.npz")
        loaded = load_staged_model(path)
        actual = loaded.predict_proba(x)
        for e, a in zip(expected, actual):
            np.testing.assert_allclose(a, e, atol=1e-12)

    def test_suffix_added(self, tmp_path):
        model = StagedResNet(TINY)
        path = save_staged_model(model, tmp_path / "weights")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_config_preserved(self, tmp_path):
        model = StagedResNet(TINY)
        loaded = load_staged_model(save_staged_model(model, tmp_path / "m.npz"))
        assert loaded.config == TINY

    def test_size_reporting(self, tmp_path):
        small = StagedResNet(TINY)
        big = StagedResNet(StagedResNetConfig(
            num_classes=4, image_size=8, stage_channels=(16, 32),
            blocks_per_stage=2, seed=0,
        ))
        p_small = save_staged_model(small, tmp_path / "small.npz")
        p_big = save_staged_model(big, tmp_path / "big.npz")
        assert model_size_bytes(p_small) < model_size_bytes(p_big)

    def test_rejects_foreign_archives(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, a=np.zeros(3))
        with pytest.raises(ValueError):
            load_staged_model(path)

    def test_loaded_model_in_eval_mode(self, tmp_path):
        model = StagedResNet(TINY)
        loaded = load_staged_model(save_staged_model(model, tmp_path / "m.npz"))
        assert not loaded.training
