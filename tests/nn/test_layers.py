"""Tests for Module/layer abstractions."""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm1D,
    BatchNorm2D,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool2D,
    MaxPool2D,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Tensor,
)


def make_mlp(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(
        Dense(4, 8, rng=rng), ReLU(), Dropout(0.5, seed=1), Dense(8, 3, rng=rng)
    )


class TestModuleTraversal:
    def test_parameters_counts_nested(self):
        mlp = make_mlp()
        # Dense(4,8): 4*8+8, Dense(8,3): 8*3+3
        assert mlp.num_parameters() == 4 * 8 + 8 + 8 * 3 + 3

    def test_named_parameters_unique_names(self):
        names = [n for n, _ in make_mlp().named_parameters()]
        assert len(names) == len(set(names))
        assert any("layers.0.weight" in n for n in names)

    def test_train_eval_propagates(self):
        mlp = make_mlp()
        mlp.eval()
        assert all(not c.training for c in mlp.children())
        mlp.train()
        assert all(c.training for c in mlp.children())

    def test_zero_grad_clears_all(self):
        mlp = make_mlp()
        out = mlp(Tensor(np.ones((2, 4)))).sum()
        out.backward()
        assert any(p.grad is not None for p in mlp.parameters())
        mlp.zero_grad()
        assert all(p.grad is None for p in mlp.parameters())

    def test_state_dict_roundtrip(self):
        a, b = make_mlp(seed=0), make_mlp(seed=99)
        b.load_state_dict(a.state_dict())
        x = np.ones((2, 4))
        a.eval(), b.eval()
        np.testing.assert_allclose(a(Tensor(x)).data, b(Tensor(x)).data)

    def test_load_state_dict_missing_key_raises(self):
        mlp = make_mlp()
        state = mlp.state_dict()
        state.pop(next(iter(state)))
        with pytest.raises(KeyError):
            mlp.load_state_dict(state)

    def test_load_state_dict_shape_mismatch_raises(self):
        mlp = make_mlp()
        state = mlp.state_dict()
        key = next(iter(state))
        state[key] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            mlp.load_state_dict(state)


class TestDense:
    def test_forward_shape(self):
        layer = Dense(5, 7)
        assert layer(Tensor(np.zeros((3, 5)))).shape == (3, 7)

    def test_no_bias(self):
        layer = Dense(5, 7, bias=False)
        assert layer.bias is None
        assert layer.num_parameters() == 35

    def test_gradients_flow(self):
        layer = Dense(3, 2)
        layer(Tensor(np.ones((4, 3)))).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None
        np.testing.assert_allclose(layer.bias.grad, [4.0, 4.0])


class TestConv2DLayer:
    def test_forward_shape_with_stride(self):
        layer = Conv2D(3, 8, kernel=3, stride=2, padding=1)
        assert layer(Tensor(np.zeros((2, 3, 8, 8)))).shape == (2, 8, 4, 4)

    def test_parameter_shapes(self):
        layer = Conv2D(3, 8, kernel=5)
        assert layer.weight.shape == (8, 3, 5, 5)
        assert layer.bias.shape == (8,)


class TestBatchNorm:
    def test_bn2d_normalizes_in_train_mode(self):
        bn = BatchNorm2D(4)
        rng = np.random.default_rng(0)
        x = rng.normal(3.0, 2.0, size=(8, 4, 5, 5))
        out = bn(Tensor(x)).data
        assert abs(out.mean()) < 1e-6
        assert out.std() == pytest.approx(1.0, abs=0.01)

    def test_bn2d_running_stats_update(self):
        bn = BatchNorm2D(2, momentum=0.5)
        x = np.ones((4, 2, 3, 3)) * 10.0
        bn(Tensor(x))
        np.testing.assert_allclose(bn.running_mean, [5.0, 5.0])

    def test_bn2d_eval_uses_running_stats(self):
        bn = BatchNorm2D(2)
        bn.running_mean = np.array([1.0, 2.0])
        bn.running_var = np.array([4.0, 9.0])
        bn.eval()
        x = np.zeros((1, 2, 2, 2))
        out = bn(Tensor(x)).data
        np.testing.assert_allclose(out[0, 0], -0.5 * np.ones((2, 2)), atol=1e-4)
        np.testing.assert_allclose(out[0, 1], -2 / 3 * np.ones((2, 2)), atol=1e-4)

    def test_bn1d_train_and_eval(self):
        bn = BatchNorm1D(3)
        rng = np.random.default_rng(1)
        x = rng.normal(5, 3, size=(64, 3))
        out = bn(Tensor(x)).data
        assert abs(out.mean()) < 1e-6
        bn.eval()
        out_eval = bn(Tensor(x)).data
        assert out_eval.shape == (64, 3)

    def test_bn_gradients_flow_to_gamma_beta(self):
        bn = BatchNorm2D(2)
        bn(Tensor(np.random.default_rng(2).normal(size=(4, 2, 3, 3)))).sum().backward()
        assert bn.gamma.grad is not None
        assert bn.beta.grad is not None


class TestDropoutLayer:
    def test_eval_mode_is_identity(self):
        layer = Dropout(0.9)
        layer.eval()
        x = Tensor(np.ones((3, 3)))
        np.testing.assert_allclose(layer(x).data, x.data)

    def test_always_on_persists_in_eval(self):
        layer = Dropout(0.5, always_on=True)
        layer.eval()
        out = layer(Tensor(np.ones((100, 100)))).data
        assert (out == 0).any()  # still dropping in eval mode


class TestShapesAndSequential:
    def test_flatten(self):
        assert Flatten()(Tensor(np.zeros((2, 3, 4, 5)))).shape == (2, 60)

    def test_global_avg_pool_layer(self):
        assert GlobalAvgPool2D()(Tensor(np.zeros((2, 3, 4, 4)))).shape == (2, 3)

    def test_max_pool_layer(self):
        assert MaxPool2D(2)(Tensor(np.zeros((2, 3, 4, 4)))).shape == (2, 3, 2, 2)

    def test_sequential_indexing_and_len(self):
        seq = Sequential(ReLU(), Flatten())
        assert len(seq) == 2
        assert isinstance(seq[0], ReLU)
        assert [type(m) for m in seq] == [ReLU, Flatten]

    def test_sequential_forward_order(self):
        seq = Sequential(Flatten(), Dense(4, 2))
        out = seq(Tensor(np.ones((3, 2, 2))))
        assert out.shape == (3, 2)
