"""Tests for optimizers, schedulers and loss functions."""

import numpy as np
import pytest

from repro.nn import (
    SGD,
    Adam,
    Dense,
    StepLR,
    Tensor,
    clip_grad_norm,
    cross_entropy,
    entropy,
    entropy_regularized_ce,
    gaussian_nll,
    gaussian_nll_mse,
    mae,
    mse,
)
from repro.nn import functional as F
from repro.nn.layers import Parameter


def quadratic_param(value=5.0):
    return Parameter(np.array([value]))


class TestSGD:
    def test_converges_on_quadratic(self):
        p = quadratic_param()
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            loss = (p * p).sum()
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert abs(p.data[0]) < 1e-3

    def test_momentum_accelerates(self):
        losses = {}
        for momentum in (0.0, 0.9):
            p = quadratic_param()
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(50):
                loss = (p * p).sum()
                opt.zero_grad()
                loss.backward()
                opt.step()
            losses[momentum] = abs(p.data[0])
        assert losses[0.9] < losses[0.0]

    def test_weight_decay_shrinks_weights(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        p.grad = np.array([0.0])
        opt.step()
        assert p.data[0] == pytest.approx(0.95)

    def test_skips_params_without_grad(self):
        p = Parameter(np.array([1.0]))
        SGD([p], lr=0.1).step()
        assert p.data[0] == 1.0

    def test_invalid_lr_raises(self):
        with pytest.raises(ValueError):
            SGD([quadratic_param()], lr=0.0)

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = quadratic_param()
        opt = Adam([p], lr=0.3)
        for _ in range(200):
            loss = (p * p).sum()
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert abs(p.data[0]) < 1e-3

    def test_trains_dense_regression(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(128, 3))
        true_w = np.array([[1.0], [-2.0], [0.5]])
        y = x @ true_w
        layer = Dense(3, 1, rng=rng)
        opt = Adam(layer.parameters(), lr=0.05)
        for _ in range(200):
            loss = mse(layer(Tensor(x)), y)
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(layer.weight.data, true_w, atol=0.05)


class TestStepLR:
    def test_decays_at_interval(self):
        p = quadratic_param()
        opt = SGD([p], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        sched.step()
        assert opt.lr == 1.0
        sched.step()
        assert opt.lr == pytest.approx(0.1)

    def test_invalid_step_size(self):
        with pytest.raises(ValueError):
            StepLR(SGD([quadratic_param()], lr=1.0), step_size=0)


class TestClipGradNorm:
    def test_clips_when_above(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 10.0)
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_noop_when_below(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 0.1)
        clip_grad_norm([p], max_norm=10.0)
        np.testing.assert_allclose(p.grad, np.full(4, 0.1))


class TestLosses:
    def test_cross_entropy_matches_manual(self):
        logits = Tensor(np.array([[2.0, 0.0], [0.0, 2.0]]))
        labels = np.array([0, 1])
        expected = -np.log(np.exp(2) / (np.exp(2) + 1))
        assert cross_entropy(logits, labels).item() == pytest.approx(expected)

    def test_cross_entropy_perfect_prediction_near_zero(self):
        logits = Tensor(np.array([[100.0, 0.0]]))
        assert cross_entropy(logits, np.array([0])).item() < 1e-6

    def test_entropy_uniform_is_log_k(self):
        probs = Tensor(np.full((3, 4), 0.25))
        assert entropy(probs).item() == pytest.approx(np.log(4))

    def test_entropy_onehot_is_zero(self):
        probs = Tensor(np.array([[1.0, 0.0, 0.0]]))
        assert entropy(probs).item() == pytest.approx(0.0, abs=1e-9)

    def test_entropy_regularized_ce_signs(self):
        """alpha > 0 adds the entropy, alpha < 0 subtracts it (Eq. 4)."""
        logits = Tensor(np.array([[1.0, 0.0, -1.0]]))
        labels = np.array([0])
        base = cross_entropy(logits, labels).item()
        probs = F.softmax(logits)
        h = entropy(probs).item()
        assert entropy_regularized_ce(logits, labels, 0.5).item() == pytest.approx(base + 0.5 * h)
        assert entropy_regularized_ce(logits, labels, -0.5).item() == pytest.approx(base - 0.5 * h)

    def test_negative_alpha_gradient_raises_entropy(self):
        """Fine-tuning with alpha<0 should push the output toward uniform."""
        logits = Parameter(np.array([[3.0, 0.0, 0.0]]))
        labels = np.array([0])
        opt = SGD([logits], lr=0.5)
        h_before = entropy(F.softmax(logits)).item()
        for _ in range(20):
            loss = entropy_regularized_ce(logits, labels, alpha=-2.0)
            opt.zero_grad()
            loss.backward()
            opt.step()
        h_after = entropy(F.softmax(logits)).item()
        assert h_after > h_before

    def test_mse_and_mae(self):
        pred = Tensor(np.array([1.0, 2.0]))
        target = np.array([0.0, 4.0])
        assert mse(pred, target).item() == pytest.approx((1 + 4) / 2)
        assert mae(pred, target).item() == pytest.approx((1 + 2) / 2)

    def test_gaussian_nll_minimized_at_true_variance(self):
        """NLL as a function of log_var is minimized at the residual variance."""
        rng = np.random.default_rng(0)
        target = rng.normal(0, 2.0, size=1000)
        mean = Tensor(np.zeros(1000))
        nlls = {
            lv: gaussian_nll(mean, Tensor(np.full(1000, lv)), target).item()
            for lv in [np.log(1.0), np.log(4.0), np.log(16.0)]
        }
        assert min(nlls, key=nlls.get) == pytest.approx(np.log(4.0))

    def test_gaussian_nll_mse_weight_bounds(self):
        with pytest.raises(ValueError):
            gaussian_nll_mse(Tensor(np.zeros(2)), Tensor(np.zeros(2)), np.zeros(2), weight=1.5)

    def test_gaussian_nll_mse_interpolates(self):
        mean = Tensor(np.array([1.0]))
        log_var = Tensor(np.array([0.0]))
        target = np.array([0.0])
        full_mse = gaussian_nll_mse(mean, log_var, target, weight=1.0).item()
        assert full_mse == pytest.approx(mse(mean, target).item())
        full_nll = gaussian_nll_mse(mean, log_var, target, weight=0.0).item()
        assert full_nll == pytest.approx(gaussian_nll(mean, log_var, target).item())
