"""Unit and property-based tests for the autograd engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, concatenate, numeric_gradient, stack, where
from repro.nn.tensor import unbroadcast


def check_grad(fn, *shapes, seed=0, atol=1e-5):
    """Compare autograd against central differences for a scalar-valued fn."""
    rng = np.random.default_rng(seed)
    arrays = [rng.normal(size=s) for s in shapes]
    tensors = [Tensor(a.copy(), requires_grad=True) for a in arrays]
    out = fn(*tensors)
    out.backward()
    for i, (arr, tensor) in enumerate(zip(arrays, tensors)):
        def scalar(x, i=i):
            inputs = [Tensor(a) for a in arrays]
            inputs[i] = Tensor(x)
            return float(fn(*inputs).data)

        numeric = numeric_gradient(scalar, arr.copy())
        assert tensor.grad is not None
        np.testing.assert_allclose(tensor.grad, numeric, atol=atol, rtol=1e-4)


class TestBasicOps:
    def test_add_backward(self):
        check_grad(lambda a, b: (a + b).sum(), (3, 4), (3, 4))

    def test_add_broadcast_backward(self):
        check_grad(lambda a, b: (a + b).sum(), (3, 4), (4,))

    def test_mul_backward(self):
        check_grad(lambda a, b: (a * b).sum(), (2, 3), (2, 3))

    def test_mul_broadcast_scalar_shape(self):
        check_grad(lambda a, b: (a * b).sum(), (2, 3), (1,))

    def test_sub_and_neg(self):
        check_grad(lambda a, b: (a - b).sum(), (5,), (5,))

    def test_div_backward(self):
        rng = np.random.default_rng(1)
        a = Tensor(rng.uniform(1, 2, (3, 3)), requires_grad=True)
        b = Tensor(rng.uniform(1, 2, (3, 3)), requires_grad=True)
        out = (a / b).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, 1.0 / b.data)
        np.testing.assert_allclose(b.grad, -a.data / b.data**2)

    def test_pow_backward(self):
        check_grad(lambda a: (a**3).sum(), (4,))

    def test_pow_requires_scalar(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_matmul_backward(self):
        check_grad(lambda a, b: (a @ b).sum(), (3, 4), (4, 2))

    def test_matmul_vector(self):
        check_grad(lambda a, b: (a @ b).sum(), (3, 4), (4,))

    def test_chained_expression(self):
        check_grad(lambda a, b: ((a * b + a) ** 2).mean(), (3, 3), (3, 3))

    def test_reuse_of_node_accumulates(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        out = a * a + a
        out.backward()
        np.testing.assert_allclose(a.grad, [5.0])  # 2a + 1


class TestUnaryOps:
    @pytest.mark.parametrize(
        "name",
        ["exp", "tanh", "sigmoid", "relu", "sqrt", "abs"],
    )
    def test_unary_grads(self, name):
        rng = np.random.default_rng(2)
        x = rng.uniform(0.3, 1.5, (4, 3))  # positive: safe for sqrt/log
        t = Tensor(x.copy(), requires_grad=True)
        out = getattr(t, name)().sum()
        out.backward()
        numeric = numeric_gradient(
            lambda arr: float(getattr(Tensor(arr), name)().sum().data), x.copy()
        )
        np.testing.assert_allclose(t.grad, numeric, atol=1e-5)

    def test_log_backward(self):
        rng = np.random.default_rng(3)
        x = rng.uniform(0.5, 2.0, (5,))
        t = Tensor(x, requires_grad=True)
        t.log().sum().backward()
        np.testing.assert_allclose(t.grad, 1.0 / x)

    def test_clip_gradient_masks_outside(self):
        t = Tensor(np.array([-2.0, 0.5, 3.0]), requires_grad=True)
        t.clip(0.0, 1.0).sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 0.0])

    def test_leaky_relu_negative_slope(self):
        t = Tensor(np.array([-1.0, 2.0]), requires_grad=True)
        t.leaky_relu(0.1).sum().backward()
        np.testing.assert_allclose(t.grad, [0.1, 1.0])


class TestReductions:
    def test_sum_axis_backward(self):
        check_grad(lambda a: a.sum(axis=0).sum(), (3, 4))

    def test_sum_keepdims(self):
        check_grad(lambda a: (a.sum(axis=1, keepdims=True) ** 2).sum(), (3, 4))

    def test_mean_matches_manual(self):
        t = Tensor(np.arange(6, dtype=float).reshape(2, 3), requires_grad=True)
        t.mean().backward()
        np.testing.assert_allclose(t.grad, np.full((2, 3), 1 / 6))

    def test_mean_multi_axis(self):
        check_grad(lambda a: (a.mean(axis=(1, 2)) ** 2).sum(), (2, 3, 4))

    def test_var_backward(self):
        check_grad(lambda a: a.var(axis=0).sum(), (5, 3))

    def test_max_backward_distributes_over_ties(self):
        t = Tensor(np.array([1.0, 3.0, 3.0]), requires_grad=True)
        t.max().backward()
        np.testing.assert_allclose(t.grad, [0.0, 0.5, 0.5])

    def test_max_axis_backward(self):
        t = Tensor(np.array([[1.0, 5.0], [7.0, 2.0]]), requires_grad=True)
        t.max(axis=1).sum().backward()
        np.testing.assert_allclose(t.grad, [[0, 1], [1, 0]])


class TestShapeOps:
    def test_reshape_roundtrip_grad(self):
        check_grad(lambda a: (a.reshape(6) ** 2).sum(), (2, 3))

    def test_transpose_grad(self):
        check_grad(lambda a: (a.T @ a).sum(), (3, 4))

    def test_transpose_explicit_axes(self):
        check_grad(lambda a: (a.transpose(2, 0, 1) ** 2).sum(), (2, 3, 4))

    def test_getitem_grad_scatter(self):
        t = Tensor(np.arange(4.0), requires_grad=True)
        t[1:3].sum().backward()
        np.testing.assert_allclose(t.grad, [0, 1, 1, 0])

    def test_getitem_fancy_index_repeats(self):
        t = Tensor(np.arange(3.0), requires_grad=True)
        idx = np.array([0, 0, 2])
        t[idx].sum().backward()
        np.testing.assert_allclose(t.grad, [2, 0, 1])

    def test_pad2d_grad(self):
        check_grad(lambda a: (a.pad2d(1) ** 2).sum(), (1, 2, 3, 3))

    def test_concatenate_grad(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((3, 2)), requires_grad=True)
        concatenate([a, b], axis=0).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 2)))
        np.testing.assert_allclose(b.grad, np.ones((3, 2)))

    def test_stack_grad(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        (stack([a, b], axis=0) * np.array([[1.0], [2.0]])).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(3))
        np.testing.assert_allclose(b.grad, 2 * np.ones(3))

    def test_where_routes_grads(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        cond = np.array([True, False, True])
        where(cond, a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1, 0, 1])
        np.testing.assert_allclose(b.grad, [0, 1, 0])


class TestBackwardMechanics:
    def test_backward_shape_mismatch_raises(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            (t * 2).backward(np.ones(3))

    def test_detach_cuts_graph(self):
        t = Tensor(np.ones(2), requires_grad=True)
        out = (t.detach() * 3).sum()
        out.backward()
        assert t.grad is None

    def test_no_grad_leaves_skip_backward(self):
        a = Tensor(np.ones(2), requires_grad=False)
        b = Tensor(np.ones(2), requires_grad=True)
        (a * b).sum().backward()
        assert a.grad is None
        np.testing.assert_allclose(b.grad, np.ones(2))

    def test_diamond_graph_accumulates_once_per_path(self):
        x = Tensor(np.array([3.0]), requires_grad=True)
        y = x * 2
        z = (y + x) * y  # z = (2x + x)(2x) = 6x^2, dz/dx = 12x
        z.backward()
        np.testing.assert_allclose(x.grad, [36.0])

    def test_zero_grad_resets(self):
        t = Tensor(np.ones(2), requires_grad=True)
        (t * 2).sum().backward()
        t.zero_grad()
        assert t.grad is None

    def test_repr_mentions_shape(self):
        assert "shape=(2,)" in repr(Tensor(np.ones(2)))


class TestUnbroadcast:
    def test_identity(self):
        g = np.ones((2, 3))
        assert unbroadcast(g, (2, 3)) is g

    def test_prepended_axes_summed(self):
        g = np.ones((4, 2, 3))
        np.testing.assert_allclose(unbroadcast(g, (2, 3)), 4 * np.ones((2, 3)))

    def test_stretched_axes_summed(self):
        g = np.ones((2, 3))
        np.testing.assert_allclose(unbroadcast(g, (1, 3)), [[2, 2, 2]])

    @given(
        st.integers(1, 4), st.integers(1, 4), st.integers(1, 3),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_sum_preserved(self, a, b, lead):
        g = np.ones((lead, a, b))
        reduced = unbroadcast(g, (1, b))
        assert reduced.shape == (1, b)
        assert reduced.sum() == pytest.approx(g.sum())


@given(
    st.lists(st.floats(-3, 3), min_size=2, max_size=8),
    st.lists(st.floats(-3, 3), min_size=2, max_size=8),
)
@settings(max_examples=50, deadline=None)
def test_property_add_grad_is_ones(xs, ys):
    n = min(len(xs), len(ys))
    a = Tensor(np.array(xs[:n]), requires_grad=True)
    b = Tensor(np.array(ys[:n]), requires_grad=True)
    (a + b).sum().backward()
    np.testing.assert_allclose(a.grad, np.ones(n))
    np.testing.assert_allclose(b.grad, np.ones(n))


@given(st.lists(st.floats(0.1, 3), min_size=1, max_size=6))
@settings(max_examples=50, deadline=None)
def test_property_exp_log_inverse(xs):
    x = np.array(xs)
    t = Tensor(x)
    np.testing.assert_allclose(t.exp().log().data, x, atol=1e-9)
