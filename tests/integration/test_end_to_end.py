"""Integration tests exercising the Fig. 1 architecture end to end (E7).

The full loop: train a staged model -> calibrate -> fit confidence curves ->
profile stage costs -> schedule inference under load -> verify that the
pieces agree with each other (simulator oracle vs real runtime, predictor vs
observed confidences, service facade vs direct module calls).
"""

import numpy as np
import pytest

from repro.datasets import SyntheticImageConfig, make_image_dataset
from repro.nn import StagedResNet, StagedResNetConfig
from repro.nn.training import collect_stage_outputs, train_staged_model
from repro.profiling import MobileDeviceCostModel, stage_execution_times
from repro.scheduler import (
    FIFOPolicy,
    GPConfidencePredictor,
    PoolSimulator,
    RTDeepIoTPolicy,
    RuntimeConfig,
    SimulationConfig,
    StagedInferenceRuntime,
    TaskOracle,
)
from repro.service import EugeneClient, EugeneService, InferRequest, TrainRequest


MODEL_CFG = StagedResNetConfig(
    num_classes=5, image_size=8, stage_channels=(4, 8, 12), blocks_per_stage=1, seed=0
)
DATA_CFG = SyntheticImageConfig(num_classes=5, image_size=8, seed=17)


@pytest.fixture(scope="module")
def pipeline():
    train_set = make_image_dataset(700, DATA_CFG, seed=0)
    test_set = make_image_dataset(300, DATA_CFG, seed=1)
    model = StagedResNet(MODEL_CFG)
    train_staged_model(model, train_set, epochs=8, lr=1e-2, seed=0)
    train_outputs = collect_stage_outputs(model, train_set)
    test_outputs = collect_stage_outputs(model, test_set)
    predictor = GPConfidencePredictor(num_classes=5, seed=0).fit(
        train_outputs["confidences"]
    )
    return model, train_set, test_set, train_outputs, test_outputs, predictor


class TestStagedPipelineCoherence:
    def test_stage_accuracy_increases_with_depth(self, pipeline):
        """Fig. 1's premise: later exits are more accurate."""
        *_, test_outputs, _ = pipeline
        accs = test_outputs["correct"].mean(axis=1)
        assert accs[-1] > accs[0]

    def test_confidence_predicts_correctness(self, pipeline):
        """Confidence must carry signal, or utility scheduling is noise."""
        *_, test_outputs, _ = pipeline
        conf = test_outputs["confidences"][-1]
        correct = test_outputs["correct"][-1]
        assert conf[correct].mean() > conf[~correct].mean() + 0.05

    def test_predictor_tracks_observed_curves(self, pipeline):
        """GP predictions of stage-3 confidence correlate with reality."""
        *_, test_outputs, predictor = pipeline
        observed_s1 = test_outputs["confidences"][0]
        observed_s3 = test_outputs["confidences"][-1]
        predicted = np.array(
            [predictor.predict(0, c, 2) for c in observed_s1[:200]]
        )
        corr = np.corrcoef(predicted, observed_s3[:200])[0, 1]
        assert corr > 0.2

    def test_profiled_stage_costs_feed_simulator(self, pipeline):
        model, *_ , test_outputs, predictor = pipeline
        times = stage_execution_times(model, MobileDeviceCostModel())
        oracles = TaskOracle.table_from_outputs(test_outputs)[:40]
        config = SimulationConfig(
            num_workers=2,
            concurrency=8,
            stage_times=tuple(times),
            latency_constraint=3 * sum(times),
        )
        result = PoolSimulator(oracles, RTDeepIoTPolicy(predictor, k=1), config).run()
        assert result.accuracy > 0.3
        assert result.num_tasks == 40


class TestSimulatorMatchesRuntime:
    def test_oracle_replay_equals_live_execution(self, pipeline):
        """The DES oracle path and the thread runtime agree on outcomes when
        nothing is evicted: same predictions, same confidences."""
        model, _, test_set, _, test_outputs, predictor = pipeline
        inputs = test_set.inputs[:6]
        runtime = StagedInferenceRuntime(
            model, FIFOPolicy(), RuntimeConfig(num_workers=1, latency_constraint=60.0)
        )
        runtime.submit(inputs)
        live = runtime.run_until_complete()
        for i, result in enumerate(live):
            for outcome in result.outcomes:
                assert outcome.confidence == pytest.approx(
                    test_outputs["confidences"][outcome.stage][i], abs=1e-9
                )
                assert outcome.prediction == test_outputs["predictions"][outcome.stage][i]


class TestServiceFacadeCoherence:
    def test_service_equals_direct_calls(self, pipeline):
        """Training through the service reproduces direct-module training."""
        _, train_set, test_set, *_ = pipeline
        service = EugeneService(seed=0)
        response = service.train(
            TrainRequest(
                inputs=train_set.inputs,
                labels=train_set.labels,
                model_config=MODEL_CFG,
                epochs=8,
                learning_rate=1e-2,
                name="it",
            )
        )
        entry = service.registry.get(response.model_id)
        direct = StagedResNet(MODEL_CFG)
        train_staged_model(direct, train_set, epochs=8, lr=1e-2, seed=0)
        a = entry.model.predict_proba(test_set.inputs[:16])[-1]
        b = direct.predict_proba(test_set.inputs[:16])[-1]
        np.testing.assert_allclose(a, b, atol=1e-8)

    def test_infer_under_pressure_degrades_gracefully(self, pipeline):
        """With a tight latency constraint some tasks run fewer stages but
        the service still returns an answer per task."""
        _, train_set, test_set, *_ = pipeline
        service = EugeneService(seed=0)
        response = service.train(
            TrainRequest(
                inputs=train_set.inputs,
                labels=train_set.labels,
                model_config=MODEL_CFG,
                epochs=2,
                name="fast",
            )
        )
        out = service.infer(
            InferRequest(
                model_id=response.model_id,
                inputs=test_set.inputs[:10],
                latency_constraint_s=0.25,
                num_workers=2,
            )
        )
        assert len(out.predictions) == 10
        assert max(out.stages_executed) <= 3
