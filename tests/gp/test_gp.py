"""Tests for GP regression and its piecewise-linear approximation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gp import (
    GPRegression,
    Matern52Kernel,
    PiecewiseLinear,
    RBFKernel,
    approximate_gp,
)


class TestKernels:
    def test_rbf_diagonal_is_signal_variance(self):
        k = RBFKernel(length_scale=0.3, signal_variance=2.0)
        x = np.array([[0.1], [0.5]])
        np.testing.assert_allclose(np.diag(k(x, x)), [2.0, 2.0])

    def test_rbf_decays_with_distance(self):
        k = RBFKernel(length_scale=0.2)
        near = k(np.array([[0.0]]), np.array([[0.1]]))[0, 0]
        far = k(np.array([[0.0]]), np.array([[0.9]]))[0, 0]
        assert near > far

    def test_matern_is_positive_and_symmetric(self):
        k = Matern52Kernel(length_scale=0.5)
        x = np.linspace(0, 1, 6)[:, None]
        gram = k(x, x)
        np.testing.assert_allclose(gram, gram.T, atol=1e-12)
        assert (np.linalg.eigvalsh(gram) > -1e-10).all()

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            RBFKernel(length_scale=0.0)
        with pytest.raises(ValueError):
            Matern52Kernel(signal_variance=-1.0)


class TestGPRegression:
    def test_interpolates_noiseless_function(self):
        x = np.linspace(0, 1, 12)
        y = np.sin(2 * np.pi * x)
        gp = GPRegression(RBFKernel(length_scale=0.25), noise=1e-6).fit(x, y)
        mean, _ = gp.predict(x)
        np.testing.assert_allclose(mean, y, atol=1e-3)

    def test_recovers_smooth_function_from_noisy_data(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 1, 120)
        y = x**2 + rng.normal(0, 0.03, size=120)
        gp = GPRegression(RBFKernel(length_scale=0.3), noise=1e-3).fit(x, y)
        grid = np.linspace(0.1, 0.9, 9)
        mean, _ = gp.predict(grid)
        np.testing.assert_allclose(mean, grid**2, atol=0.05)

    def test_uncertainty_grows_away_from_data(self):
        gp = GPRegression(RBFKernel(length_scale=0.1), noise=1e-4).fit(
            np.array([0.5]), np.array([1.0])
        )
        _, std_near = gp.predict(np.array([0.5]), return_std=True)
        _, std_far = gp.predict(np.array([0.0]), return_std=True)
        assert std_far[0] > std_near[0]

    def test_confidence_interval_contains_mean(self):
        gp = GPRegression().fit(np.linspace(0, 1, 10), np.linspace(0, 1, 10))
        lo, hi = gp.confidence_interval(np.array([0.3, 0.7]))
        mean, _ = gp.predict(np.array([0.3, 0.7]))
        assert (lo <= mean).all() and (mean <= hi).all()

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GPRegression().predict(np.array([0.0]))

    def test_fit_validates(self):
        with pytest.raises(ValueError):
            GPRegression().fit(np.array([0.0, 1.0]), np.array([0.0]))
        with pytest.raises(ValueError):
            GPRegression().fit(np.array([]), np.array([]))
        with pytest.raises(ValueError):
            GPRegression(noise=0.0)

    def test_grid_search_prefers_reasonable_length_scale(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(0, 1, 80)
        y = np.sin(2 * np.pi * x) + rng.normal(0, 0.05, 80)
        model = GPRegression.fit_with_grid_search(x, y)
        grid = np.linspace(0, 1, 20)
        mean, _ = model.predict(grid)
        np.testing.assert_allclose(mean, np.sin(2 * np.pi * grid), atol=0.2)

    def test_log_marginal_likelihood_finite(self):
        gp = GPRegression().fit(np.linspace(0, 1, 5), np.zeros(5))
        assert np.isfinite(gp.log_marginal_likelihood())

    @given(st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_property_posterior_mean_bounded_by_data_range(self, seed):
        """With zero-mean prior and smooth kernel, predictions on [0,1] stay
        within a modest envelope of the observed values."""
        rng = np.random.default_rng(seed)
        x = rng.uniform(0, 1, 15)
        y = rng.uniform(0.2, 0.8, 15)
        gp = GPRegression(RBFKernel(length_scale=0.3), noise=1e-2).fit(x, y)
        mean, _ = gp.predict(np.linspace(0, 1, 11))
        assert mean.min() > -0.5 and mean.max() < 1.5


class TestPiecewiseLinear:
    def test_interpolates_knots_exactly(self):
        pl = PiecewiseLinear(np.array([0.0, 0.5, 1.0]), np.array([0.0, 2.0, 1.0]))
        np.testing.assert_allclose(pl(np.array([0.0, 0.5, 1.0])), [0.0, 2.0, 1.0])

    def test_linear_between_knots(self):
        pl = PiecewiseLinear(np.array([0.0, 1.0]), np.array([0.0, 2.0]))
        assert pl(0.25) == pytest.approx(0.5)

    def test_clamps_outside_domain(self):
        pl = PiecewiseLinear(np.array([0.0, 1.0]), np.array([1.0, 3.0]))
        assert pl(-5.0) == pytest.approx(1.0)
        assert pl(5.0) == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PiecewiseLinear(np.array([0.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            PiecewiseLinear(np.array([0.0, 0.0]), np.array([1.0, 2.0]))

    def test_num_segments(self):
        pl = PiecewiseLinear(np.linspace(0, 1, 11), np.zeros(11))
        assert pl.num_segments == 10

    def test_rejects_non_finite_knots(self):
        # Regression: NaN/inf knots used to slip through and poison every
        # later evaluation; they must be refused at construction.
        with pytest.raises(ValueError, match="knots_x must be finite"):
            PiecewiseLinear(np.array([0.0, np.nan]), np.array([0.0, 1.0]))
        with pytest.raises(ValueError, match="knots_x must be finite"):
            PiecewiseLinear(np.array([0.0, np.inf]), np.array([0.0, 1.0]))
        with pytest.raises(ValueError, match="knots_y must be finite"):
            PiecewiseLinear(np.array([0.0, 1.0]), np.array([np.nan, 1.0]))
        with pytest.raises(ValueError, match="knots_y must be finite"):
            PiecewiseLinear(np.array([0.0, 1.0]), np.array([1.0, -np.inf]))


class TestApproximateGP:
    def test_close_to_gp_on_smooth_target(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(0, 1, 100)
        y = 0.3 + 0.6 * x + rng.normal(0, 0.02, 100)
        gp = GPRegression(RBFKernel(length_scale=0.3), noise=1e-3).fit(x, y)
        pl = approximate_gp(gp, num_points=10)
        grid = np.linspace(0, 1, 101)
        gp_mean, _ = gp.predict(grid)
        np.testing.assert_allclose(pl(grid), gp_mean, atol=0.02)

    def test_uses_m_plus_one_profiling_points(self):
        gp = GPRegression().fit(np.linspace(0, 1, 5), np.zeros(5))
        pl = approximate_gp(gp, num_points=10)
        assert len(pl.knots_x) == 11
        np.testing.assert_allclose(pl.knots_x, np.linspace(0, 1, 11))

    def test_is_much_faster_than_gp(self):
        import time

        x = np.random.default_rng(3).uniform(0, 1, 800)
        y = x.copy()
        gp = GPRegression(noise=1e-2).fit(x, y)
        pl = approximate_gp(gp)
        queries = np.random.default_rng(4).uniform(0, 1, 2000)
        t0 = time.perf_counter()
        gp.predict(queries)
        gp_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        pl(queries)
        pl_time = time.perf_counter() - t0
        assert pl_time < gp_time

    def test_validation(self):
        gp = GPRegression().fit(np.array([0.0, 1.0]), np.array([0.0, 1.0]))
        with pytest.raises(ValueError):
            approximate_gp(gp, num_points=0)
        with pytest.raises(ValueError):
            approximate_gp(gp, domain=(1.0, 0.0))

    def test_non_finite_domain_rejected(self):
        gp = GPRegression().fit(np.array([0.0, 1.0]), np.array([0.0, 1.0]))
        with pytest.raises(ValueError, match="finite"):
            approximate_gp(gp, domain=(0.0, np.inf))
        with pytest.raises(ValueError, match="finite"):
            approximate_gp(gp, domain=(np.nan, 1.0))

    def test_degenerate_gp_raises_a_clear_error(self):
        # Regression: a GP whose posterior went non-finite used to hand
        # NaN knots straight to PiecewiseLinear; the profiling step must
        # fail loudly and name the cause instead.
        class DegenerateGP:
            def predict(self, xs):
                return np.full_like(xs, np.nan), np.zeros_like(xs)

        with pytest.raises(ValueError, match="non-finite"):
            approximate_gp(DegenerateGP(), num_points=4)
