"""Tests for the SenseGAN-style labeling service."""

import numpy as np
import pytest

from repro.datasets import SyntheticImageConfig, SyntheticImageGenerator
from repro.labeling import (
    SenseGANConfig,
    SenseGANLabeler,
    self_training_labels,
)
from repro.nn import Dataset


@pytest.fixture(scope="module")
def pools():
    """A small labeled pool and a larger unlabeled pool of easy images."""
    cfg = SyntheticImageConfig(num_classes=4, image_size=8, seed=5, occlusion_prob=0.0)
    gen = SyntheticImageGenerator(cfg)
    rng = np.random.default_rng(0)
    xl, yl, _ = gen.sample(60, rng, difficulty=np.full(60, 0.15))
    xu, yu, _ = gen.sample(300, rng, difficulty=np.full(300, 0.15))
    return Dataset(xl, yl), xu, yu


class TestSenseGANLabeler:
    @pytest.fixture(scope="class")
    def fitted(self, pools):
        labeled, xu, yu = pools
        labeler = SenseGANLabeler(
            num_classes=4,
            input_dim=3 * 8 * 8,
            config=SenseGANConfig(rounds=80, seed=0),
        )
        labeler.fit(labeled, xu)
        return labeler, labeled, xu, yu

    def test_pseudo_labels_beat_chance_substantially(self, fitted):
        labeler, _, xu, yu = fitted
        labels, confidences = labeler.propose_labels(xu)
        acc = float((labels == yu).mean())
        assert acc > 0.5  # chance is 0.25
        assert ((confidences > 0) & (confidences <= 1)).all()

    def test_history_recorded(self, fitted):
        labeler, *_ = fitted
        assert len(labeler.history) == 80
        assert {"supervised_loss", "discriminator_loss", "adversarial_loss"} <= set(
            labeler.history[0]
        )

    def test_report(self, fitted):
        labeler, labeled, xu, yu = fitted
        report = labeler.report(xu, yu, num_labeled=len(labeled))
        assert report.num_unlabeled == len(xu)
        assert 0 <= report.pseudo_label_accuracy <= 1
        assert 0 < report.mean_confidence <= 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SenseGANConfig(rounds=0)
        with pytest.raises(ValueError):
            SenseGANConfig(adversarial_weight=-1.0)
        with pytest.raises(ValueError):
            SenseGANLabeler(num_classes=1, input_dim=10)

    def test_dim_mismatch_raises(self, pools):
        labeled, xu, _ = pools
        labeler = SenseGANLabeler(num_classes=4, input_dim=7)
        with pytest.raises(ValueError):
            labeler.fit(labeled, xu)


class TestSelfTraining:
    def test_labels_beat_chance(self, pools):
        labeled, xu, yu = pools
        labels, confidences = self_training_labels(labeled, xu, num_classes=4, seed=0)
        assert float((labels == yu).mean()) > 0.5
        assert confidences.shape == (len(xu),)

    def test_threshold_abstains(self, pools):
        labeled, xu, _ = pools
        labels, confidences = self_training_labels(
            labeled, xu, num_classes=4, confidence_threshold=0.999, seed=0
        )
        assert (labels[confidences < 0.999] == -1).all()

    def test_downstream_benefit_of_pseudo_labels(self, pools):
        """Training on labeled + pseudo-labeled data beats labeled-only —
        the claim motivating the labeling service."""
        from repro.nn import Adam as _Adam, Dense, ReLU, Sequential, Tensor, cross_entropy

        labeled, xu, yu = pools
        cfg = SyntheticImageConfig(num_classes=4, image_size=8, seed=5, occlusion_prob=0.0)
        gen = SyntheticImageGenerator(cfg)
        xt, yt, _ = gen.sample(300, np.random.default_rng(99),
                               difficulty=np.full(300, 0.15))

        def train_mlp(x, y, seed=1, epochs=150):
            rng = np.random.default_rng(seed)
            net = Sequential(Dense(192, 64, rng=rng), ReLU(), Dense(64, 4, rng=rng))
            opt = _Adam(net.parameters(), lr=1e-3)
            flat = x.reshape(len(x), -1)
            for _ in range(epochs):
                idx = rng.choice(len(flat), size=min(64, len(flat)), replace=False)
                loss = cross_entropy(net(Tensor(flat[idx])), y[idx])
                opt.zero_grad()
                loss.backward()
                opt.step()
            preds = net(Tensor(xt.reshape(len(xt), -1))).data.argmax(-1)
            return float((preds == yt).mean())

        base_acc = train_mlp(labeled.inputs, labeled.labels)
        pseudo, _ = self_training_labels(labeled, xu, num_classes=4, seed=0)
        aug_x = np.concatenate([labeled.inputs, xu])
        aug_y = np.concatenate([labeled.labels, pseudo])
        aug_acc = train_mlp(aug_x, aug_y)
        assert aug_acc >= base_acc - 0.02  # pseudo labels must not hurt...
        # ... and typically help; require a modest absolute level too.
        assert aug_acc > 0.5
