"""Tests for task records / views / stage outcomes."""

import pytest

from repro.scheduler import StageOutcome, TaskRecord


def make_record(num_stages=3, deadline=10.0):
    return TaskRecord(task_id=0, arrival_time=0.0, deadline=deadline, num_stages=num_stages)


class TestStageOutcome:
    def test_valid(self):
        o = StageOutcome(stage=0, prediction=3, confidence=0.7, correct=True)
        assert o.confidence == 0.7

    def test_confidence_bounds(self):
        with pytest.raises(ValueError):
            StageOutcome(stage=0, prediction=0, confidence=1.5)
        with pytest.raises(ValueError):
            StageOutcome(stage=0, prediction=0, confidence=-0.1)

    def test_negative_stage(self):
        with pytest.raises(ValueError):
            StageOutcome(stage=-1, prediction=0, confidence=0.5)


class TestTaskRecord:
    def test_validation(self):
        with pytest.raises(ValueError):
            TaskRecord(task_id=0, arrival_time=5.0, deadline=5.0, num_stages=3)
        with pytest.raises(ValueError):
            TaskRecord(task_id=0, arrival_time=0.0, deadline=1.0, num_stages=0)

    def test_progression(self):
        r = make_record()
        assert r.next_stage == 0
        assert not r.complete
        r.outcomes.append(StageOutcome(0, 1, 0.5, True))
        assert r.next_stage == 1
        assert r.latest_confidence == 0.5
        r.outcomes.append(StageOutcome(1, 1, 0.7, True))
        r.outcomes.append(StageOutcome(2, 1, 0.9, True))
        assert r.complete
        assert r.next_stage is None

    def test_final_correct_uses_last_stage(self):
        r = make_record()
        r.outcomes.append(StageOutcome(0, 1, 0.5, True))
        r.outcomes.append(StageOutcome(1, 2, 0.6, False))
        assert r.final_correct is False

    def test_no_stages_counts_incorrect(self):
        assert make_record().final_correct is False

    def test_evicted_is_done(self):
        r = make_record()
        r.evicted = True
        assert r.done and not r.complete

    def test_view_snapshot(self):
        r = make_record()
        r.outcomes.append(StageOutcome(0, 1, 0.4, True))
        v = r.view()
        assert v.stages_done == 1
        assert v.confidences == (0.4,)
        assert v.latest_confidence == 0.4
        assert v.next_stage == 1
        assert v.remaining_time(2.0) == 8.0
        # Mutating the record does not change the view.
        r.outcomes.append(StageOutcome(1, 1, 0.8, True))
        assert v.stages_done == 1
