"""Pinned-result regression tests for the simulator's deque hot loops.

The backlog and timeline used ``list.pop(0)`` — O(n) per admission /
work item — and were replaced with ``collections.deque.popleft()``.  The
numbers below were produced by the pre-change implementation (captured
verbatim from the seed revision); the deque version must reproduce them
exactly, proving the fix is a pure data-structure swap with no behaviour
change.
"""

import numpy as np
import pytest

from repro.scheduler.policies import FIFOPolicy, RoundRobinPolicy
from repro.scheduler.simulator import PoolSimulator, SimulationConfig, TaskOracle


def _make_oracles(rng, n, stages=3):
    oracles = []
    for _ in range(n):
        confs = np.sort(rng.uniform(0.3, 0.99, size=stages))
        preds = rng.integers(0, 5, size=stages)
        correct = rng.random(size=stages) < confs
        oracles.append(
            TaskOracle(
                confidences=tuple(float(c) for c in confs),
                predictions=tuple(int(p) for p in preds),
                correct=tuple(bool(c) for c in correct),
            )
        )
    return oracles


class TestSimulatorResultsUnchangedByDequeSwap:
    """Expected values captured from the list.pop(0) implementation."""

    def test_closed_loop_episode_pinned(self):
        rng = np.random.default_rng(7)
        oracles = _make_oracles(rng, 24)
        config = SimulationConfig(
            num_workers=3,
            concurrency=6,
            stage_times=(1.0, 1.5, 0.5),
            latency_constraint=5.0,
            stage_failure_prob=0.1,
            failure_seed=3,
        )
        result = PoolSimulator(oracles, RoundRobinPolicy(), config).run()
        # Re-pinned after the RoundRobin cursor fix: the old positional
        # cursor skewed the rotation whenever the runnable set shrank,
        # double-serving some tasks while starving others.  The id-based
        # rotation serves the same episode strictly better (13 vs 15
        # evictions, 11 vs 9 full completions).
        assert result.accuracy == pytest.approx(0.7083333333333334)
        assert result.makespan == pytest.approx(20.0)
        assert result.busy_time == pytest.approx(59.0)
        assert result.num_evicted == 13
        assert result.num_fully_completed == 11
        assert list(result.stages_executed) == [
            1, 3, 3, 3, 1, 1, 3, 3, 3, 3, 1, 0, 3, 3, 1, 2, 2, 2, 2, 3, 3, 2, 2, 1,
        ]
        assert result.mean_final_confidence == pytest.approx(
            0.7120927951304812, abs=1e-9
        )

    def test_open_loop_episode_pinned(self):
        # Exact RNG consumption order of the capture run: 24 oracles, then
        # arrivals, then constraints, then the 24 oracles actually used.
        rng = np.random.default_rng(7)
        _make_oracles(rng, 24)
        arrivals = [float(a) for a in np.round(rng.uniform(0, 12, size=24), 3)]
        constraints = [float(c) for c in np.round(rng.uniform(2.0, 6.0, size=24), 3)]
        oracles = _make_oracles(rng, 24)
        config = SimulationConfig(
            num_workers=2,
            concurrency=4,
            stage_times=(1.0, 1.0, 1.0),
            latency_constraint=4.0,
        )
        result = PoolSimulator(
            oracles,
            FIFOPolicy(),
            config,
            task_latency_constraints=constraints,
            arrival_times=arrivals,
        ).run()
        assert result.accuracy == pytest.approx(0.125)
        assert result.makespan == pytest.approx(16.404)
        assert result.busy_time == pytest.approx(20.0)
        assert result.num_evicted == 20
        assert result.num_fully_completed == 4
        assert list(result.stages_executed) == [
            1, 0, 1, 3, 0, 0, 0, 3, 0, 0, 2, 0, 2, 1, 0, 0, 3, 0, 0, 3, 0, 0, 1, 0,
        ]
        assert result.mean_final_confidence == pytest.approx(
            0.617495992775, abs=1e-9
        )
