"""Tests for the thread-based real-time inference runtime."""

import numpy as np
import pytest

from repro.datasets import SyntheticImageConfig, make_image_dataset
from repro.nn import StagedResNet, StagedResNetConfig, train_staged_model
from repro.nn.training import collect_stage_outputs
from repro.scheduler import (
    FIFOPolicy,
    GPConfidencePredictor,
    RoundRobinPolicy,
    RTDeepIoTPolicy,
    RuntimeConfig,
    StagedInferenceRuntime,
)


TINY = StagedResNetConfig(
    num_classes=4, image_size=8, stage_channels=(4, 8), blocks_per_stage=1, seed=0
)


@pytest.fixture(scope="module")
def served_model():
    cfg = SyntheticImageConfig(num_classes=4, image_size=8, seed=3)
    train_set = make_image_dataset(400, cfg, seed=0)
    model = StagedResNet(TINY)
    train_staged_model(model, train_set, epochs=6, batch_size=32, lr=1e-2)
    outputs = collect_stage_outputs(model, train_set)
    predictor = GPConfidencePredictor(num_classes=4, seed=0).fit(outputs["confidences"])
    test_set = make_image_dataset(12, cfg, seed=9)
    return model, predictor, test_set


class TestRuntimeConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            RuntimeConfig(num_workers=0)
        with pytest.raises(ValueError):
            RuntimeConfig(latency_constraint=0.0)


class TestStagedInferenceRuntime:
    def test_serves_all_tasks_fully_with_loose_deadline(self, served_model):
        model, predictor, test_set = served_model
        runtime = StagedInferenceRuntime(
            model,
            RTDeepIoTPolicy(predictor, k=1),
            RuntimeConfig(num_workers=2, latency_constraint=60.0),
        )
        ids = runtime.submit(test_set.inputs[:6])
        results = runtime.run_until_complete()
        assert [r.task_id for r in results] == ids
        assert all(not r.evicted for r in results)
        assert all(len(r.outcomes) == model.num_stages for r in results)
        for r in results:
            assert r.prediction is not None
            assert 0.0 < r.confidence <= 1.0

    def test_results_match_offline_model(self, served_model):
        """Stage outputs produced by the runtime equal a direct forward pass."""
        model, predictor, test_set = served_model
        runtime = StagedInferenceRuntime(
            model, FIFOPolicy(), RuntimeConfig(num_workers=1, latency_constraint=60.0)
        )
        runtime.submit(test_set.inputs[:3])
        results = runtime.run_until_complete()
        probs = model.predict_proba(test_set.inputs[:3])
        for i, r in enumerate(results):
            for outcome in r.outcomes:
                expected = probs[outcome.stage][i]
                assert outcome.prediction == int(expected.argmax())
                assert outcome.confidence == pytest.approx(float(expected.max()))

    def test_tight_deadline_evicts_some_tasks(self, served_model):
        model, predictor, test_set = served_model
        runtime = StagedInferenceRuntime(
            model,
            RoundRobinPolicy(),
            RuntimeConfig(num_workers=1, latency_constraint=0.002, daemon_interval=0.0005),
        )
        runtime.submit(test_set.inputs[:12])
        results = runtime.run_until_complete()
        assert any(r.evicted for r in results)
        # Evicted tasks may have partial (or zero) outcomes, never more than all.
        assert all(len(r.outcomes) <= model.num_stages for r in results)

    def test_empty_submit_returns_empty(self, served_model):
        model, predictor, _ = served_model
        runtime = StagedInferenceRuntime(model, FIFOPolicy())
        assert runtime.run_until_complete() == []

    def test_submit_validates_shape(self, served_model):
        model, *_ = served_model
        runtime = StagedInferenceRuntime(model, FIFOPolicy())
        with pytest.raises(ValueError):
            runtime.submit(np.zeros((3, 8, 8)))
