"""Tests for service classes, class-aware scheduling and pricing (Sec. V)."""

import numpy as np
import pytest

from repro.scheduler import (
    BATCH,
    INTERACTIVE,
    ClassAwareRTDeepIoTPolicy,
    FIFOPolicy,
    GPConfidencePredictor,
    PoolSimulator,
    PricingModel,
    RTDeepIoTPolicy,
    ServiceClass,
    SimulationConfig,
    TaskOracle,
    TaskView,
    assign_classes,
)
from repro.scheduler.task import StageOutcome, TaskRecord


def make_oracles(n, seed=0):
    rng = np.random.default_rng(seed)
    oracles = []
    for _ in range(n):
        c1 = rng.uniform(0.12, 0.92)
        c2 = c1 + 0.5 * (0.97 - c1)
        c3 = c2 + 0.5 * (0.97 - c2)
        confs = np.clip([c1, c2, c3], 0, 1)
        oracles.append(
            TaskOracle(
                confidences=tuple(float(c) for c in confs),
                predictions=(0, 0, 0),
                correct=tuple(bool(rng.random() < c) for c in confs),
            )
        )
    return oracles


def fitted_predictor(oracles):
    mat = np.array([o.confidences for o in oracles]).T
    return GPConfidencePredictor(num_classes=10, seed=0).fit(mat)


class TestServiceClass:
    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceClass("x", latency_constraint=0.0)
        with pytest.raises(ValueError):
            ServiceClass("x", latency_constraint=1.0, weight=0.0)
        with pytest.raises(ValueError):
            ServiceClass("x", latency_constraint=1.0, price_per_stage=-1.0)

    def test_builtin_classes(self):
        assert INTERACTIVE.latency_constraint < BATCH.latency_constraint
        assert INTERACTIVE.weight > BATCH.weight


class TestAssignClasses:
    def test_mix_fractions(self):
        classes = assign_classes(1000, [INTERACTIVE, BATCH], [0.3, 0.7], seed=0)
        frac = sum(1 for c in classes if c is INTERACTIVE) / 1000
        assert frac == pytest.approx(0.3, abs=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            assign_classes(10, [INTERACTIVE], [0.5])
        with pytest.raises(ValueError):
            assign_classes(10, [], [])


class TestClassAwarePolicy:
    def view(self, task_id, deadline, stages_done=0, confs=()):
        return TaskView(
            task_id=task_id, arrival_time=0.0, deadline=deadline,
            num_stages=3, stages_done=stages_done, confidences=tuple(confs),
        )

    def test_weight_breaks_ties(self):
        oracles = make_oracles(50)
        predictor = fitted_predictor(oracles)
        classes = {0: BATCH, 1: INTERACTIVE}
        policy = ClassAwareRTDeepIoTPolicy(predictor, classes, k=1, urgency=0.0)
        # Identical scheduling state; only class weight differs.
        tasks = [self.view(0, 12.0), self.view(1, 12.0)]
        assert policy.plan(tasks, 0.0) == [(1, 0)]

    def test_urgency_prefers_tight_deadline(self):
        oracles = make_oracles(50)
        predictor = fitted_predictor(oracles)
        classes = {0: INTERACTIVE, 1: INTERACTIVE}
        policy = ClassAwareRTDeepIoTPolicy(predictor, classes, k=1, urgency=5.0)
        relaxed = self.view(0, deadline=100.0)
        urgent = self.view(1, deadline=1.0)
        assert policy.plan([relaxed, urgent], now=0.0) == [(1, 0)]

    def test_validation(self):
        oracles = make_oracles(10)
        predictor = fitted_predictor(oracles)
        with pytest.raises(ValueError):
            ClassAwareRTDeepIoTPolicy(predictor, {}, k=0)
        with pytest.raises(ValueError):
            ClassAwareRTDeepIoTPolicy(predictor, {}, urgency=-1.0)

    def test_class_aware_meets_more_interactive_deadlines(self):
        """Under load, the class-aware policy serves more interactive tasks
        than the class-blind one (the Sec. V motivation)."""
        oracles = make_oracles(120, seed=3)
        predictor = fitted_predictor(oracles)
        class_list = assign_classes(len(oracles), [INTERACTIVE, BATCH],
                                    [0.5, 0.5], seed=1)
        class_map = {i: c for i, c in enumerate(class_list)}
        constraints = [c.latency_constraint for c in class_list]
        config = SimulationConfig(num_workers=2, concurrency=14,
                                  stage_times=(1, 1, 1), latency_constraint=8.0)

        def interactive_served(policy):
            sim = PoolSimulator(oracles, policy, config,
                                task_latency_constraints=constraints)
            result = sim.run()
            return sum(
                1 for r in result.records
                if class_map[r.task_id] is INTERACTIVE and r.stages_done > 0
            )

        aware = interactive_served(
            ClassAwareRTDeepIoTPolicy(predictor, class_map, k=1, urgency=2.0)
        )
        blind = interactive_served(RTDeepIoTPolicy(predictor, k=1))
        assert aware >= blind


class TestSimulatorPerTaskConstraints:
    def test_constraints_respected(self):
        oracles = make_oracles(4)
        constraints = [1.5, 50.0, 50.0, 50.0]
        config = SimulationConfig(num_workers=1, concurrency=4,
                                  stage_times=(1, 1, 1), latency_constraint=99.0)
        sim = PoolSimulator(oracles, FIFOPolicy(), config,
                            task_latency_constraints=constraints)
        result = sim.run()
        # Task 0 (deadline 1.5 with 1 worker shared) can complete at most 1 stage.
        assert result.records[0].stages_done <= 1
        assert result.records[1].stages_done == 3

    def test_validation(self):
        oracles = make_oracles(2)
        with pytest.raises(ValueError):
            PoolSimulator(oracles, FIFOPolicy(), SimulationConfig(),
                          task_latency_constraints=[1.0])
        with pytest.raises(ValueError):
            PoolSimulator(oracles, FIFOPolicy(), SimulationConfig(),
                          task_latency_constraints=[1.0, -1.0])


class TestPricingModel:
    def record(self, task_id, stages, evicted=False):
        r = TaskRecord(task_id=task_id, arrival_time=0.0, deadline=10.0, num_stages=3)
        for s in range(stages):
            r.outcomes.append(StageOutcome(stage=s, prediction=0, confidence=0.5))
        r.evicted = evicted
        return r

    def test_bills_by_class_rate(self):
        classes = {0: INTERACTIVE, 1: BATCH}
        pricing = PricingModel(classes)
        bills = pricing.bill([self.record(0, 2), self.record(1, 3)])
        assert bills["interactive"].revenue == pytest.approx(2 * 3.0)
        assert bills["batch"].revenue == pytest.approx(3 * 1.0)
        assert bills["interactive"].served_tasks == 1

    def test_no_answer_no_charge(self):
        pricing = PricingModel({0: INTERACTIVE})
        bills = pricing.bill([self.record(0, 0, evicted=True)])
        assert bills["interactive"].revenue == 0.0
        assert bills["interactive"].evicted_unserved == 1

    def test_default_class_applies(self):
        pricing = PricingModel({}, default_class=BATCH)
        bills = pricing.bill([self.record(7, 1)])
        assert "batch" in bills
