"""Micro-batched stage serving: batch formation and end-to-end equivalence.

``form_batch`` is a pure function called under the scheduler lock, so its
invariants — evicted/done/in-flight tasks never join a batch, other-stage
work keeps its timeline position — can be tested directly.  The runtime
tests then confirm that batching is purely an execution-layer optimisation:
same predictions and same per-task stage counts as the unbatched runtime.
"""

from collections import deque

import numpy as np
import pytest

from repro.nn.resnet import StagedResNet, StagedResNetConfig
from repro.scheduler.policies import FIFOPolicy, RoundRobinPolicy
from repro.scheduler.runtime import (
    RuntimeConfig,
    StagedInferenceRuntime,
    form_batch,
)
from repro.scheduler.task import StageOutcome, TaskRecord


def _record(tid, stages_done=0, num_stages=3, evicted=False):
    record = TaskRecord(
        task_id=tid, arrival_time=0.0, deadline=10.0, num_stages=num_stages
    )
    for s in range(stages_done):
        record.outcomes.append(StageOutcome(stage=s, prediction=0, confidence=0.5))
    record.evicted = evicted
    return record


class TestFormBatch:
    def test_coalesces_same_stage(self):
        records = {i: _record(i) for i in range(4)}
        timeline = deque([(0, 0), (1, 0), (2, 0), (3, 0)])
        batch, stage, rest = form_batch(timeline, records, {}, 4)
        assert batch == [0, 1, 2, 3]
        assert stage == 0
        assert not rest

    def test_respects_max_batch(self):
        records = {i: _record(i) for i in range(4)}
        timeline = deque([(i, 0) for i in range(4)])
        batch, stage, rest = form_batch(timeline, records, {}, 2)
        assert batch == [0, 1]
        assert list(rest) == [(2, 0), (3, 0)]

    def test_other_stage_entries_keep_position(self):
        records = {0: _record(0), 1: _record(1, stages_done=1), 2: _record(2)}
        timeline = deque([(0, 0), (1, 1), (2, 0)])
        batch, stage, rest = form_batch(timeline, records, {}, 4)
        assert batch == [0, 2]
        assert stage == 0
        assert list(rest) == [(1, 1)]

    def test_evicted_task_never_joins_batch(self):
        records = {0: _record(0), 1: _record(1, evicted=True), 2: _record(2)}
        timeline = deque([(0, 0), (1, 0), (2, 0)])
        batch, _, rest = form_batch(timeline, records, {}, 4)
        assert batch == [0, 2]
        assert 1 not in batch
        assert (1, 0) not in rest  # dropped, not deferred

    def test_completed_task_is_dropped(self):
        records = {0: _record(0, stages_done=3), 1: _record(1)}
        timeline = deque([(0, 0), (1, 0)])
        batch, _, _ = form_batch(timeline, records, {}, 4)
        assert batch == [1]

    def test_in_flight_task_is_dropped(self):
        records = {0: _record(0), 1: _record(1)}
        timeline = deque([(0, 0), (1, 0)])
        batch, _, rest = form_batch(timeline, records, {0: 0}, 4)
        assert batch == [1]
        assert not rest

    def test_stale_stage_entry_is_dropped(self):
        # Task 0 already finished stage 0; a leftover (0, 0) entry is stale.
        records = {0: _record(0, stages_done=1), 1: _record(1)}
        timeline = deque([(0, 0), (1, 0)])
        batch, stage, rest = form_batch(timeline, records, {}, 4)
        assert batch == [1]
        assert stage == 0
        assert not rest

    def test_duplicate_task_entries_join_once(self):
        records = {0: _record(0)}
        timeline = deque([(0, 0), (0, 0)])
        batch, _, rest = form_batch(timeline, records, {}, 4)
        assert batch == [0]
        assert not rest

    def test_empty_timeline(self):
        batch, stage, rest = form_batch(deque(), {}, {}, 4)
        assert batch == [] and stage is None and not rest


@pytest.fixture(scope="module")
def small_model():
    model = StagedResNet(
        StagedResNetConfig(
            num_classes=5, image_size=8, stage_channels=(4, 8), blocks_per_stage=1
        )
    )
    model.eval()
    return model


@pytest.fixture(scope="module")
def inputs():
    return np.random.default_rng(0).normal(size=(10, 3, 8, 8))


def _serve(model, policy, inputs, **config):
    runtime = StagedInferenceRuntime(
        model, policy, RuntimeConfig(num_workers=2, latency_constraint=60.0, **config)
    )
    runtime.submit(inputs)
    return runtime.run_until_complete(), list(runtime.batch_log)


class TestBatchedRuntimeEquivalence:
    @pytest.mark.parametrize("policy_cls", [FIFOPolicy, RoundRobinPolicy])
    def test_same_predictions_and_stage_counts(self, small_model, inputs, policy_cls):
        base, base_log = _serve(small_model, policy_cls(), inputs, max_batch=1)
        batched, batched_log = _serve(
            small_model, policy_cls(), inputs, max_batch=4, drain_window=0.01
        )
        assert [r.prediction for r in base] == [r.prediction for r in batched]
        assert [len(r.outcomes) for r in base] == [len(r.outcomes) for r in batched]
        assert not any(r.evicted for r in batched)
        # Confidences agree to float accumulation order (BLAS reduces a
        # batch of 4 in a different order than 4 batches of 1).
        np.testing.assert_allclose(
            [r.confidence for r in base], [r.confidence for r in batched]
        )
        assert all(len(tids) == 1 for _, tids in base_log)
        assert any(len(tids) > 1 for _, tids in batched_log)
        assert all(len(tids) <= 4 for _, tids in batched_log)

    def test_all_stages_served(self, small_model, inputs):
        results, log = _serve(
            small_model, RoundRobinPolicy(), inputs, max_batch=4, drain_window=0.01
        )
        for r in results:
            assert not r.evicted
            assert [o.stage for o in r.outcomes] == list(range(small_model.num_stages))
        # Every (task, stage) pair appears in exactly one dispatched batch.
        served = [(tid, stage) for stage, tids in log for tid in tids]
        assert sorted(served) == sorted(
            (tid, s) for tid in range(len(inputs)) for s in range(small_model.num_stages)
        )

    def test_batches_are_single_stage(self, small_model, inputs):
        _, log = _serve(
            small_model, RoundRobinPolicy(), inputs, max_batch=4, drain_window=0.01
        )
        for stage, tids in log:
            assert len(set(tids)) == len(tids)  # no task twice in one batch

    def test_evicted_tasks_never_in_later_batches(self, small_model, inputs):
        """Under an impossible deadline, dispatched batches must only ever
        contain tasks that were live at formation time; an evicted task may
        finish an in-flight stage but never join a *new* batch."""
        runtime = StagedInferenceRuntime(
            small_model,
            RoundRobinPolicy(),
            RuntimeConfig(
                num_workers=2,
                latency_constraint=0.03,
                daemon_interval=0.001,
                max_batch=4,
                drain_window=0.005,
            ),
        )
        runtime.submit(np.asarray(inputs))
        results = runtime.run_until_complete()
        evicted = {r.task_id for r in results if r.evicted}
        # The run is timing-dependent, but the accounting must always hold:
        # a task's executed stages are exactly the batches it was part of.
        per_task = {r.task_id: [o.stage for o in r.outcomes] for r in results}
        dispatched = {tid: [] for tid in per_task}
        for stage, tids in runtime.batch_log:
            for tid in tids:
                dispatched[tid].append(stage)
        for tid, stages in per_task.items():
            # Executed stages are a prefix of dispatched ones (a final
            # dispatched stage may have been discarded post-eviction).
            assert dispatched[tid][: len(stages)] == stages
            if tid not in evicted:
                assert dispatched[tid] == stages

    def test_unbatched_default_config_unchanged(self, small_model, inputs):
        results, log = _serve(small_model, FIFOPolicy(), inputs[:4])
        assert all(len(tids) == 1 for _, tids in log)
        assert all(not r.evicted for r in results)
