"""Tests for the discrete-event worker-pool simulator."""

import numpy as np
import pytest

from repro.scheduler import (
    ConstantSlopePredictor,
    FIFOPolicy,
    GPConfidencePredictor,
    PoolSimulator,
    RoundRobinPolicy,
    RTDeepIoTPolicy,
    SimulationConfig,
    TaskOracle,
)
from repro.scheduler.simulator import run_episodes


def simple_oracle(confs=(0.4, 0.6, 0.9), correct=(False, True, True)):
    return TaskOracle(
        confidences=tuple(confs),
        predictions=tuple(1 for _ in confs),
        correct=tuple(correct),
    )


def make_oracles(n, seed=0):
    """Synthetic population with concave confidence curves: each stage closes
    half of the remaining gap to 0.97 (easy samples saturate early, hard ones
    keep gaining — the shape real staged classifiers produce).  Correctness
    is sampled from the (calibrated) confidence."""
    rng = np.random.default_rng(seed)
    oracles = []
    for _ in range(n):
        c1 = rng.uniform(0.12, 0.92)
        c2 = c1 + 0.5 * (0.97 - c1)
        c3 = c2 + 0.5 * (0.97 - c2)
        confs = np.clip([c1, c2, c3], 0.0, 1.0)
        correct = tuple(bool(rng.random() < c) for c in confs)
        oracles.append(
            TaskOracle(
                confidences=tuple(float(c) for c in confs),
                predictions=(0, 0, 0),
                correct=correct,
            )
        )
    return oracles


def fitted_predictor(oracles):
    mat = np.array([o.confidences for o in oracles]).T
    return GPConfidencePredictor(num_classes=10, seed=0).fit(mat)


class TestTaskOracle:
    def test_validation(self):
        with pytest.raises(ValueError):
            TaskOracle(confidences=(0.5,), predictions=(1, 2), correct=(True,))
        with pytest.raises(ValueError):
            TaskOracle(confidences=(), predictions=(), correct=())

    def test_table_from_outputs(self):
        outputs = {
            "confidences": np.array([[0.3, 0.4], [0.6, 0.7]]),
            "predictions": np.array([[1, 2], [1, 3]]),
            "correct": np.array([[True, False], [True, True]]),
        }
        table = TaskOracle.table_from_outputs(outputs)
        assert len(table) == 2
        assert table[0].confidences == (0.3, 0.6)
        assert table[1].predictions == (2, 3)


class TestSimulationConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_workers": 0},
            {"concurrency": 0},
            {"latency_constraint": 0.0},
            {"stage_times": (1.0, -1.0, 1.0)},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            SimulationConfig(**kwargs)


class TestPoolSimulator:
    def test_plenty_of_capacity_runs_everything(self):
        oracles = [simple_oracle() for _ in range(4)]
        cfg = SimulationConfig(
            num_workers=4, concurrency=4, stage_times=(1, 1, 1), latency_constraint=100.0
        )
        result = PoolSimulator(oracles, FIFOPolicy(), cfg).run()
        assert result.num_fully_completed == 4
        assert result.accuracy == 1.0
        assert (result.stages_executed == 3).all()
        assert result.num_evicted == 0

    def test_tight_deadline_evicts(self):
        oracles = [simple_oracle() for _ in range(4)]
        cfg = SimulationConfig(
            num_workers=1, concurrency=4, stage_times=(1, 1, 1), latency_constraint=3.0
        )
        result = PoolSimulator(oracles, FIFOPolicy(), cfg).run()
        # One worker, 3s deadline: only the first task completes.
        assert result.num_fully_completed == 1
        assert result.num_evicted == 3

    def test_stage_oracle_outcomes_recorded(self):
        oracle = simple_oracle(confs=(0.2, 0.5, 0.8), correct=(False, False, True))
        cfg = SimulationConfig(num_workers=1, concurrency=1,
                               stage_times=(1, 1, 1), latency_constraint=10.0)
        result = PoolSimulator([oracle], FIFOPolicy(), cfg).run()
        record = result.records[0]
        assert [o.confidence for o in record.outcomes] == [0.2, 0.5, 0.8]
        assert record.final_correct is True

    def test_zero_stage_task_counts_wrong(self):
        """With an impossible deadline no stage runs and accuracy is 0."""
        oracle = simple_oracle()
        cfg = SimulationConfig(num_workers=1, concurrency=1,
                               stage_times=(5.0, 5.0, 5.0), latency_constraint=1.0)
        result = PoolSimulator([oracle], FIFOPolicy(), cfg).run()
        assert result.accuracy == 0.0
        assert result.records[0].stages_done == 0

    def test_skip_doomed_stages_saves_capacity(self):
        """When a stage cannot meet its deadline the worker moves on."""
        oracles = [simple_oracle() for _ in range(3)]
        cfg = SimulationConfig(num_workers=1, concurrency=3,
                               stage_times=(1, 1, 1), latency_constraint=2.0)
        result = PoolSimulator(oracles, RoundRobinPolicy(), cfg).run()
        # Deadline of 2 with 1 worker: 2 stage-slots exist before eviction
        # begins freeing slots for newly... all tasks admitted at t=0, so only
        # 2 stages total can run before t=2.
        assert result.stages_executed.sum() == 2

    def test_makespan_and_utilization(self):
        oracles = [simple_oracle() for _ in range(2)]
        cfg = SimulationConfig(num_workers=2, concurrency=2,
                               stage_times=(1, 1, 1), latency_constraint=50.0)
        result = PoolSimulator(oracles, RoundRobinPolicy(), cfg).run()
        assert result.makespan == pytest.approx(3.0)
        assert result.utilization == pytest.approx(1.0)

    def test_mismatched_stage_times_raise(self):
        with pytest.raises(ValueError):
            PoolSimulator(
                [simple_oracle()],
                FIFOPolicy(),
                SimulationConfig(stage_times=(1.0,)),
            )

    def test_empty_oracles_raise(self):
        with pytest.raises(ValueError):
            PoolSimulator([], FIFOPolicy())

    def test_deterministic_given_same_inputs(self):
        oracles = make_oracles(30)
        cfg = SimulationConfig(num_workers=2, concurrency=10,
                               stage_times=(1, 1, 1), latency_constraint=5.0)
        predictor = fitted_predictor(oracles)
        a = PoolSimulator(oracles, RTDeepIoTPolicy(predictor, k=1), cfg).run()
        b = PoolSimulator(oracles, RTDeepIoTPolicy(predictor, k=1), cfg).run()
        assert a.accuracy == b.accuracy
        np.testing.assert_array_equal(a.stages_executed, b.stages_executed)


class TestSchedulingQuality:
    """The headline behavioural claims of Fig. 4, at test scale."""

    @pytest.fixture(scope="class")
    def setup(self):
        oracles = make_oracles(240, seed=1)
        predictor = fitted_predictor(oracles)
        cfg = SimulationConfig(num_workers=2, concurrency=12,
                               stage_times=(1, 1, 1), latency_constraint=9.0)
        return oracles, predictor, cfg

    def run_policy(self, oracles, cfg, policy_factory):
        results = run_episodes(oracles, policy_factory, cfg,
                               episodes=4, tasks_per_episode=60, seed=7)
        return float(np.mean([r.accuracy for r in results]))

    def test_rtdeepiot_beats_fifo_under_load(self, setup):
        oracles, predictor, cfg = setup
        smart = self.run_policy(oracles, cfg, lambda: RTDeepIoTPolicy(predictor, k=1))
        fifo = self.run_policy(oracles, cfg, lambda: FIFOPolicy())
        assert smart > fifo

    def test_rtdeepiot_beats_round_robin_under_load(self, setup):
        oracles, predictor, cfg = setup
        smart = self.run_policy(oracles, cfg, lambda: RTDeepIoTPolicy(predictor, k=1))
        rr = self.run_policy(oracles, cfg, lambda: RoundRobinPolicy())
        assert smart >= rr

    def test_fairness_lower_stage_variance_than_fifo(self, setup):
        """The greedy policy spreads stages across tasks more evenly than FIFO."""
        oracles, predictor, cfg = setup
        smart = PoolSimulator(oracles[:60], RTDeepIoTPolicy(predictor, k=1), cfg).run()
        fifo = PoolSimulator(oracles[:60], FIFOPolicy(), cfg).run()
        assert smart.stages_executed.std() < fifo.stages_executed.std()
