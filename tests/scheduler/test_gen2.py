"""Unit tests for the gen-2 imprecise-computation scheduler.

Covers the joint stage-budget planner (mandatory pass, density auction,
capacity ledger), optional-stage preemption via tightening-only caps, and
the `Gen2Policy` drop-in behaviour inside the discrete-event simulator.
"""

import pytest

from repro.scheduler import (
    EDFPolicy,
    FIFOPolicy,
    Gen2Policy,
    PoolSimulator,
    SimulationConfig,
    StageBudgetPlanner,
    TaskOracle,
    apply_stage_budgets,
    poisson_arrivals,
)
from repro.scheduler.gen2 import StageBid, _CapacityLedger
from repro.scheduler.task import StageOutcome, TaskRecord, TaskView


class StubPredictor:
    """Deterministic confidence curves: per-task ceiling scaled by stage.

    ``prior``/``predict`` rise linearly toward 1.0 with the stage index —
    enough structure for density ordering to be meaningful and exact.
    """

    num_stages = 3

    def baseline(self):
        return 0.1

    def prior(self, stage):
        return 0.3 + 0.2 * stage  # 0.3, 0.5, 0.7

    def predict(self, observed_stage, observed_conf, target_stage):
        # Gains proportional to the held confidence: a task already doing
        # well refines faster, so density ordering is strict and exact.
        return min(
            1.0, observed_conf * (1.0 + 0.2 * (target_stage - observed_stage))
        )


def view(tid, deadline, stages_done=0, confidences=(), now_arrival=0.0):
    return TaskView(
        task_id=tid,
        arrival_time=now_arrival,
        deadline=deadline,
        num_stages=3,
        stages_done=stages_done,
        confidences=tuple(confidences),
    )


def mkrecord(tid, deadline, stages_done=0):
    r = TaskRecord(
        task_id=tid, arrival_time=0.0, deadline=deadline, num_stages=3
    )
    for s in range(stages_done):
        r.outcomes.append(StageOutcome(stage=s, prediction=0, confidence=0.5))
    return r


class TestCapacityLedger:
    def test_funds_up_to_worker_time(self):
        ledger = _CapacityLedger(num_workers=1, now=0.0)
        assert ledger.try_add(2.0, 1.0)
        assert ledger.try_add(2.0, 1.0)
        # 2 seconds of demand by t=2 on one worker: a third does not fit.
        assert not ledger.try_add(2.0, 1.0)

    def test_earlier_deadline_constrains_later_ones(self):
        ledger = _CapacityLedger(num_workers=1, now=0.0)
        assert ledger.try_add(1.0, 1.0)
        # The second stage is due later, but cumulative load by t=1.5 would
        # be 2.0 > 1.5 worker-seconds: infeasible.
        assert not ledger.try_add(1.5, 1.0)
        assert ledger.try_add(3.0, 1.0)

    def test_expired_deadline_never_funded(self):
        ledger = _CapacityLedger(num_workers=2, now=5.0)
        assert not ledger.try_add(5.0, 0.5)
        assert ledger.try_add(6.0, 0.5)


class TestStageBudgetPlanner:
    def planner(self, workers=2):
        return StageBudgetPlanner(
            predictor=StubPredictor(), num_workers=workers, stage_time_s=1.0
        )

    def test_uncontended_pool_funds_everything(self):
        plan = self.planner().plan_budgets(
            [view(0, deadline=30.0), view(1, deadline=40.0)], now=0.0
        )
        assert plan.budgets == {0: 3, 1: 3}
        assert plan.funded == plan.demanded == 6
        assert not plan.contended

    def test_mandatory_prefixes_fund_before_any_optional_stage(self):
        # One worker, everything due at t=2: capacity for exactly two
        # stages.  Both mandatory stage-0s must fund — not one task's
        # stage 0 + stage 1.
        plan = self.planner(workers=1).plan_budgets(
            [view(0, deadline=2.0), view(1, deadline=2.0)], now=0.0
        )
        assert plan.budgets == {0: 1, 1: 1}
        assert plan.contended
        assert [stage for _, stage in plan.order] == [0, 0]

    def test_optional_capacity_goes_to_highest_density(self):
        # Both tasks hold their mandatory stage; one worker-second funds
        # exactly one optional stage.  Task 1 already holds 0.8 -> its
        # stage-1 gain under the stub is larger, so it wins the auction.
        plan = self.planner(workers=1).plan_budgets(
            [
                view(0, deadline=1.0, stages_done=1, confidences=(0.3,)),
                view(1, deadline=1.0, stages_done=1, confidences=(0.8,)),
            ],
            now=0.0,
        )
        assert plan.budgets[1] == 2
        assert plan.budgets[0] == 1

    def test_infeasible_task_keeps_only_executed_stages(self):
        plan = self.planner().plan_budgets(
            [
                view(0, deadline=0.5, stages_done=1, confidences=(0.6,)),
                view(1, deadline=30.0),
            ],
            now=0.0,
        )
        # Half a second of slack cannot fit a 1-second stage: nothing new
        # is funded, but the executed stage is owned unconditionally.
        assert plan.budgets[0] == 1
        assert plan.budgets[1] == 3

    def test_budgets_never_below_executed_stages(self):
        plan = self.planner(workers=1).plan_budgets(
            [
                view(0, deadline=1.0, stages_done=2, confidences=(0.4, 0.5)),
                view(1, deadline=1.0),
            ],
            now=0.0,
        )
        assert plan.budgets[0] >= 2

    def test_mandatory_pass_is_edf_ordered(self):
        # One worker, one second of capacity before the earliest deadline:
        # the urgent task's prefix funds, the relaxed one also fits later.
        plan = self.planner(workers=1).plan_budgets(
            [view(0, deadline=10.0), view(1, deadline=1.0)], now=0.0
        )
        mandatory = [tid for tid, stage in plan.order if stage == 0]
        assert mandatory[0] == 1


class TestApplyStageBudgets:
    def test_noop_for_gen1_policies(self):
        records = {0: mkrecord(0, deadline=10.0)}
        assert apply_stage_budgets(FIFOPolicy(), records, now=0.0) == []
        assert records[0].stage_cap is None

    def test_revokes_optional_stages_only(self):
        policy = Gen2Policy(predictor=StubPredictor(), num_workers=1)
        policy.last_budgets = {0: 1}
        records = {0: mkrecord(0, deadline=10.0)}
        preempted = apply_stage_budgets(policy, records, now=0.0)
        assert preempted == [0]
        assert records[0].stage_cap == 1
        assert records[0].effective_stages == 1

    def test_cap_floors_at_executed_stages(self):
        policy = Gen2Policy(predictor=StubPredictor(), num_workers=1)
        policy.last_budgets = {0: 1}
        records = {0: mkrecord(0, deadline=10.0, stages_done=2)}
        apply_stage_budgets(policy, records, now=0.0)
        # Already ran two stages: the budget of one is floored to two —
        # executed work is never revoked.
        assert records[0].stage_cap == 2
        assert records[0].complete

    def test_uncontended_budgets_are_not_applied(self):
        policy = Gen2Policy(predictor=StubPredictor(), num_workers=1)
        policy.last_budgets = {0: 1}
        records = {0: mkrecord(0, deadline=10.0)}
        preempted = apply_stage_budgets(
            policy, records, now=0.0, contended=False
        )
        assert preempted == []
        assert records[0].stage_cap is None

    def test_preempt_false_publishes_no_budgets(self):
        policy = Gen2Policy(
            predictor=StubPredictor(), num_workers=1, preempt=False
        )
        policy.plan([view(0, deadline=2.0), view(1, deadline=2.0)], now=0.0)
        assert policy.last_budgets is None
        records = {0: mkrecord(0, deadline=2.0)}
        assert apply_stage_budgets(policy, records, now=0.0) == []


class TestGen2Policy:
    def test_is_a_drop_in_policy(self):
        policy = Gen2Policy(predictor=StubPredictor(), num_workers=2)
        order = policy.plan(
            [view(0, deadline=30.0), view(1, deadline=40.0)], now=0.0
        )
        assert policy.plans_stage_budgets
        assert policy.last_budgets == {0: 3, 1: 3}
        assert set(tid for tid, _ in order) == {0, 1}
        # Stages per task appear in execution order.
        for tid in (0, 1):
            stages = [s for t, s in order if t == tid]
            assert stages == sorted(stages)

    def test_gen1_policies_do_not_plan_budgets(self):
        assert not EDFPolicy().plans_stage_budgets
        assert not FIFOPolicy().plans_stage_budgets


class TestGen2InSimulator:
    def episode(self, load=3.0, num_tasks=40, seed=0):
        num_workers = 2
        oracles = [
            TaskOracle(
                confidences=(0.4, 0.6, 0.8),
                predictions=(1, 1, 1),
                correct=(True, True, True),
            )
            for _ in range(num_tasks)
        ]
        capacity = num_workers / 3.0
        arrivals = poisson_arrivals(num_tasks, rate=load * capacity, seed=seed)
        config = SimulationConfig(
            num_workers=num_workers,
            concurrency=8,
            stage_times=(1.0, 1.0, 1.0),
            latency_constraint=6.0,
            anytime=True,
        )
        policy = Gen2Policy(
            predictor=StubPredictor(), num_workers=num_workers, stage_time_s=1.0
        )
        return PoolSimulator(
            oracles, policy, config, arrival_times=arrivals
        ).run()

    def test_overload_episode_serves_everyone_on_time(self):
        result = self.episode()
        assert result.num_late == 0
        served = [
            r
            for r in result.records
            if r.outcomes and not r.evicted and not r.shed
        ]
        assert len(served) == result.num_tasks  # nobody starves at 3x load
        # Every response carries at least the mandatory prefix.
        assert min(r.stages_done for r in served) >= 1

    def test_preempted_tasks_complete_within_their_tightened_cap(self):
        result = self.episode()
        for r in result.records:
            if r.stage_cap is not None:
                assert r.stages_done <= r.stage_cap
        # Preemption actually happened at 3x overload.
        assert any(r.stage_cap is not None for r in result.records)

    def test_anytime_serves_are_stamped_at_or_before_deadline(self):
        result = self.episode()
        for r in result.records:
            if r.anytime_served:
                assert r.finish_time <= r.deadline + 1e-9
                assert r.outcomes


class TestStageBid:
    def test_density_is_gain_per_cost(self):
        bid = StageBid(
            task_id=0, stage=1, gain=0.3, cost=2.0, deadline=5.0, mandatory=False
        )
        assert bid.density == pytest.approx(0.15)
