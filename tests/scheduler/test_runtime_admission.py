"""Admission control applied to the thread-based inference runtime."""

import pytest

from repro import telemetry
from repro.admission import AdmissionConfig
from repro.datasets import SyntheticImageConfig, make_image_dataset
from repro.nn import StagedResNet, StagedResNetConfig
from repro.scheduler import FIFOPolicy, RuntimeConfig, StagedInferenceRuntime


TINY = StagedResNetConfig(
    num_classes=4, image_size=8, stage_channels=(4, 8), blocks_per_stage=1, seed=0
)


@pytest.fixture(scope="module")
def inputs():
    cfg = SyntheticImageConfig(num_classes=4, image_size=8, seed=3)
    return make_image_dataset(6, cfg, seed=9).inputs


def make_runtime(admission=None, num_workers=2):
    return StagedInferenceRuntime(
        StagedResNet(TINY),
        FIFOPolicy(),
        RuntimeConfig(
            num_workers=num_workers,
            latency_constraint=60.0,
            admission=admission,
        ),
    )


OVERLOADED = AdmissionConfig(
    max_queue_depth=4, degrade_queue_depth=2, degrade_stage_cap=1
)


class TestRuntimeAdmission:
    def test_shed_then_degrade_split(self, inputs):
        runtime = make_runtime(admission=OVERLOADED)
        runtime.submit(inputs)
        results = {r.task_id: r for r in runtime.run_until_complete()}
        assert len(results) == 6
        # Hard bound 4: the two newest tasks are shed without any service.
        shed = sorted(tid for tid, r in results.items() if r.shed)
        assert shed == [4, 5]
        for tid in shed:
            assert results[tid].outcomes == []
            assert not results[tid].completed
        # Soft bound 2: the next two are degraded to the first exit stage.
        degraded = sorted(
            tid
            for tid, r in results.items()
            if not r.shed and r.served_stage == 0
        )
        assert degraded == [2, 3]
        for tid in degraded:
            assert len(results[tid].outcomes) == 1
            assert not results[tid].completed  # early exit != full service
        # The survivors get full-depth service.
        for tid in (0, 1):
            assert results[tid].completed
            assert results[tid].served_stage == 1

    def test_no_admission_is_the_legacy_behaviour(self, inputs):
        runtime = make_runtime(admission=None)
        runtime.submit(inputs)
        results = runtime.run_until_complete()
        assert all(not r.shed for r in results)
        assert all(r.completed for r in results)

    def test_unbounded_config_is_a_noop(self, inputs):
        runtime = make_runtime(admission=AdmissionConfig())
        runtime.submit(inputs)
        results = runtime.run_until_complete()
        assert all(not r.shed for r in results)
        assert all(r.completed for r in results)

    def test_shed_and_served_are_disjoint(self, inputs):
        runtime = make_runtime(admission=OVERLOADED)
        runtime.submit(inputs)
        for result in runtime.run_until_complete():
            assert not (result.shed and result.outcomes)

    def test_telemetry_counts_shed_and_degraded(self, inputs):
        session = telemetry.enable()
        try:
            runtime = make_runtime(admission=OVERLOADED)
            runtime.submit(inputs)
            runtime.run_until_complete()
            counters = session.registry.counters()
            assert counters["runtime.tasks_shed"] == 2
            assert counters["runtime.tasks_degraded"] == 2
            kinds = session.trace.counts()
            assert kinds.get("load-shed") == 2
            assert kinds.get("degrade-cap") == 2
        finally:
            telemetry.disable()
