"""Tests for the greedy-optimality analysis (Sec. III-B's claim)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduler.analysis import (
    greedy_allocation,
    greedy_optimality_gap,
    greedy_utility,
    marginal_gains,
    optimal_offline_utility,
    submodularity_violations,
)


def submodular_curves(n, seed=0, baseline=0.1):
    """Concave curves: each stage closes half the gap to 0.95.

    c1 >= 0.4 guarantees the baseline->stage-1 gain already dominates the
    stage-1->stage-2 gain, so the whole gain sequence is non-increasing.
    """
    rng = np.random.default_rng(seed)
    c1 = rng.uniform(0.4, 0.9, size=n)
    c2 = c1 + 0.5 * (0.95 - c1)
    c3 = c2 + 0.5 * (0.95 - c2)
    return np.stack([c1, c2, c3], axis=1)


def late_jump_curves(n):
    """Non-submodular: confidence barely moves until the last stage."""
    c1 = np.full(n, 0.12)
    c2 = np.full(n, 0.14)
    c3 = np.full(n, 0.95)
    return np.stack([c1, c2, c3], axis=1)


class TestMarginalGainsAndSubmodularity:
    def test_marginal_gains_include_baseline_step(self):
        curves = np.array([[0.5, 0.7, 0.8]])
        gains = marginal_gains(curves, baseline=0.1)
        np.testing.assert_allclose(gains, [[0.4, 0.2, 0.1]])

    def test_submodular_population_has_no_violations(self):
        assert submodularity_violations(submodular_curves(50), baseline=0.1) == 0.0

    def test_late_jump_curves_all_violate(self):
        assert submodularity_violations(late_jump_curves(10), baseline=0.1) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            submodularity_violations(np.zeros(3))
        with pytest.raises(ValueError):
            marginal_gains(np.zeros((2, 3)), baseline=2.0)


class TestGreedyVsOptimal:
    def test_greedy_optimal_on_submodular_curves(self):
        """The paper's claim: submodular curves + equal stage times =>
        greedy achieves the global optimum."""
        curves = submodular_curves(6, seed=1)
        for budget in (0, 1, 3, 6, 10, 18):
            assert greedy_optimality_gap(curves, budget) == pytest.approx(1.0)

    def test_greedy_suboptimal_on_nonsubmodular_mix(self):
        """The classic greedy trap: a task with a big *immediate* gain lures
        the first pick away from a task whose value is unlocked only by a
        two-stage investment."""
        curves = np.array(
            [
                [0.30, 0.32, 0.33],  # front-loaded, then flat
                [0.15, 0.90, 0.91],  # value hidden behind stage 2
            ]
        )
        budget = 2
        greedy = greedy_utility(curves, budget, baseline=0.1)
        optimal = optimal_offline_utility(curves, budget, baseline=0.1)
        # Optimal spends both stages on task 1 (0.1 + 0.90); greedy takes
        # task 0's 0.30 first and strands task 1 at 0.15.
        assert optimal == pytest.approx(1.0)
        assert greedy == pytest.approx(0.45)
        assert optimal > greedy

    def test_budget_zero_all_baseline(self):
        curves = submodular_curves(4)
        assert optimal_offline_utility(curves, 0, baseline=0.1) == pytest.approx(0.4)
        assert greedy_utility(curves, 0, baseline=0.1) == pytest.approx(0.4)

    def test_budget_saturates(self):
        curves = submodular_curves(3)
        full = optimal_offline_utility(curves, 9, baseline=0.1)
        extra = optimal_offline_utility(curves, 50, baseline=0.1)
        assert extra == pytest.approx(full)
        assert full == pytest.approx(curves[:, -1].sum())

    def test_allocation_respects_budget_and_order(self):
        curves = submodular_curves(5, seed=2)
        allocation = greedy_allocation(curves, budget=7)
        assert sum(allocation) == 7
        assert all(0 <= a <= 3 for a in allocation)

    def test_validation(self):
        with pytest.raises(ValueError):
            greedy_utility(submodular_curves(2), budget=-1)
        with pytest.raises(ValueError):
            optimal_offline_utility(submodular_curves(2), budget=-1)

    @given(st.integers(0, 1000), st.integers(1, 6), st.integers(0, 12))
    @settings(max_examples=40, deadline=None)
    def test_property_greedy_never_beats_optimal(self, seed, n, budget):
        rng = np.random.default_rng(seed)
        curves = np.sort(rng.uniform(0.1, 1.0, size=(n, 3)), axis=1)
        g = greedy_utility(curves, budget, baseline=0.1)
        o = optimal_offline_utility(curves, budget, baseline=0.1)
        assert g <= o + 1e-9

    @given(st.integers(0, 1000), st.integers(1, 5), st.integers(0, 10))
    @settings(max_examples=40, deadline=None)
    def test_property_greedy_optimal_when_submodular(self, seed, n, budget):
        curves = submodular_curves(n, seed=seed)
        g = greedy_utility(curves, budget, baseline=0.1)
        o = optimal_offline_utility(curves, budget, baseline=0.1)
        assert g == pytest.approx(o, abs=1e-9)

    def test_benchmark_model_curves_mostly_submodular(self):
        """Sanity link to the real system: a synthetic population shaped like
        our trained model's confidence curves is predominantly submodular,
        so the greedy scheduler operates near its optimality conditions."""
        curves = submodular_curves(200, seed=3)
        assert submodularity_violations(curves) < 0.05
