"""Admission control applied to the discrete-event pool simulator."""

import numpy as np
import pytest

from repro import telemetry
from repro.admission import TAIL, UTILITY, AdmissionConfig
from repro.scheduler import (
    FIFOPolicy,
    GPConfidencePredictor,
    PoolSimulator,
    RTDeepIoTPolicy,
    SimulationConfig,
    TaskOracle,
)


def make_oracles(n, seed=0):
    rng = np.random.default_rng(seed)
    oracles = []
    for _ in range(n):
        c1 = rng.uniform(0.12, 0.92)
        c2 = c1 + 0.5 * (0.97 - c1)
        c3 = c2 + 0.5 * (0.97 - c2)
        confs = np.clip([c1, c2, c3], 0.0, 1.0)
        oracles.append(
            TaskOracle(
                confidences=tuple(float(c) for c in confs),
                predictions=(0, 0, 0),
                correct=tuple(bool(rng.random() < c) for c in confs),
            )
        )
    return oracles


def fitted_predictor(oracles):
    mat = np.array([o.confidences for o in oracles]).T
    return GPConfidencePredictor(num_classes=10, seed=0).fit(mat)


def run_sim(oracles, policy, admission, **kwargs):
    config = SimulationConfig(
        num_workers=2,
        concurrency=2,
        latency_constraint=kwargs.pop("latency_constraint", 30.0),
        admission=admission,
    )
    return PoolSimulator(oracles, policy, config, **kwargs).run()


class TestBoundedQueue:
    def test_queue_depth_never_exceeds_the_bound(self):
        admission = AdmissionConfig(max_queue_depth=3)
        result = run_sim(make_oracles(12), FIFOPolicy(), admission)
        assert result.peak_queue_depth <= 3
        # 12 waiting, 2 admitted into free slots, 3 allowed to queue.
        assert result.num_shed == 7
        assert result.shed_fraction == pytest.approx(7 / 12)

    def test_shed_records_received_no_service(self):
        admission = AdmissionConfig(max_queue_depth=2)
        result = run_sim(make_oracles(10), FIFOPolicy(), admission)
        for record in result.records:
            if record.shed:
                assert record.outcomes == []
                assert record.finish_time is None
            # No task is both shed and served.
            assert not (record.shed and record.outcomes)

    def test_unbounded_baseline_tracks_peak_depth_but_sheds_nothing(self):
        result = run_sim(make_oracles(12), FIFOPolicy(), admission=None)
        assert result.num_shed == 0
        # The unbounded queue's growth stays visible for comparison.
        assert result.peak_queue_depth == 10

    def test_served_tasks_accrue_utility(self):
        admission = AdmissionConfig(max_queue_depth=3)
        result = run_sim(make_oracles(12), FIFOPolicy(), admission)
        assert result.num_served > 0
        assert result.accrued_utility > 0.0
        assert result.goodput > 0.0


class TestShedPolicies:
    def test_utility_sheds_doomed_tasks_first(self):
        # First four tasks cannot finish even one stage past the queue wait;
        # the last four have generous slack.  UTILITY drops the doomed ones.
        oracles = make_oracles(8, seed=1)
        constraints = [1.0] * 4 + [20.0] * 4
        admission = AdmissionConfig(max_queue_depth=2, shed_policy=UTILITY)
        result = PoolSimulator(
            oracles,
            FIFOPolicy(),
            SimulationConfig(
                num_workers=2, concurrency=2, latency_constraint=20.0,
                admission=admission,
            ),
            task_latency_constraints=constraints,
            arrival_times=[0.0] * 8,
        ).run()
        shed = sorted(r.task_id for r in result.records if r.shed)
        assert shed == [0, 1, 2, 3]

    def test_tail_sheds_newest_first(self):
        oracles = make_oracles(8, seed=1)
        constraints = [1.0] * 4 + [20.0] * 4
        admission = AdmissionConfig(max_queue_depth=2, shed_policy=TAIL)
        result = PoolSimulator(
            oracles,
            FIFOPolicy(),
            SimulationConfig(
                num_workers=2, concurrency=2, latency_constraint=20.0,
                admission=admission,
            ),
            task_latency_constraints=constraints,
            arrival_times=[0.0] * 8,
        ).run()
        shed = sorted(r.task_id for r in result.records if r.shed)
        assert shed == [4, 5, 6, 7]


class TestDegradeBeforeDrop:
    def test_excess_tasks_are_stage_capped(self):
        admission = AdmissionConfig(
            max_queue_depth=4, degrade_queue_depth=1, degrade_stage_cap=1
        )
        result = run_sim(make_oracles(8), FIFOPolicy(), admission)
        assert result.num_degraded > 0
        for record in result.records:
            if record.stage_cap is not None and not record.shed:
                assert record.stages_done <= record.stage_cap


class TestRateLimit:
    def test_arrivals_past_the_bucket_are_shed(self):
        admission = AdmissionConfig(rate_limit_per_s=1.0, burst=1)
        session = telemetry.enable()
        try:
            result = run_sim(make_oracles(6), FIFOPolicy(), admission)
            # One token at t=0; the other five closed-loop arrivals are shed.
            assert result.num_shed == 5
            counters = session.registry.counters()
            assert counters["simulator.tasks_shed"] == 5
            assert session.trace.counts().get("admission-reject") == 5
        finally:
            telemetry.disable()

    def test_spaced_arrivals_pass_the_bucket(self):
        admission = AdmissionConfig(rate_limit_per_s=1.0, burst=1)
        result = PoolSimulator(
            make_oracles(4),
            FIFOPolicy(),
            SimulationConfig(
                num_workers=2, concurrency=2, latency_constraint=30.0,
                admission=admission,
            ),
            arrival_times=[0.0, 1.0, 2.0, 3.0],
        ).run()
        assert result.num_shed == 0


class TestDeterminism:
    def test_same_inputs_same_shed_set(self):
        oracles = make_oracles(16, seed=2)
        predictor = fitted_predictor(oracles)
        admission = AdmissionConfig(
            max_queue_depth=3, degrade_queue_depth=2, degrade_stage_cap=1
        )
        arrivals = [0.1 * i for i in range(16)]

        def once():
            return PoolSimulator(
                oracles,
                RTDeepIoTPolicy(predictor, k=1),
                SimulationConfig(
                    num_workers=2, concurrency=3, latency_constraint=4.0,
                    admission=admission,
                ),
                arrival_times=arrivals,
            ).run()

        a, b = once(), once()
        assert [r.shed for r in a.records] == [r.shed for r in b.records]
        assert [r.stage_cap for r in a.records] == [r.stage_cap for r in b.records]
        assert a.goodput == b.goodput
        assert a.peak_queue_depth == b.peak_queue_depth
