"""The anytime contract on the live thread-based runtime.

With ``RuntimeConfig.anytime`` a deadline-constrained run never wastes
computed work: a task holding at least one stage result at its deadline is
served best-so-far (``anytime_served``, degraded, stamped at or before the
deadline) instead of being evicted.
"""

import numpy as np
import pytest

from repro import telemetry
from repro.nn.resnet import StagedResNet, StagedResNetConfig
from repro.scheduler.policies import RoundRobinPolicy
from repro.scheduler.runtime import RuntimeConfig, StagedInferenceRuntime
from repro.telemetry.trace import DEGRADED


@pytest.fixture(scope="module")
def small_model():
    model = StagedResNet(
        StagedResNetConfig(
            num_classes=5, image_size=16, stage_channels=(8, 16), blocks_per_stage=1
        )
    )
    model.eval()
    model.predict_proba(np.zeros((2, 3, 16, 16)))
    return model


class TestRuntimeAnytime:
    def test_partial_work_is_served_not_evicted(self, small_model):
        # Round-robin breadth-first on one worker: many tasks hold exactly
        # one of two stages when the constraint expires.
        inputs = np.random.default_rng(1).normal(size=(96, 3, 16, 16))
        constraint = 0.02
        with telemetry.session() as t:
            runtime = StagedInferenceRuntime(
                small_model,
                RoundRobinPolicy(),
                RuntimeConfig(
                    num_workers=1,
                    latency_constraint=constraint,
                    anytime=True,
                ),
            )
            runtime.submit(inputs)
            results = runtime.run_until_complete()

            # The workload overruns the constraint by far, so the contract
            # actually fired.
            assert any(r.anytime_served for r in results)
            for r in results:
                # Computed work is never thrown away: eviction only happens
                # with an empty hand.
                if r.evicted:
                    assert r.outcomes == []
                if r.anytime_served:
                    assert r.outcomes, "anytime serving requires a result"
                    assert not r.evicted
                    assert r.degraded
                    assert r.served_stage == r.outcomes[-1].stage
                    # Never late: the response is stamped at the deadline.
                    assert r.elapsed <= constraint + 1e-9
            served = t.trace.events(DEGRADED)
            assert {e.task_id for e in served} >= {
                r.task_id for r in results if r.anytime_served
            }
            counters = t.registry.counters()
            assert counters["runtime.anytime_served"] == sum(
                1 for r in results if r.anytime_served
            )
            # Anytime serves are not deadline misses.
            assert counters["runtime.deadline_misses"] == sum(
                1 for r in results if r.evicted
            )

    def test_anytime_off_preserves_legacy_eviction(self, small_model):
        inputs = np.random.default_rng(2).normal(size=(96, 3, 16, 16))
        runtime = StagedInferenceRuntime(
            small_model,
            RoundRobinPolicy(),
            RuntimeConfig(num_workers=1, latency_constraint=0.02, anytime=False),
        )
        runtime.submit(inputs)
        results = runtime.run_until_complete()
        assert any(r.evicted for r in results)
        assert all(not r.anytime_served for r in results)

    def test_comfortable_deadline_untouched(self, small_model):
        inputs = np.random.default_rng(3).normal(size=(4, 3, 16, 16))
        runtime = StagedInferenceRuntime(
            small_model,
            RoundRobinPolicy(),
            RuntimeConfig(num_workers=2, latency_constraint=60.0, anytime=True),
        )
        runtime.submit(inputs)
        results = runtime.run_until_complete()
        assert all(r.completed for r in results)
        assert all(not r.anytime_served for r in results)
