"""Tests for the scheduling policies."""

import numpy as np
import pytest

from repro.scheduler import (
    ConstantSlopePredictor,
    FIFOPolicy,
    GPConfidencePredictor,
    RoundRobinPolicy,
    RTDeepIoTPolicy,
    TaskView,
)


def view(task_id, stages_done=0, confidences=(), arrival=0.0, num_stages=3):
    return TaskView(
        task_id=task_id,
        arrival_time=arrival,
        deadline=arrival + 10.0,
        num_stages=num_stages,
        stages_done=stages_done,
        confidences=tuple(confidences),
    )


@pytest.fixture(scope="module")
def predictor():
    rng = np.random.default_rng(0)
    base = rng.uniform(0.2, 0.8, 300)
    mat = np.stack(
        [
            np.clip(base, 0, 1),
            np.clip(base + 0.15, 0, 1),
            np.clip(base + 0.25, 0, 1),
        ]
    )
    return GPConfidencePredictor(num_classes=10, seed=0).fit(mat)


class TestRTDeepIoT:
    def test_k_controls_timeline_length(self, predictor):
        tasks = [view(i) for i in range(5)]
        for k in (1, 2, 3):
            plan = RTDeepIoTPolicy(predictor, k=k).plan(tasks, 0.0)
            assert len(plan) == k

    def test_prefers_low_confidence_task(self, predictor):
        """A task whose confidence is already high gains little from another
        stage; the greedy scheduler should pick the uncertain one."""
        certain = view(0, stages_done=1, confidences=(0.95,))
        uncertain = view(1, stages_done=1, confidences=(0.40,))
        plan = RTDeepIoTPolicy(predictor, k=1).plan([certain, uncertain], 0.0)
        assert plan == [(1, 1)]

    def test_chained_lookahead_advances_frontier(self, predictor):
        """With one task and k=3 the plan must be its consecutive stages."""
        plan = RTDeepIoTPolicy(predictor, k=3).plan([view(0)], 0.0)
        assert plan == [(0, 0), (0, 1), (0, 2)]

    def test_never_plans_beyond_last_stage(self, predictor):
        almost_done = view(0, stages_done=2, confidences=(0.4, 0.5))
        plan = RTDeepIoTPolicy(predictor, k=5).plan([almost_done], 0.0)
        assert plan == [(0, 2)]

    def test_empty_when_all_done(self, predictor):
        done = view(0, stages_done=3, confidences=(0.4, 0.5, 0.6))
        assert RTDeepIoTPolicy(predictor, k=2).plan([done], 0.0) == []

    def test_invalid_k(self, predictor):
        with pytest.raises(ValueError):
            RTDeepIoTPolicy(predictor, k=0)

    def test_name_encodes_variant(self, predictor):
        assert RTDeepIoTPolicy(predictor, k=2).name == "RTDeepIoT-2"
        assert RTDeepIoTPolicy(predictor, k=3, dynamic=False).name == "RTDeepIoT-DC-3"

    def test_dc_variant_uses_observed_slope(self, predictor):
        """DC: a task whose last stage jumped a lot looks (wrongly) promising."""
        flat = view(0, stages_done=2, confidences=(0.50, 0.52))
        steep = view(1, stages_done=2, confidences=(0.30, 0.60))
        plan = RTDeepIoTPolicy(predictor, k=1, dynamic=False).plan([flat, steep], 0.0)
        assert plan == [(1, 2)]


class TestRoundRobin:
    def test_plans_one_stage_per_task(self):
        policy = RoundRobinPolicy()
        tasks = [view(i, stages_done=i % 2, confidences=(0.5,) * (i % 2)) for i in range(4)]
        plan = policy.plan(tasks, 0.0)
        assert sorted(t for t, _ in plan) == [0, 1, 2, 3]
        for tid, stage in plan:
            assert stage == tasks[tid].stages_done

    def test_rotation_between_plans(self):
        policy = RoundRobinPolicy()
        tasks = [view(i) for i in range(3)]
        first = policy.plan(tasks, 0.0)
        second = policy.plan(tasks, 1.0)
        assert first[0] != second[0]

    def test_skips_finished(self):
        done = view(0, stages_done=3, confidences=(0.1, 0.2, 0.3))
        live = view(1)
        assert RoundRobinPolicy().plan([done, live], 0.0) == [(1, 0)]

    def test_rotation_survives_a_shrinking_runnable_set(self):
        # Regression: the old positional cursor (index mod runnable count)
        # skewed the rotation whenever tasks left the runnable set between
        # plans — here it would jump from task 0 straight to task 2,
        # double-serving 2 and starving 1.
        policy = RoundRobinPolicy()
        first = policy.plan([view(0), view(1), view(2)], 0.0)
        assert first[0] == (0, 0)
        second = policy.plan([view(1), view(2)], 1.0)
        assert second[0] == (1, 0)

    def test_rotation_wraps_after_the_highest_id(self):
        policy = RoundRobinPolicy()
        tasks = [view(0), view(1)]
        assert policy.plan(tasks, 0.0)[0] == (0, 0)
        assert policy.plan(tasks, 1.0)[0] == (1, 0)
        assert policy.plan(tasks, 2.0)[0] == (0, 0)  # wraps, no skips

    def test_rotation_continues_when_last_served_departs(self):
        policy = RoundRobinPolicy()
        assert policy.plan([view(0), view(1), view(2)], 0.0)[0] == (0, 0)
        assert policy.plan([view(1), view(2)], 1.0)[0] == (1, 0)
        # Task 1 (the last head) finished too; resume after its id.
        assert policy.plan([view(0, stages_done=1, confidences=(0.5,)), view(2)], 2.0)[
            0
        ] == (2, 0)


class TestFIFO:
    def test_runs_oldest_to_completion(self):
        older = view(0, arrival=0.0)
        newer = view(1, arrival=1.0)
        plan = FIFOPolicy().plan([newer, older], 2.0)
        assert plan == [(0, 0), (0, 1), (0, 2)]

    def test_resumes_partially_done_task(self):
        partial = view(0, stages_done=1, confidences=(0.5,))
        assert FIFOPolicy().plan([partial], 0.0) == [(0, 1), (0, 2)]

    def test_empty(self):
        assert FIFOPolicy().plan([], 0.0) == []
