"""Tests for the confidence-curve predictors (GP-based and constant slope)."""

import numpy as np
import pytest

from repro.scheduler import ConstantSlopePredictor, GPConfidencePredictor


def synthetic_confidence_matrix(n=400, seed=0):
    """Three stages with increasing, correlated confidences in [0, 1]."""
    rng = np.random.default_rng(seed)
    base = rng.uniform(0.2, 0.8, size=n)
    s1 = np.clip(base + rng.normal(0, 0.03, n), 0, 1)
    s2 = np.clip(base + 0.12 + rng.normal(0, 0.03, n), 0, 1)
    s3 = np.clip(base + 0.2 + rng.normal(0, 0.03, n), 0, 1)
    return np.stack([s1, s2, s3])


class TestGPConfidencePredictor:
    @pytest.fixture(scope="class")
    def fitted(self):
        return GPConfidencePredictor(num_classes=10, seed=0).fit(
            synthetic_confidence_matrix()
        )

    def test_prior_matches_training_means(self, fitted):
        mat = synthetic_confidence_matrix()
        for s in range(3):
            assert fitted.prior(s) == pytest.approx(mat[s].mean())

    def test_baseline_is_chance(self, fitted):
        assert fitted.baseline() == pytest.approx(0.1)

    def test_predicts_monotone_shift(self, fitted):
        """On this workload stage confidences rise ~0.12 then ~0.08."""
        pred = fitted.predict(0, 0.5, 1)
        assert pred == pytest.approx(0.62, abs=0.05)
        pred13 = fitted.predict(0, 0.5, 2)
        assert pred13 == pytest.approx(0.70, abs=0.06)

    def test_prediction_clipped_to_unit_interval(self, fitted):
        assert 0.0 <= fitted.predict(0, 1.0, 2) <= 1.0
        assert 0.0 <= fitted.predict(0, 0.0, 1) <= 1.0

    def test_exact_and_approximate_agree(self):
        mat = synthetic_confidence_matrix()
        approx = GPConfidencePredictor(seed=0).fit(mat)
        exact = GPConfidencePredictor(seed=0, use_approximation=False).fit(mat)
        for conf in np.linspace(0.2, 0.9, 8):
            assert approx.predict(0, conf, 2) == pytest.approx(
                exact.predict(0, conf, 2), abs=0.02
            )

    def test_validation(self, fitted):
        with pytest.raises(ValueError):
            fitted.predict(1, 0.5, 1)
        with pytest.raises(IndexError):
            fitted.predict(0, 0.5, 7)
        with pytest.raises(IndexError):
            fitted.prior(9)
        with pytest.raises(RuntimeError):
            GPConfidencePredictor().predict(0, 0.5, 1)
        with pytest.raises(ValueError):
            GPConfidencePredictor().fit(np.zeros(5))

    def test_subsampling_respected(self):
        pred = GPConfidencePredictor(max_fit_points=50, seed=1).fit(
            synthetic_confidence_matrix(n=500)
        )
        gp = pred.exact_gp(0, 1)
        assert len(gp._x_train) == 50


class TestConstantSlopePredictor:
    @pytest.fixture(scope="class")
    def fitted(self):
        return ConstantSlopePredictor(num_classes=10).fit(synthetic_confidence_matrix())

    def test_extrapolates_first_stage_slope(self, fitted):
        # observed stage 0 at 0.5: slope = 0.5 - 0.1 = 0.4, so stage1 -> 0.9
        assert fitted.predict(0, 0.5, 1) == pytest.approx(0.9)

    def test_clipping(self, fitted):
        assert fitted.predict(0, 0.9, 2) == 1.0

    def test_predict_with_slope(self, fitted):
        assert fitted.predict_with_slope(0.5, 0.1, 3) == pytest.approx(0.8)
        assert fitted.predict_with_slope(0.9, 0.2, 2) == 1.0

    def test_validation(self, fitted):
        with pytest.raises(ValueError):
            fitted.predict(2, 0.5, 1)
        with pytest.raises(RuntimeError):
            ConstantSlopePredictor().predict(0, 0.5, 1)
        with pytest.raises(IndexError):
            fitted.prior(5)
