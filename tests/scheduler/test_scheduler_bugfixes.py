"""Regression tests for the scheduler-tier timestamp/invariant bugfix sweep.

Three bugs, each with a test that failed before its fix:

1. ``StagedInferenceRuntime`` scored degrade/shed candidates with a
   hard-coded ``now=0.0`` inside ``select_shed``, so the deadline-
   feasibility discount saw every task as having its full latency budget
   left and mis-ranked near-deadline tasks.
2. The same path stamped every ``load_shed``/``degrade_cap`` trace event at
   ``t=0.0`` (the bug class PR 9 fixed for admission rejections).
3. ``TaskRecord.stage_cap`` was a plain attribute: a later degrade or
   preemption pass could silently *raise* a previously assigned lower cap.
   It is now a tightening-only property (``min(old, new)`` enforced in one
   place on ``TaskRecord``).
"""

import pytest

from repro import telemetry
from repro.admission import AdmissionConfig
from repro.nn import StagedResNet, StagedResNetConfig
from repro.scheduler import FIFOPolicy, RuntimeConfig, StagedInferenceRuntime
from repro.scheduler.task import StageOutcome, TaskRecord
from repro.telemetry.trace import DEGRADE_CAP, LOAD_SHED

TINY = StagedResNetConfig(
    num_classes=4, image_size=8, stage_channels=(4, 8), blocks_per_stage=1, seed=0
)


def make_runtime(admission):
    return StagedInferenceRuntime(
        StagedResNet(TINY),
        FIFOPolicy(),
        RuntimeConfig(latency_constraint=60.0, admission=admission),
    )


def record(tid, arrival, deadline, confidences=()):
    r = TaskRecord(
        task_id=tid, arrival_time=arrival, deadline=deadline, num_stages=3
    )
    for stage, conf in enumerate(confidences):
        r.outcomes.append(
            StageOutcome(stage=stage, prediction=0, confidence=conf)
        )
    return r


class TestAdmissionScoredAtActualClock:
    """Bugfix 1: `select_shed` must see the runtime's real clock.

    Task 0 holds a weak stage-0 answer (0.2) and its deadline is nearly
    over; task 1 is fresh with plenty of slack.  Scored at the true
    ``now=2.0`` the near-deadline task can finish nothing new — its
    expected utility is the 0.2 it already holds, the lowest, so *it* is
    shed.  Scored at a hard-coded 0.0 (the old bug) both tasks look fully
    feasible, tie at the optimistic maximum, and the tie-break sheds the
    *newer* task 1 instead.
    """

    def test_near_deadline_task_sheds_first(self):
        runtime = make_runtime(AdmissionConfig(max_queue_depth=1))
        records = {
            0: record(0, arrival=0.0, deadline=2.5, confidences=(0.2,)),
            1: record(1, arrival=0.5, deadline=30.0),
        }
        runtime._apply_admission(
            records, runtime.config.admission, tel=None, now=2.0, stage_time_s=1.0
        )
        assert records[0].shed, "the infeasible near-deadline task must shed"
        assert not records[1].shed
        assert records[0].finish_time == 2.0

    def test_shed_trace_reports_discounted_utility(self):
        with telemetry.session() as tel:
            runtime = make_runtime(AdmissionConfig(max_queue_depth=1))
            records = {
                0: record(0, arrival=0.0, deadline=2.5, confidences=(0.2,)),
                1: record(1, arrival=0.5, deadline=30.0),
            }
            runtime._apply_admission(
                records,
                runtime.config.admission,
                tel,
                now=2.0,
                stage_time_s=1.0,
            )
            (event,) = tel.trace.events(LOAD_SHED)
            # The logged utility is what the ranking actually used: the held
            # 0.2, not the optimistic full-horizon estimate.
            assert event.detail["expected_utility"] == pytest.approx(0.2)


class TestDegradeTracesStampedAtDecisionTime:
    """Bugfix 2: degrade/shed trace events carry the real decision time."""

    def test_degrade_cap_events_not_at_time_zero(self):
        with telemetry.session() as tel:
            runtime = make_runtime(
                AdmissionConfig(degrade_queue_depth=1, degrade_stage_cap=1)
            )
            records = {
                tid: record(tid, arrival=0.0, deadline=30.0) for tid in range(3)
            }
            runtime._apply_admission(
                records, runtime.config.admission, tel, now=3.5
            )
            events = tel.trace.events(DEGRADE_CAP)
            assert len(events) == 2  # three live tasks, soft bound of one
            for event in events:
                assert event.t == 3.5
            capped = [r for r in records.values() if r.stage_cap is not None]
            assert len(capped) == 2
            assert all(r.stage_cap == 1 for r in capped)

    def test_shed_events_stamped_at_decision_time(self):
        with telemetry.session() as tel:
            runtime = make_runtime(AdmissionConfig(max_queue_depth=1))
            records = {
                tid: record(tid, arrival=0.0, deadline=30.0) for tid in range(3)
            }
            runtime._apply_admission(
                records, runtime.config.admission, tel, now=1.25
            )
            events = tel.trace.events(LOAD_SHED)
            assert len(events) == 2
            for event in events:
                assert event.t == 1.25


class TestStageCapTighteningOnly:
    """Bugfix 3: `TaskRecord.stage_cap` can tighten but never loosen."""

    def test_raising_a_cap_is_ignored(self):
        r = record(0, arrival=0.0, deadline=10.0)
        r.stage_cap = 2
        r.stage_cap = 3  # the old code would happily loosen to 3
        assert r.stage_cap == 2

    def test_lowering_a_cap_applies(self):
        r = record(0, arrival=0.0, deadline=10.0)
        r.stage_cap = 2
        r.stage_cap = 1
        assert r.stage_cap == 1

    def test_none_never_clears_a_granted_cap(self):
        r = record(0, arrival=0.0, deadline=10.0)
        r.stage_cap = 1
        r.stage_cap = None
        assert r.stage_cap == 1

    def test_constructor_assignment_goes_through_the_setter(self):
        r = TaskRecord(
            task_id=0, arrival_time=0.0, deadline=10.0, num_stages=3, stage_cap=2
        )
        assert r.stage_cap == 2
        r.stage_cap = 5
        assert r.stage_cap == 2

    def test_invalid_cap_rejected(self):
        r = record(0, arrival=0.0, deadline=10.0)
        with pytest.raises(ValueError, match="stage_cap"):
            r.stage_cap = 0

    def test_effective_stages_follow_the_tightened_cap(self):
        r = record(0, arrival=0.0, deadline=10.0, confidences=(0.4,))
        assert r.effective_stages == 3
        r.stage_cap = 2
        r.stage_cap = 3
        assert r.effective_stages == 2
        assert r.next_stage == 1
        r.stage_cap = 1
        assert r.complete  # one stage ran, cap is now one
