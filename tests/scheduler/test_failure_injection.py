"""Failure-injection tests: the scheduler must absorb lost stage results."""

import numpy as np
import pytest

from repro.scheduler import (
    FIFOPolicy,
    GPConfidencePredictor,
    PoolSimulator,
    RoundRobinPolicy,
    RTDeepIoTPolicy,
    SimulationConfig,
    TaskOracle,
)


def make_oracles(n, seed=0):
    rng = np.random.default_rng(seed)
    oracles = []
    for _ in range(n):
        c1 = rng.uniform(0.2, 0.9)
        c2 = c1 + 0.5 * (0.97 - c1)
        c3 = c2 + 0.5 * (0.97 - c2)
        confs = np.clip([c1, c2, c3], 0, 1)
        oracles.append(
            TaskOracle(
                confidences=tuple(float(c) for c in confs),
                predictions=(0, 0, 0),
                correct=tuple(bool(rng.random() < c) for c in confs),
            )
        )
    return oracles


def fitted_predictor(oracles):
    mat = np.array([o.confidences for o in oracles]).T
    return GPConfidencePredictor(num_classes=10, seed=0).fit(mat)


class TestFailureInjection:
    def test_zero_failure_prob_is_baseline(self):
        oracles = make_oracles(10)
        cfg = SimulationConfig(num_workers=2, concurrency=5, stage_times=(1, 1, 1),
                               latency_constraint=50.0, stage_failure_prob=0.0)
        result = PoolSimulator(oracles, FIFOPolicy(), cfg).run()
        assert result.num_fully_completed == 10

    def test_failures_slow_but_do_not_wedge(self):
        """With 30% stage failures and a loose deadline everything still
        finishes — the scheduler just retries; makespan grows."""
        oracles = make_oracles(10)
        base_cfg = SimulationConfig(num_workers=2, concurrency=5,
                                    stage_times=(1, 1, 1), latency_constraint=500.0)
        flaky_cfg = SimulationConfig(num_workers=2, concurrency=5,
                                     stage_times=(1, 1, 1), latency_constraint=500.0,
                                     stage_failure_prob=0.3, failure_seed=1)
        clean = PoolSimulator(oracles, RoundRobinPolicy(), base_cfg).run()
        flaky = PoolSimulator(oracles, RoundRobinPolicy(), flaky_cfg).run()
        assert flaky.num_fully_completed == 10
        assert flaky.makespan > clean.makespan
        assert flaky.busy_time > clean.busy_time

    def test_retry_reexecutes_same_stage(self):
        """A failed stage leaves the task's next_stage unchanged, so the
        follow-up execution targets the same stage index."""
        oracles = make_oracles(1)
        cfg = SimulationConfig(num_workers=1, concurrency=1,
                               stage_times=(1, 1, 1), latency_constraint=100.0,
                               stage_failure_prob=0.5, failure_seed=3)
        result = PoolSimulator(oracles, FIFOPolicy(), cfg).run()
        record = result.records[0]
        assert record.complete
        assert [o.stage for o in record.outcomes] == [0, 1, 2]

    def test_failures_under_deadline_hurt_accuracy(self):
        oracles = make_oracles(60, seed=2)
        predictor = fitted_predictor(oracles)
        kwargs = dict(num_workers=2, concurrency=10, stage_times=(1, 1, 1),
                      latency_constraint=8.0)
        clean = PoolSimulator(
            oracles, RTDeepIoTPolicy(predictor, k=1), SimulationConfig(**kwargs)
        ).run()
        flaky = PoolSimulator(
            oracles, RTDeepIoTPolicy(predictor, k=1),
            SimulationConfig(stage_failure_prob=0.4, failure_seed=5, **kwargs),
        ).run()
        assert flaky.stages_executed.sum() < clean.stages_executed.sum()
        assert flaky.accuracy <= clean.accuracy

    def test_failure_prob_validated(self):
        with pytest.raises(ValueError):
            SimulationConfig(stage_failure_prob=1.0)
        with pytest.raises(ValueError):
            SimulationConfig(stage_failure_prob=-0.1)

    def test_deterministic_given_failure_seed(self):
        oracles = make_oracles(20, seed=4)
        cfg = SimulationConfig(num_workers=2, concurrency=6, stage_times=(1, 1, 1),
                               latency_constraint=10.0, stage_failure_prob=0.25,
                               failure_seed=9)
        a = PoolSimulator(oracles, RoundRobinPolicy(), cfg).run()
        b = PoolSimulator(oracles, RoundRobinPolicy(), cfg).run()
        np.testing.assert_array_equal(a.stages_executed, b.stages_executed)
        assert a.accuracy == b.accuracy
