"""Utility-conservation property of the scheduler tier.

The accrued utility an :class:`EpisodeResult` reports must be *exactly* the
sum over served tasks of the utility at their served stage (the confidence
of the answer actually delivered) — no double counting across preemption,
anytime serving, eviction, or shedding.  And no task is ever served past
its deadline or past its effective stage budget.

Runs seeded episodes across the policy generations (gen-1 under the
classic contract, gen-2 with anytime serving and preemption) with
hypothesis-drawn workload shapes.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduler import (
    EDFPolicy,
    FIFOPolicy,
    Gen2Policy,
    GPConfidencePredictor,
    PoolSimulator,
    RTDeepIoTPolicy,
    SimulationConfig,
    TaskOracle,
    poisson_arrivals,
)


def random_oracles(rng, n):
    oracles = []
    for _ in range(n):
        confs = np.sort(rng.uniform(0.1, 1.0, 3))
        oracles.append(
            TaskOracle(
                confidences=tuple(float(c) for c in confs),
                predictions=(0, 1, 2),
                correct=tuple(bool(rng.random() < c) for c in confs),
            )
        )
    return oracles


def fitted_predictor(rng):
    curves = np.sort(rng.uniform(0.1, 1.0, size=(3, 40)), axis=0)
    return GPConfidencePredictor(num_classes=10, max_fit_points=40, seed=0).fit(
        curves
    )


def policy_for(name, rng, num_workers):
    if name == "fifo":
        return FIFOPolicy()
    if name == "edf":
        return EDFPolicy()
    if name == "utility":
        return RTDeepIoTPolicy(fitted_predictor(rng), k=1)
    return Gen2Policy(
        predictor=fitted_predictor(rng),
        num_workers=num_workers,
        stage_time_s=1.0,
    )


POLICY_NAMES = ["fifo", "edf", "utility", "gen2"]


def served_records(result):
    return [
        r for r in result.records if r.outcomes and not r.evicted and not r.shed
    ]


@given(
    seed=st.integers(0, 10_000),
    n=st.integers(1, 25),
    workers=st.integers(1, 3),
    concurrency=st.integers(1, 8),
    deadline=st.floats(1.0, 10.0),
    rate=st.floats(0.3, 3.0),
    policy_idx=st.integers(0, len(POLICY_NAMES) - 1),
    anytime=st.booleans(),
)
@settings(max_examples=50, deadline=None)
def test_utility_conservation(
    seed, n, workers, concurrency, deadline, rate, policy_idx, anytime
):
    rng = np.random.default_rng(seed)
    oracles = random_oracles(rng, n)
    arrivals = poisson_arrivals(n, rate=rate, seed=seed)
    config = SimulationConfig(
        num_workers=workers,
        concurrency=concurrency,
        stage_times=(1.0, 1.0, 1.0),
        latency_constraint=deadline,
        anytime=anytime,
    )
    policy = policy_for(POLICY_NAMES[policy_idx], rng, workers)
    result = PoolSimulator(
        oracles, policy, config, arrival_times=arrivals
    ).run()

    served = served_records(result)

    # Conservation: the episode's accrued utility is exactly the sum over
    # served tasks of the utility at their served stage.
    expected = sum(r.latest_confidence for r in served)
    assert np.isclose(result.accrued_utility, expected, atol=1e-9)

    # A served answer comes from the task's own oracle at the stage served.
    for r in served:
        assert r.latest_confidence == oracles[r.task_id].confidences[
            r.stages_done - 1
        ]

    for r in result.records:
        # Nobody is served past their deadline...
        if r.finish_time is not None and not r.evicted and not r.shed:
            assert r.finish_time <= r.deadline + 1e-9
        # ...or past their effective stage budget (tightened caps included).
        assert r.stages_done <= r.effective_stages
        if r.stage_cap is not None:
            assert r.stages_done <= max(r.stage_cap, r.stages_done)
            assert r.effective_stages <= r.stage_cap
        # Anytime serving requires something to serve and is never late.
        if r.anytime_served:
            assert r.outcomes
            assert not r.evicted
            assert r.finish_time <= r.deadline + 1e-9
    assert result.num_late == 0


@given(seed=st.integers(0, 10_000))
@settings(max_examples=15, deadline=None)
def test_gen2_overload_anytime_contract(seed):
    """At 3x overload the anytime contract holds for every seed.

    A task holding at least one stage result is *always* served (on time,
    from its best-so-far exit); the only tasks that leave empty-handed are
    those for which not even one stage was feasible — an unlucky straggler
    whose admission slot opened with less than one stage-time of slack
    (non-preemptive unit stages quantize capacity; the vast majority are
    still served).
    """
    rng = np.random.default_rng(seed)
    n, workers = 30, 2
    oracles = random_oracles(rng, n)
    arrivals = poisson_arrivals(n, rate=3.0 * workers / 3.0, seed=seed)
    config = SimulationConfig(
        num_workers=workers,
        concurrency=8,
        stage_times=(1.0, 1.0, 1.0),
        latency_constraint=6.0,
        anytime=True,
    )
    policy = policy_for("gen2", rng, workers)
    result = PoolSimulator(
        oracles, policy, config, arrival_times=arrivals
    ).run()
    served = served_records(result)
    assert result.num_late == 0
    if served:
        assert min(r.stages_done for r in served) >= 1
    for r in result.records:
        if r.outcomes:  # anything computed is always delivered
            assert not r.evicted and not r.shed
    assert len(served) >= int(0.85 * n)
