"""Dispatch-time deadline enforcement and RuntimeConfig validation.

The eviction daemon only samples every ``daemon_interval`` seconds, so a
task whose deadline passed while a batch was held back (drain window) or
while it waited in the timeline used to slip through and execute another
stage.  The scheduler now re-checks deadlines at dispatch time: these
tests run with the daemon effectively disabled (a huge interval) so any
eviction observed *must* come from the dispatch-time re-check.
"""

import numpy as np
import pytest

from repro import telemetry
from repro.nn.resnet import StagedResNet, StagedResNetConfig
from repro.scheduler.policies import FIFOPolicy, RoundRobinPolicy
from repro.scheduler.runtime import RuntimeConfig, StagedInferenceRuntime
from repro.service.messages import InferRequest
from repro.telemetry.trace import DEADLINE_MISS, STAGE_DISPATCH


@pytest.fixture(scope="module")
def small_model():
    # Heavy enough (16x16 inputs, 8/16 channels) that a backlog of tasks
    # reliably overruns the tight constraints below on this hardware.
    model = StagedResNet(
        StagedResNetConfig(
            num_classes=5, image_size=16, stage_channels=(8, 16), blocks_per_stage=1
        )
    )
    model.eval()
    # Warm the no-grad scratch buffers so timing tests see steady state.
    model.predict_proba(np.zeros((2, 3, 16, 16)))
    return model


class TestRuntimeConfigValidation:
    def test_drain_window_without_batching_rejected(self):
        with pytest.raises(ValueError, match="max_batch"):
            RuntimeConfig(max_batch=1, drain_window=0.01)

    def test_drain_window_with_batching_accepted(self):
        config = RuntimeConfig(max_batch=4, drain_window=0.01)
        assert config.drain_window == 0.01

    def test_zero_drain_window_unbatched_accepted(self):
        assert RuntimeConfig(max_batch=1, drain_window=0.0).max_batch == 1

    def test_infer_request_mirrors_the_rule(self):
        with pytest.raises(ValueError, match="max_batch"):
            InferRequest(
                model_id="m",
                inputs=np.zeros((1, 3, 8, 8)),
                max_batch=1,
                drain_window_s=0.5,
            )

    def test_infer_request_valid_combination(self):
        request = InferRequest(
            model_id="m",
            inputs=np.zeros((1, 3, 8, 8)),
            max_batch=4,
            drain_window_s=0.5,
        )
        assert request.drain_window_s == 0.5


class TestDispatchTimeDeadlineCheck:
    def test_overdue_tasks_evicted_not_dispatched(self, small_model):
        """With the daemon asleep, expired tasks must still be evicted."""
        inputs = np.random.default_rng(1).normal(size=(48, 3, 16, 16))
        runtime = StagedInferenceRuntime(
            small_model,
            FIFOPolicy(),
            RuntimeConfig(
                num_workers=1,
                latency_constraint=0.03,
                daemon_interval=30.0,  # daemon never fires during the run
            ),
        )
        runtime.submit(inputs)
        results = runtime.run_until_complete()
        # 48 tasks x 2 stages on one worker far exceeds 30ms: the
        # dispatch-time re-check must have evicted the tail of the queue.
        assert any(r.evicted for r in results)
        # An evicted task was cut short; a surviving one ran every stage.
        for r in results:
            if not r.evicted:
                assert len(r.outcomes) == small_model.num_stages

    def test_no_dispatch_after_deadline_with_drain_window(self, small_model):
        """Trace invariant: every dispatched batch member was within its
        deadline at dispatch time, even across drain-window holds."""
        inputs = np.random.default_rng(2).normal(size=(96, 3, 16, 16))
        constraint = 0.03
        with telemetry.session() as t:
            runtime = StagedInferenceRuntime(
                small_model,
                RoundRobinPolicy(),
                RuntimeConfig(
                    num_workers=2,
                    latency_constraint=constraint,
                    daemon_interval=30.0,
                    max_batch=4,
                    drain_window=0.02,
                ),
            )
            runtime.submit(inputs)
            results = runtime.run_until_complete()
            dispatches = t.trace.events(STAGE_DISPATCH)
            assert dispatches, "nothing was ever dispatched"
            for event in dispatches:
                assert event.t <= constraint + 1e-9, (
                    f"batch {event.task_ids} dispatched at {event.t:.4f}s, "
                    f"after the {constraint}s deadline"
                )
            # The workload overruns the constraint, so misses were traced.
            assert any(r.evicted for r in results)
            misses = t.trace.events(DEADLINE_MISS)
            assert {e.task_id for e in misses} == {
                r.task_id for r in results if r.evicted
            }
            assert t.registry.counters()["runtime.deadline_misses"] == len(
                {e.task_id for e in misses}
            )

    def test_comfortable_deadline_unaffected(self, small_model):
        """The re-check must not evict anything when deadlines are loose."""
        inputs = np.random.default_rng(3).normal(size=(6, 3, 16, 16))
        runtime = StagedInferenceRuntime(
            small_model,
            RoundRobinPolicy(),
            RuntimeConfig(
                num_workers=2,
                latency_constraint=60.0,
                max_batch=3,
                drain_window=0.01,
            ),
        )
        runtime.submit(inputs)
        results = runtime.run_until_complete()
        assert all(not r.evicted for r in results)
        assert all(len(r.outcomes) == small_model.num_stages for r in results)
