"""Property-based invariants of the worker-pool simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduler import (
    FIFOPolicy,
    PoolSimulator,
    RoundRobinPolicy,
    SimulationConfig,
    TaskOracle,
)


def random_oracles(rng, n):
    oracles = []
    for _ in range(n):
        confs = np.sort(rng.uniform(0.1, 1.0, 3))
        oracles.append(
            TaskOracle(
                confidences=tuple(float(c) for c in confs),
                predictions=(0, 1, 2),
                correct=tuple(bool(rng.random() < c) for c in confs),
            )
        )
    return oracles


POLICIES = [FIFOPolicy, RoundRobinPolicy]


@given(
    seed=st.integers(0, 10_000),
    n=st.integers(1, 25),
    workers=st.integers(1, 4),
    concurrency=st.integers(1, 8),
    deadline=st.floats(0.5, 12.0),
    policy_idx=st.integers(0, len(POLICIES) - 1),
)
@settings(max_examples=60, deadline=None)
def test_simulator_invariants(seed, n, workers, concurrency, deadline, policy_idx):
    rng = np.random.default_rng(seed)
    oracles = random_oracles(rng, n)
    config = SimulationConfig(
        num_workers=workers,
        concurrency=concurrency,
        stage_times=(1.0, 1.0, 1.0),
        latency_constraint=deadline,
    )
    result = PoolSimulator(oracles, POLICIES[policy_idx](), config).run()

    # Every submitted task is accounted for exactly once.
    assert result.num_tasks == n
    assert sorted(r.task_id for r in result.records) == list(range(n))

    for record in result.records:
        # Terminal state reached.
        assert record.done
        # Stage outcomes are the consecutive prefix 0..k-1.
        assert [o.stage for o in record.outcomes] == list(range(record.stages_done))
        assert record.stages_done <= 3
        # Nothing finishes before it arrives.
        if record.finish_time is not None:
            assert record.finish_time >= record.arrival_time - 1e-9
            # Evicted tasks leave exactly at their deadline; completed ones
            # never after it (stages that can't fit aren't started).
            assert record.finish_time <= record.deadline + 1e-9

    # Resource accounting: busy time never exceeds workers x makespan, and
    # equals the time of all started stages.
    assert result.busy_time <= result.num_workers * result.makespan + 1e-9
    assert 0.0 <= result.utilization <= 1.0 + 1e-9

    # Work conservation: completed stages cost exactly their stage times.
    executed_time = float(result.stages_executed.sum())  # stage time 1.0 each
    assert result.busy_time >= executed_time - 1e-9

    # Accuracy is a proper frequency.
    assert 0.0 <= result.accuracy <= 1.0


@given(seed=st.integers(0, 10_000))
@settings(max_examples=20, deadline=None)
def test_generous_deadline_completes_everything(seed):
    rng = np.random.default_rng(seed)
    oracles = random_oracles(rng, 8)
    config = SimulationConfig(
        num_workers=2, concurrency=8, stage_times=(1.0, 1.0, 1.0),
        latency_constraint=1000.0,
    )
    result = PoolSimulator(oracles, RoundRobinPolicy(), config).run()
    assert result.num_fully_completed == 8
    assert result.num_evicted == 0
    # Final answers equal each oracle's last stage.
    for record, oracle in zip(result.records, oracles):
        assert record.latest_confidence == oracle.confidences[-1]
