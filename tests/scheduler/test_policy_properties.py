"""Property-based invariants every scheduling policy must satisfy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduler import (
    ConstantSlopePredictor,
    FIFOPolicy,
    GPConfidencePredictor,
    RoundRobinPolicy,
    RTDeepIoTPolicy,
    TaskView,
)


def _fit_predictors():
    rng = np.random.default_rng(0)
    base = rng.uniform(0.2, 0.8, 200)
    mat = np.stack([base, np.clip(base + 0.15, 0, 1), np.clip(base + 0.25, 0, 1)])
    gp = GPConfidencePredictor(num_classes=10, seed=0).fit(mat)
    dc = ConstantSlopePredictor(num_classes=10).fit(mat)
    return gp, dc


GP_PREDICTOR, DC_PREDICTOR = _fit_predictors()


def random_views(rng, n):
    views = []
    for tid in range(n):
        stages_done = int(rng.integers(0, 4))
        confs = tuple(
            float(c) for c in np.sort(rng.uniform(0.1, 1.0, stages_done))
        )
        views.append(
            TaskView(
                task_id=tid,
                arrival_time=float(rng.uniform(0, 5)),
                deadline=float(rng.uniform(6, 20)),
                num_stages=3,
                stages_done=stages_done,
                confidences=confs,
            )
        )
    return views


def policy_instances():
    return [
        RTDeepIoTPolicy(GP_PREDICTOR, k=1),
        RTDeepIoTPolicy(GP_PREDICTOR, k=3),
        RTDeepIoTPolicy(GP_PREDICTOR, k=2, dynamic=False),
        RoundRobinPolicy(),
        FIFOPolicy(),
    ]


@given(seed=st.integers(0, 5000), n=st.integers(0, 12))
@settings(max_examples=50, deadline=None)
def test_plans_are_valid_work(seed, n):
    """Every planned item must be executable: an unfinished task, stages in
    range, per-task stages consecutive starting at the task's frontier, and
    no duplicate (task, stage) pairs."""
    rng = np.random.default_rng(seed)
    views = random_views(rng, n)
    by_id = {v.task_id: v for v in views}
    for policy in policy_instances():
        plan = policy.plan(views, now=0.0)
        assert len(set(plan)) == len(plan), policy.name
        next_expected = {}
        for tid, stage in plan:
            view = by_id[tid]
            assert view.stages_done < view.num_stages, policy.name
            expected = next_expected.get(tid, view.stages_done)
            assert stage == expected, policy.name
            assert 0 <= stage < view.num_stages
            next_expected[tid] = stage + 1


@given(seed=st.integers(0, 5000))
@settings(max_examples=30, deadline=None)
def test_lookahead_never_exceeds_k(seed):
    rng = np.random.default_rng(seed)
    views = random_views(rng, 8)
    for k in (1, 2, 5):
        plan = RTDeepIoTPolicy(GP_PREDICTOR, k=k).plan(views, 0.0)
        assert len(plan) <= k


@given(seed=st.integers(0, 5000))
@settings(max_examples=30, deadline=None)
def test_empty_or_finished_views_produce_empty_plans(seed):
    rng = np.random.default_rng(seed)
    finished = [
        TaskView(task_id=i, arrival_time=0.0, deadline=10.0, num_stages=3,
                 stages_done=3, confidences=(0.3, 0.5, 0.7))
        for i in range(int(rng.integers(0, 4)))
    ]
    for policy in policy_instances():
        assert policy.plan([], 0.0) == []
        assert policy.plan(finished, 0.0) == []
