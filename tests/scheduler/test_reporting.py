"""Tests for episode reporting / ASCII rendering."""

import numpy as np
import pytest

from repro.scheduler import (
    FIFOPolicy,
    PoolSimulator,
    SimulationConfig,
    TaskOracle,
)
from repro.scheduler.reporting import (
    confidence_curve_plot,
    episode_summary,
    render_episode,
    stage_histogram,
    task_table,
)


@pytest.fixture(scope="module")
def episode():
    oracles = [
        TaskOracle(confidences=(0.3, 0.6, 0.9), predictions=(0, 0, 0),
                   correct=(False, True, True))
        for _ in range(6)
    ]
    config = SimulationConfig(num_workers=2, concurrency=6,
                              stage_times=(1, 1, 1), latency_constraint=4.0)
    return PoolSimulator(oracles, FIFOPolicy(), config).run()


class TestReporting:
    def test_summary_mentions_key_metrics(self, episode):
        text = episode_summary(episode)
        assert "service accuracy" in text
        assert "utilization" in text
        assert f"tasks: {episode.num_tasks}" in text

    def test_task_table_rows(self, episode):
        text = task_table(episode)
        for record in episode.records:
            assert f"\n{record.task_id:>5} " in "\n" + text

    def test_task_table_truncates(self, episode):
        text = task_table(episode, max_rows=2)
        assert "more tasks" in text

    def test_histogram_counts_sum(self, episode):
        text = stage_histogram(episode)
        counts = [int(line.split("|")[1].split()[0])
                  for line in text.splitlines()[1:]]
        assert sum(counts) == episode.num_tasks

    def test_render_episode_combines_sections(self, episode):
        text = render_episode(episode)
        assert "service accuracy" in text
        assert "stages | tasks" in text

    def test_confidence_curve_plot(self):
        curves = np.array([[0.0, 0.5, 1.0], [0.2, 0.4, 0.6]])
        text = confidence_curve_plot(curves, width=20, labels=["a", "b"])
        lines = text.splitlines()
        assert len(lines) == 3
        assert "a" in lines[1] and "b" in lines[2]
        # Stage markers 1..3 appear.
        assert "1" in lines[1] and "3" in lines[1]

    def test_confidence_plot_validation(self):
        with pytest.raises(ValueError):
            confidence_curve_plot(np.array([0.5, 0.6]))
        with pytest.raises(ValueError):
            confidence_curve_plot(np.array([[1.5]]))
