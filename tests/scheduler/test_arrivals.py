"""Tests for arrival processes and open-loop simulation."""

import numpy as np
import pytest

from repro.scheduler import (
    FIFOPolicy,
    PoolSimulator,
    RoundRobinPolicy,
    SimulationConfig,
    TaskOracle,
)
from repro.scheduler.arrivals import (
    bursty_arrivals,
    constant_arrivals,
    poisson_arrivals,
)


def oracle():
    return TaskOracle(confidences=(0.4, 0.6, 0.9), predictions=(0, 0, 0),
                      correct=(False, True, True))


class TestArrivalGenerators:
    def test_constant_spacing(self):
        times = constant_arrivals(4, interval=2.0, start=1.0)
        assert times == [1.0, 3.0, 5.0, 7.0]

    def test_poisson_rate_approximately_honored(self):
        times = poisson_arrivals(5000, rate=4.0, seed=0)
        duration = times[-1] - times[0]
        assert 5000 / duration == pytest.approx(4.0, rel=0.1)

    def test_poisson_monotone_and_deterministic(self):
        a = poisson_arrivals(50, rate=2.0, seed=7)
        b = poisson_arrivals(50, rate=2.0, seed=7)
        assert a == b
        assert all(x < y for x, y in zip(a, a[1:]))

    def test_bursty_has_higher_variance_than_poisson(self):
        """Burstiness shows up as a larger coefficient of variation of
        inter-arrival gaps than the exponential's CV of 1."""
        bursty = np.diff(bursty_arrivals(4000, quiet_rate=0.5, burst_rate=20.0,
                                         seed=0))
        cv = bursty.std() / bursty.mean()
        assert cv > 1.3

    def test_validation(self):
        with pytest.raises(ValueError):
            constant_arrivals(3, interval=0.0)
        with pytest.raises(ValueError):
            poisson_arrivals(3, rate=0.0)
        with pytest.raises(ValueError):
            bursty_arrivals(3, quiet_rate=0.0, burst_rate=1.0)
        with pytest.raises(ValueError):
            poisson_arrivals(-1, rate=1.0)


class TestOpenLoopSimulation:
    def test_spaced_arrivals_all_complete(self):
        """Arrivals far apart: each task has the pool to itself."""
        oracles = [oracle() for _ in range(4)]
        arrivals = constant_arrivals(4, interval=10.0)
        cfg = SimulationConfig(num_workers=1, concurrency=4,
                               stage_times=(1, 1, 1), latency_constraint=5.0)
        result = PoolSimulator(oracles, FIFOPolicy(), cfg,
                               arrival_times=arrivals).run()
        assert result.num_fully_completed == 4
        for record, expected in zip(result.records, arrivals):
            assert record.arrival_time == expected
            assert record.finish_time == pytest.approx(expected + 3.0)

    def test_nothing_runs_before_arrival(self):
        oracles = [oracle()]
        cfg = SimulationConfig(num_workers=2, concurrency=2,
                               stage_times=(1, 1, 1), latency_constraint=10.0)
        result = PoolSimulator(oracles, FIFOPolicy(), cfg,
                               arrival_times=[7.0]).run()
        record = result.records[0]
        assert record.finish_time == pytest.approx(10.0)  # 7 + 3 stages

    def test_queueing_delay_counts_against_deadline(self):
        """A burst bigger than the pool: late tasks expire while queueing."""
        oracles = [oracle() for _ in range(6)]
        arrivals = [0.0] * 6  # simultaneous burst
        cfg = SimulationConfig(num_workers=1, concurrency=2,
                               stage_times=(1, 1, 1), latency_constraint=4.0)
        result = PoolSimulator(oracles, FIFOPolicy(), cfg,
                               arrival_times=arrivals).run()
        assert result.num_fully_completed < 6
        assert result.num_evicted >= 1
        # Every task is accounted for.
        assert result.num_tasks == 6

    def test_closed_loop_unchanged_without_arrivals(self):
        oracles = [oracle() for _ in range(3)]
        cfg = SimulationConfig(num_workers=1, concurrency=1,
                               stage_times=(1, 1, 1), latency_constraint=50.0)
        result = PoolSimulator(oracles, FIFOPolicy(), cfg).run()
        # Closed loop: the second task's clock starts at its admission.
        assert result.records[1].arrival_time == pytest.approx(3.0)
        assert result.num_fully_completed == 3

    def test_overload_degrades_gracefully_under_bursts(self):
        """Bursty overload evicts more than smooth traffic of equal volume."""
        oracles = [oracle() for _ in range(40)]
        cfg = SimulationConfig(num_workers=1, concurrency=8,
                               stage_times=(1, 1, 1), latency_constraint=6.0)
        smooth = PoolSimulator(
            oracles, RoundRobinPolicy(), cfg,
            arrival_times=poisson_arrivals(40, rate=0.30, seed=1),
        ).run()
        bursty = PoolSimulator(
            oracles, RoundRobinPolicy(), cfg,
            arrival_times=bursty_arrivals(40, quiet_rate=0.06, burst_rate=3.0,
                                          seed=1),
        ).run()
        assert bursty.num_evicted >= smooth.num_evicted

    def test_validation(self):
        oracles = [oracle(), oracle()]
        with pytest.raises(ValueError):
            PoolSimulator(oracles, FIFOPolicy(), SimulationConfig(),
                          arrival_times=[0.0])
        with pytest.raises(ValueError):
            PoolSimulator(oracles, FIFOPolicy(), SimulationConfig(),
                          arrival_times=[0.0, -1.0])
