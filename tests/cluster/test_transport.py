"""Every service message survives the process-replica boundary.

The process backend pickles request/response dataclasses over pipes and
detours their large ndarray fields through a shared-memory arena
(:mod:`repro.cluster.transport`).  A dataclass that silently loses a
field in transit corrupts results without any error — so these tests pin,
for all eleven endpoints' request *and* response types (plus
``RejectedResponse`` and the typed errors that cross the boundary):

- plain ``pickle`` round-trips reproduce every field exactly;
- the shm path (``encode_payload`` → pickle → ``decode_payload``)
  reproduces every field exactly, through a *separately attached* arena
  handle as a real second process would see it;
- encoding never mutates the original (retries re-encode pristine
  requests) and releases leave the arena leak-free;
- exceptions keep their typed payloads (``retry_after_s``,
  ``last_error``) instead of degrading to bare messages.
"""

import dataclasses
import pickle

import numpy as np
import pytest

from repro.admission import AdmissionConfig
from repro.cluster import (
    ReplicaDownError,
    ResponseLostError,
    ShmArena,
    ShmStaleBlockError,
)
from repro.cluster.transport import (
    MIN_SHM_BYTES,
    decode_payload,
    encode_payload,
    safe_exception,
)
from repro.faults import (
    BackpressureError,
    CircuitOpenError,
    RequestTimeoutError,
    RetriesExhaustedError,
    TransientServiceError,
)
from repro.nn.resnet import StagedResNetConfig
from repro.service.messages import (
    CalibrateRequest,
    CalibrateResponse,
    ClassifyRequest,
    ClassifyResponse,
    DeepSenseTrainRequest,
    DeepSenseTrainResponse,
    DeleteRequest,
    DeleteResponse,
    EstimateRequest,
    EstimateResponse,
    EstimatorTrainRequest,
    EstimatorTrainResponse,
    InferRequest,
    InferResponse,
    LabelRequest,
    LabelResponse,
    ProfileRequest,
    ProfileResponse,
    ReduceRequest,
    ReduceResponse,
    RejectedResponse,
    RejectedResponse as _RejectedResponse,  # noqa: F401 (re-export check)
    TrainRequest,
    TrainResponse,
)

rng = np.random.default_rng(7)

#: Big enough that every float image/feature block takes the shm path.
IMAGES = rng.normal(size=(6, 3, 8, 8))
LABELS = rng.integers(0, 3, size=6)
FEATURES = rng.normal(size=(8, 16))
FEATURE_LABELS = rng.integers(0, 3, size=8)
TARGETS = rng.normal(size=8)
SENSOR = rng.normal(size=(6, 6, 4, 8))

TINY = StagedResNetConfig(
    num_classes=3, image_size=8, stage_channels=(4, 8), blocks_per_stage=1, seed=0
)

#: One representative instance per request/response dataclass of all
#: eleven endpoints, with every optional field exercised at least once.
MESSAGES = [
    TrainRequest(IMAGES, LABELS, model_config=TINY, epochs=2, idempotency_key="k1"),
    TrainResponse("m1", epochs=2, final_loss=0.42, stage_accuracies=(0.5, 0.75)),
    LabelRequest(FEATURES, FEATURE_LABELS, FEATURES + 1.0, num_classes=3, rounds=2),
    LabelResponse(LABELS.copy(), rng.uniform(size=6), method="sensegan"),
    ReduceRequest("m1", width_fraction=0.5, epochs=1, idempotency_key="k2"),
    ReduceResponse("m1-r", parameters=10, original_parameters=100, class_map={0: 1}),
    ProfileRequest("m1", normalize=True),
    ProfileResponse(stage_times_ms=(1.5, 2.5), total_time_ms=4.0),
    CalibrateRequest("m1", IMAGES, LABELS, epochs=1),
    CalibrateResponse(alphas=(0.9,), ece_before=(0.2,), ece_after=(0.1,)),
    RejectedResponse("train", "rate-limit", retry_after_s=0.25, message="slow down"),
    DeleteRequest("m1", cascade=True, idempotency_key="k3"),
    DeleteResponse(deleted=("m1", "m1-r")),
    InferRequest(
        "m1",
        IMAGES,
        latency_constraint_s=1.0,
        max_batch=4,
        drain_window_s=0.01,
        admission=AdmissionConfig(max_queue_depth=8, retry_after_s=0.02),
    ),
    InferResponse(
        predictions=[1, None],
        confidences=[0.8, None],
        stages_executed=[2, 0],
        evicted=[False, True],
        metrics={"counters": {"x": 1.0}},
        degraded=[False, True],
        served_stage=[1, None],
        shed=[False, False],
    ),
    DeepSenseTrainRequest(SENSOR, LABELS, steps=2, idempotency_key="k4"),
    DeepSenseTrainResponse("ds1", train_accuracy=0.9, steps=2),
    ClassifyRequest("m1", IMAGES, micro_batch=4),
    ClassifyResponse(LABELS.copy(), rng.uniform(size=6), metrics={"gauges": {}}),
    EstimatorTrainRequest(FEATURES, TARGETS, steps=2, idempotency_key="k5"),
    EstimatorTrainResponse("e1", train_mae=0.1, coverage_90=0.92),
    EstimateRequest("e1", FEATURES, confidence_level=0.8),
    EstimateResponse(TARGETS, TARGETS * 0.1, TARGETS - 1, TARGETS + 1, 0.8),
]

ids = [type(m).__name__ for m in MESSAGES]


def assert_messages_equal(a, b):
    """Field-by-field equality with ndarray awareness (one level deep —
    message fields are arrays, primitives, tuples/lists/dicts of
    primitives, or nested config dataclasses that define ``__eq__``)."""
    assert type(a) is type(b)
    for f in dataclasses.fields(a):
        va, vb = getattr(a, f.name), getattr(b, f.name)
        if isinstance(va, np.ndarray):
            assert isinstance(vb, np.ndarray), f.name
            assert va.dtype == vb.dtype, f.name
            assert np.array_equal(va, vb), f.name
        else:
            assert va == vb, f.name


@pytest.fixture
def arena_pair():
    """One arena, two handles: the creator and a plain attach — the same
    two views a parent and its child hold of a transport segment."""
    writer = ShmArena.create(1 << 20, max_blocks=64)
    reader = ShmArena.attach(writer.name, max_blocks=64)
    yield writer, reader
    reader.close()
    writer.destroy()


class TestPickleRoundTrip:
    @pytest.mark.parametrize("message", MESSAGES, ids=ids)
    def test_every_message_survives_pickle(self, message):
        assert_messages_equal(message, pickle.loads(pickle.dumps(message)))


class TestShmRoundTrip:
    @pytest.mark.parametrize("message", MESSAGES, ids=ids)
    def test_every_message_survives_the_shm_path(self, message, arena_pair):
        writer, reader = arena_pair
        encoded, refs = encode_payload(message, writer)
        decoded = decode_payload(pickle.loads(pickle.dumps(encoded)), reader)
        assert_messages_equal(message, decoded)
        for ref in refs:
            writer.decref(ref.index, ref.generation)
        writer.assert_no_leaks()

    def test_large_arrays_take_the_arena_not_the_pipe(self, arena_pair):
        writer, _ = arena_pair
        message = ClassifyRequest("m", IMAGES)
        encoded, refs = encode_payload(message, writer)
        assert refs, "a multi-KB input should be offloaded"
        # The pickled control message no longer carries the bulk bytes.
        assert len(pickle.dumps(encoded)) < IMAGES.nbytes / 4
        for ref in refs:
            writer.decref(ref.index, ref.generation)

    def test_small_arrays_stay_inline(self, arena_pair):
        writer, reader = arena_pair
        tiny = np.zeros(4)
        assert tiny.nbytes < MIN_SHM_BYTES
        message = ClassifyResponse(tiny, tiny)
        encoded, refs = encode_payload(message, writer)
        assert encoded is message and refs == []
        assert_messages_equal(message, decode_payload(encoded, reader))

    def test_encoding_never_mutates_the_original(self, arena_pair):
        writer, _ = arena_pair
        message = ClassifyRequest("m", IMAGES)
        encoded, refs = encode_payload(message, writer)
        assert encoded is not message
        assert message.inputs is IMAGES  # pristine for retries
        assert not isinstance(message.inputs, type(refs[0]))
        for ref in refs:
            writer.decref(ref.index, ref.generation)

    def test_arena_exhaustion_falls_back_inline(self):
        cramped = ShmArena.create(4096, max_blocks=4)
        try:
            fallbacks = []
            message = ClassifyRequest("m", IMAGES)  # far bigger than 4 KiB
            encoded, refs = encode_payload(message, cramped, fallbacks=fallbacks)
            assert refs == [] and "inputs" in fallbacks
            assert_messages_equal(message, decode_payload(encoded, cramped))
            cramped.assert_no_leaks()
        finally:
            cramped.destroy()

    def test_decoding_a_stale_ref_raises_loudly(self, arena_pair):
        writer, reader = arena_pair
        encoded, refs = encode_payload(ClassifyRequest("m", IMAGES), writer)
        for ref in refs:
            writer.decref(ref.index, ref.generation)  # freed before the "peer" reads it
        with pytest.raises(ShmStaleBlockError):
            decode_payload(pickle.loads(pickle.dumps(encoded)), reader)


class TestErrorRoundTrip:
    """Typed errors crossing the boundary keep their typed payloads."""

    def test_backpressure_keeps_its_retry_hint(self):
        err = pickle.loads(
            pickle.dumps(
                BackpressureError(
                    "busy", retry_after_s=0.5, reason="queue-full", endpoint="infer"
                )
            )
        )
        assert isinstance(err, BackpressureError)
        assert err.retry_after_s == 0.5
        assert err.reason == "queue-full"
        assert err.endpoint == "infer"
        assert str(err) == "busy"

    def test_retries_exhausted_keeps_its_cause(self):
        inner = TransientServiceError("flaky")
        err = pickle.loads(pickle.dumps(RetriesExhaustedError("gave up", inner)))
        assert isinstance(err, RetriesExhaustedError)
        assert isinstance(err.last_error, TransientServiceError)
        assert str(err.last_error) == "flaky"

    @pytest.mark.parametrize(
        "error",
        [
            TransientServiceError("503"),
            ReplicaDownError("r0 died"),
            ResponseLostError("vanished"),
            ShmStaleBlockError("stale generation"),
            RequestTimeoutError("deadline"),
            CircuitOpenError("open"),
        ],
        ids=lambda e: type(e).__name__,
    )
    def test_boundary_errors_round_trip_with_type_and_message(self, error):
        clone = pickle.loads(pickle.dumps(error))
        assert type(clone) is type(error)
        assert str(clone) == str(error)

    def test_stale_block_error_stays_retryable_across_the_boundary(self):
        clone = pickle.loads(pickle.dumps(ShmStaleBlockError("gen 3 != 4")))
        assert isinstance(clone, TransientServiceError)

    def test_safe_exception_passes_picklable_errors_through(self):
        err = ReplicaDownError("down")
        assert safe_exception(err) is err

    def test_safe_exception_replaces_unpicklable_errors(self):
        class Unpicklable(RuntimeError):
            def __init__(self):
                super().__init__("bad")
                self.closure = lambda: None  # cannot pickle

        replacement = safe_exception(Unpicklable())
        assert isinstance(replacement, TransientServiceError)
        assert "Unpicklable" in str(replacement)
        pickle.loads(pickle.dumps(replacement))
