"""``cluster_snapshot``: one consistent metrics view of the whole tier.

Two contracts, one per backend:

- **Exactness when quiescent** — merged counters are the sums of the
  per-replica counters plus the router's own (thread backend, where the
  ground truth is directly readable).
- **Read-consistency under racing writers** — each replica registry is
  captured in one critical section, so a cross-instrument invariant a
  writer maintains (here: ``admitted >= served``) holds in every merged
  snapshot taken while writers hammer the registries.
- **Child registries are included** — in the process backend the serve
  counters live in *children*; the merged view must fold in their
  shipped snapshots, not just the parents' transport counters.
"""

import threading

import numpy as np

from repro.cluster import RouterConfig, make_cluster
from repro.nn.resnet import StagedResNetConfig
from repro.service.messages import ClassifyRequest, TrainRequest

from .conftest import TINY


class TestExactness:
    def test_merged_counters_are_the_per_replica_sums(self, tiny_model):
        model, dataset, predictor = tiny_model
        with make_cluster(3, config=RouterConfig(replication_factor=2)) as router:
            gid = router.register_model(
                "sum", model, train_set=dataset, predictor=predictor
            )
            request = ClassifyRequest(model_id=gid, inputs=dataset.inputs[:2])
            for _ in range(9):
                router.classify(request)
            snap = router.cluster_snapshot()
            per_replica = sum(
                r.metrics.counter("replica.calls.classify").value
                for r in router.replicas.values()
            )
            assert per_replica == 9
            assert snap["counters"]["replica.calls.classify"] == 9
            # The router's own instruments ride along in the same view.
            assert snap["counters"]["router.calls.classify"] == 9

    def test_latency_histograms_aggregate_across_replicas(self, tiny_model):
        model, dataset, predictor = tiny_model
        with make_cluster(2, config=RouterConfig(replication_factor=2)) as router:
            gid = router.register_model(
                "hist", model, train_set=dataset, predictor=predictor
            )
            request = ClassifyRequest(model_id=gid, inputs=dataset.inputs[:2])
            for _ in range(6):
                router.classify(request)
            merged = router.cluster_snapshot()["histograms"]["replica.latency_ms"]
            assert merged["count"] == 6  # bucket counts added exactly


class TestReadConsistency:
    def test_snapshot_never_observes_a_torn_replica_registry(self):
        """Writers keep ``admitted >= served`` inside each replica registry;
        a merge that captured a registry mid-update would break it."""
        writers = 3
        with make_cluster(3) as router:
            registries = [r.metrics for r in router.replicas.values()]
            stop = threading.Event()

            def write(registry):
                admitted = registry.counter("admitted")
                served = registry.counter("served")
                for _ in range(400):
                    admitted.inc()
                    served.inc()
                stop.set()

            threads = [
                threading.Thread(target=write, args=(reg,)) for reg in registries
            ]
            for t in threads:
                t.start()
            try:
                snapshots = 0
                while not stop.is_set() or snapshots < 50:
                    counters = router.cluster_snapshot()["counters"]
                    a = counters.get("admitted", 0)
                    s = counters.get("served", 0)
                    assert a >= s, f"torn cluster view: served {s} > admitted {a}"
                    assert a - s <= writers
                    snapshots += 1
            finally:
                for t in threads:
                    t.join()


class TestDynamicTopology:
    """The autoscaler churns the fleet; the merged view must not wobble.

    Departing replicas fold their counters into the router's retired
    registry, so cluster totals are (a) monotone non-decreasing across
    any add/drain sequence and (b) *exact* — equal to the work actually
    served — even when the same replica id leaves and later rejoins as
    a brand-new object.
    """

    def _served(self, router):
        return router.cluster_snapshot()["counters"].get(
            "replica.calls.classify", 0
        )

    def test_totals_exact_across_add_drain_readd_thread(self, tiny_model):
        from repro.cluster import make_replica

        model, dataset, predictor = tiny_model
        with make_cluster(2, config=RouterConfig(replication_factor=2)) as router:
            gid = router.register_model(
                "churn", model, train_set=dataset, predictor=predictor
            )
            request = ClassifyRequest(model_id=gid, inputs=dataset.inputs[:2])
            seen = []
            for _ in range(4):
                router.classify(request)
            seen.append(self._served(router))
            assert seen[-1] == 4

            router.add_replica(make_replica("r2"))
            router.rebalance()
            for _ in range(4):
                router.classify(request)
            seen.append(self._served(router))
            assert seen[-1] == 8

            # Drain a serving holder: its counters move to the retired
            # registry, not out of the total.
            victim = router.holders(gid)[0]
            router.drain_replica(victim)
            seen.append(self._served(router))
            assert seen[-1] == 8

            for _ in range(4):
                router.classify(request)
            seen.append(self._served(router))
            assert seen[-1] == 12

            # The same id rejoins as a fresh object: its predecessor's
            # work must be counted exactly once, never twice.
            router.add_replica(make_replica(victim))
            router.rebalance()
            for _ in range(4):
                router.classify(request)
            seen.append(self._served(router))
            assert seen[-1] == 16
            assert seen == sorted(seen)  # monotone at every observation

    def test_totals_exact_across_drain_readd_process(self):
        rng = np.random.default_rng(0)
        inputs = rng.normal(size=(12, TINY.in_channels, 8, 8))
        labels = rng.integers(0, 3, size=12)
        config = RouterConfig(replication_factor=2, call_timeout_s=120.0)
        with make_cluster(2, backend="process", config=config) as router:
            from repro.cluster import make_replica

            gid = router.train(
                TrainRequest(
                    inputs=inputs, labels=labels, model_config=TINY, epochs=1
                )
            ).model_id
            request = ClassifyRequest(model_id=gid, inputs=inputs[:2])
            for _ in range(3):
                router.classify(request)
            assert self._served(router) == 3

            victim = router.holders(gid)[0]
            router.drain_replica(victim)
            # The child is gone, but its shipped counters survive in the
            # retired registry.
            assert self._served(router) == 3

            router.add_replica(make_replica(victim, backend="process"))
            router.rebalance()
            for _ in range(3):
                router.classify(request)
            assert self._served(router) == 6
        for replica in router.replicas.values():
            replica.assert_no_shm_leaks()


class TestProcessBackend:
    def test_child_serve_counters_fold_into_the_cluster_view(self):
        rng = np.random.default_rng(0)
        inputs = rng.normal(size=(12, TINY.in_channels, 8, 8))
        labels = rng.integers(0, 3, size=12)
        config = RouterConfig(replication_factor=1, call_timeout_s=120.0)
        with make_cluster(1, backend="process", config=config) as router:
            gid = router.train(
                TrainRequest(
                    inputs=inputs, labels=labels, model_config=TINY, epochs=1
                )
            ).model_id
            for _ in range(3):
                router.classify(ClassifyRequest(model_id=gid, inputs=inputs[:2]))
            counters = router.cluster_snapshot()["counters"]
            # These counts only exist inside the child process; seeing them
            # here proves the live child snapshot was fetched and merged.
            assert counters.get("replica.calls.train") == 1
            assert counters.get("replica.calls.classify") == 3
            # Parent-side transport accounting sits beside them.
            assert counters.get("replica.transport.calls_sent", 0) >= 4
        for replica in router.replicas.values():
            replica.assert_no_shm_leaks()
