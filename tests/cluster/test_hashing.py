"""Rendezvous placement: determinism, balance and minimal movement.

Everything here is exactly reproducible — placement is a pure function
of (model id, replica ids) — so the movement bounds are pinned as hard
assertions over a fixed key population, not statistical expectations.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import place, placement_score

KEYS = [f"model-{i}" for i in range(2000)]


def replicas(n):
    return [f"r{i}" for i in range(n)]


class TestScores:
    def test_scores_are_deterministic_and_in_unit_interval(self):
        for key in ("a", "model-17", "g42"):
            s = placement_score(key, "r1")
            assert s == placement_score(key, "r1")
            assert 0.0 <= s < 1.0

    def test_scores_distinguish_key_and_replica(self):
        assert placement_score("a", "r1") != placement_score("a", "r2")
        assert placement_score("a", "r1") != placement_score("b", "r1")


class TestPlace:
    def test_returns_requested_number_of_distinct_holders(self):
        holders = place("m", replicas(8), replication_factor=3)
        assert len(holders) == 3
        assert len(set(holders)) == 3

    def test_caps_at_the_replica_count(self):
        assert len(place("m", replicas(2), replication_factor=5)) == 2

    def test_is_independent_of_replica_order(self):
        ids = replicas(8)
        assert place("m", ids, 3) == place("m", list(reversed(ids)), 3)

    def test_rejects_empty_replica_set_and_bad_factor(self):
        with pytest.raises(ValueError):
            place("m", [], 1)
        with pytest.raises(ValueError):
            place("m", replicas(3), 0)

    def test_primary_load_is_roughly_balanced(self):
        ids = replicas(8)
        counts = {rid: 0 for rid in ids}
        for key in KEYS:
            counts[place(key, ids, 1)[0]] += 1
        expected = len(KEYS) / len(ids)
        for rid, count in counts.items():
            assert 0.5 * expected <= count <= 1.5 * expected, (rid, count)


class TestStability:
    """The property the router's re-replication cost rides on: growing
    the cluster by one replica relocates only the keys the new replica
    now wins — about ``R/(N+1)`` of them, bounded here by ``R/N``."""

    def test_adding_a_replica_moves_at_most_one_nth_of_primaries(self):
        before_ids = replicas(8)
        after_ids = replicas(9)
        moved = sum(
            1
            for key in KEYS
            if place(key, before_ids, 1) != place(key, after_ids, 1)
        )
        assert moved / len(KEYS) <= 1 / 8

    def test_adding_a_replica_moves_at_most_r_nths_of_holder_sets(self):
        before_ids = replicas(8)
        after_ids = replicas(9)
        changed = 0
        for key in KEYS:
            before = set(place(key, before_ids, 2))
            after = set(place(key, after_ids, 2))
            changed += len(before - after)
        # Each key holds 2 copies; at most one copy moves to the newcomer.
        assert changed / (2 * len(KEYS)) <= 2 / 8
        for key in KEYS[:200]:
            before = set(place(key, before_ids, 2))
            after = set(place(key, after_ids, 2))
            assert len(before - after) <= 1

    def test_removing_a_replica_only_touches_its_own_keys(self):
        before_ids = replicas(8)
        after_ids = replicas(8)[:-1]
        for key in KEYS[:500]:
            before = place(key, before_ids, 2)
            after = place(key, after_ids, 2)
            if "r7" not in before:
                assert before == after
            else:
                survivors = [rid for rid in before if rid != "r7"]
                # Surviving holders keep their copies; only the lost
                # copy is re-homed.
                assert set(survivors) <= set(after)


# Randomized fleets for the movement-bound property: ids are drawn from
# a pool wider than any fleet so add/remove picks are arbitrary strings,
# not always the lexicographic edge.
_fleets = st.lists(
    st.sampled_from([f"node-{i:02d}" for i in range(24)]),
    min_size=2,
    max_size=12,
    unique=True,
)


class TestMovementBoundProperty:
    """The autoscaler's cost model, as a property over random fleets:
    changing the fleet by ONE replica — in either direction — moves at
    most ~1/N of placements.  The existing tests pin this for one fixed
    fleet and mostly for the *add* path; scale-down exercises *remove*,
    so both directions get the bound here."""

    @settings(max_examples=30, deadline=None)
    @given(fleet=_fleets, factor=st.integers(min_value=1, max_value=3))
    def test_adding_a_replica_moves_at_most_one_nth(self, fleet, factor):
        grown = fleet + ["joiner"]
        moved = 0
        copies = 0
        for key in KEYS[:400]:
            before = set(place(key, fleet, factor))
            after = set(place(key, grown, factor))
            # Only the newcomer may displace copies, one per key at most.
            lost = before - after
            assert len(lost) <= 1, (key, before, after)
            assert after - before <= {"joiner"}
            moved += len(lost)
            copies += len(before)
        # Expected movement is factor/(N+1); allow 2x slack for a
        # 400-key sample.
        n = len(fleet)
        assert moved / copies <= min(1.0, 2.0 / (n + 1)) + 0.05

    @settings(max_examples=30, deadline=None)
    @given(data=st.data(), factor=st.integers(min_value=1, max_value=3))
    def test_removing_a_replica_moves_only_its_own_keys(self, data, factor):
        fleet = data.draw(_fleets.filter(lambda f: len(f) >= 3))
        victim = data.draw(st.sampled_from(fleet))
        shrunk = [rid for rid in fleet if rid != victim]
        moved = 0
        copies = 0
        for key in KEYS[:400]:
            before = place(key, fleet, factor)
            after = place(key, shrunk, factor)
            if victim not in before:
                # Keys the victim never held must not move at all.
                assert before == after, (key, victim)
            else:
                survivors = [rid for rid in before if rid != victim]
                assert set(survivors) <= set(after)
                moved += 1
            copies += len(before)
        # Movement is bounded by the victim's share: ~factor/N of keys.
        n = len(fleet)
        assert moved / len(KEYS[:400]) <= min(1.0, 2.0 * factor / n) + 0.05
