import numpy as np
import pytest

from repro import faults, telemetry
from repro.nn.data import Dataset
from repro.nn.resnet import StagedResNet, StagedResNetConfig
from repro.nn.training import collect_stage_outputs
from repro.scheduler.confidence import GPConfidencePredictor

TINY = StagedResNetConfig(
    num_classes=3, image_size=8, stage_channels=(4, 8), blocks_per_stage=1, seed=0
)


@pytest.fixture(autouse=True)
def clean_sessions():
    faults.uninstall()
    telemetry.disable()
    yield
    faults.uninstall()
    telemetry.disable()


@pytest.fixture
def tiny_data():
    rng = np.random.default_rng(0)
    return rng.normal(size=(16, 3, 8, 8)), rng.integers(0, 3, size=16)


@pytest.fixture
def tiny_model(tiny_data):
    """A trained-enough staged model plus dataset and fitted predictor."""
    inputs, labels = tiny_data
    model = StagedResNet(TINY)
    dataset = Dataset(inputs, labels)
    predictor = GPConfidencePredictor(num_classes=3, seed=0).fit(
        collect_stage_outputs(model, dataset)["confidences"]
    )
    return model, dataset, predictor
