"""Autoscaler policy unit tests — pure functions, virtual time, no sleeps.

Every test here drives :func:`repro.cluster.decide` with hand-built
:class:`LoadSnapshot`s whose ``now`` comes from a virtual timeline.
There is not a single ``time.sleep`` (or real clock read) in this file:
cooldowns, hysteresis streaks and step bounds are all exercised by
choosing timestamps, which is the point of building the controller as
``(snapshot, state, config) -> (decision, state)``.
"""

import pytest

from repro.cluster import (
    HOLD,
    SCALE_DOWN,
    SCALE_UP,
    AutoscalerConfig,
    ControllerState,
    LoadSnapshot,
    VirtualClock,
    decide,
)


def snap(now=0.0, replicas=2, outstanding=0, **kwargs):
    return LoadSnapshot(
        now=now, replicas=replicas, outstanding=outstanding, **kwargs
    )


class TestConfigValidation:
    def test_rejects_inverted_fleet_bounds(self):
        with pytest.raises(ValueError):
            AutoscalerConfig(min_replicas=4, max_replicas=2)

    def test_rejects_zero_min(self):
        with pytest.raises(ValueError):
            AutoscalerConfig(min_replicas=0)

    def test_rejects_inverted_ratio_band(self):
        with pytest.raises(ValueError):
            AutoscalerConfig(scale_up_ratio=0.5, scale_down_ratio=0.6)

    def test_rejects_nonpositive_target(self):
        with pytest.raises(ValueError):
            AutoscalerConfig(target_outstanding_per_replica=0.0)

    def test_rejects_negative_prewarm(self):
        with pytest.raises(ValueError):
            AutoscalerConfig(prewarm_pool_size=-1)

    def test_rejects_nonpositive_idle_ttl(self):
        with pytest.raises(ValueError):
            AutoscalerConfig(idle_model_ttl_s=0.0)


class TestTargetUtilization:
    def test_holds_within_band(self):
        config = AutoscalerConfig(target_outstanding_per_replica=4.0)
        decision, _ = decide(snap(replicas=2, outstanding=4), ControllerState(), config)
        assert decision.action == HOLD
        assert decision.utilization == 2.0

    def test_scales_up_on_sustained_pressure(self):
        config = AutoscalerConfig(
            target_outstanding_per_replica=2.0,
            hysteresis_up=2,
            up_cooldown_s=0.0,
        )
        state = ControllerState()
        decision, state = decide(snap(now=0.0, outstanding=10), state, config)
        assert decision.action == HOLD  # streak 1/2
        decision, state = decide(snap(now=1.0, outstanding=10), state, config)
        assert decision.action == SCALE_UP
        assert decision.amount >= 1

    def test_one_quiet_observation_resets_the_streak(self):
        config = AutoscalerConfig(
            target_outstanding_per_replica=2.0, hysteresis_up=2
        )
        state = ControllerState()
        _, state = decide(snap(now=0.0, outstanding=10), state, config)
        _, state = decide(snap(now=1.0, outstanding=4), state, config)
        decision, state = decide(snap(now=2.0, outstanding=10), state, config)
        assert decision.action == HOLD  # streak restarted at 1/2

    def test_scales_down_after_long_quiet(self):
        config = AutoscalerConfig(
            target_outstanding_per_replica=4.0,
            hysteresis_down=3,
            down_cooldown_s=0.0,
        )
        state = ControllerState()
        for t in (0.0, 1.0):
            decision, state = decide(
                snap(now=t, replicas=3, outstanding=0), state, config
            )
            assert decision.action == HOLD
        decision, state = decide(
            snap(now=2.0, replicas=3, outstanding=0), state, config
        )
        assert decision.action == SCALE_DOWN
        assert decision.amount == 1

    def test_never_exceeds_max_replicas(self):
        config = AutoscalerConfig(
            max_replicas=3, hysteresis_up=1, up_cooldown_s=0.0
        )
        decision, _ = decide(
            snap(replicas=3, outstanding=100), ControllerState(), config
        )
        assert decision.action == HOLD
        assert "max_replicas" in decision.reason

    def test_draining_replicas_count_against_max(self):
        config = AutoscalerConfig(
            max_replicas=3, hysteresis_up=1, up_cooldown_s=0.0
        )
        decision, _ = decide(
            snap(replicas=2, outstanding=100, draining=1),
            ControllerState(),
            config,
        )
        assert decision.action == HOLD

    def test_never_drops_below_min_replicas(self):
        config = AutoscalerConfig(
            min_replicas=2, hysteresis_down=1, down_cooldown_s=0.0
        )
        decision, _ = decide(
            snap(replicas=2, outstanding=0), ControllerState(), config
        )
        assert decision.action == HOLD
        assert "min_replicas" in decision.reason

    def test_step_bounds_cap_the_jump(self):
        config = AutoscalerConfig(
            target_outstanding_per_replica=1.0,
            max_replicas=10,
            max_step_up=2,
            hysteresis_up=1,
            up_cooldown_s=0.0,
        )
        decision, _ = decide(
            snap(replicas=1, outstanding=50), ControllerState(), config
        )
        assert decision.action == SCALE_UP
        assert decision.amount == 2

    def test_step_sized_to_demand_not_always_max(self):
        config = AutoscalerConfig(
            target_outstanding_per_replica=4.0,
            max_replicas=10,
            max_step_up=4,
            hysteresis_up=1,
            up_cooldown_s=0.0,
        )
        # 2 replicas, 9 outstanding -> ceil(9/4)=3 wanted -> +1.
        decision, _ = decide(
            snap(replicas=2, outstanding=9), ControllerState(), config
        )
        assert decision.action == SCALE_UP
        assert decision.amount == 1


class TestCooldowns:
    def test_up_cooldown_blocks_consecutive_ups(self):
        config = AutoscalerConfig(
            target_outstanding_per_replica=1.0,
            hysteresis_up=1,
            up_cooldown_s=10.0,
            max_replicas=8,
        )
        state = ControllerState()
        decision, state = decide(snap(now=0.0, outstanding=20), state, config)
        assert decision.action == SCALE_UP
        decision, state = decide(snap(now=5.0, outstanding=20), state, config)
        assert decision.action == HOLD
        assert "cooldown" in decision.reason
        decision, state = decide(snap(now=10.0, outstanding=20), state, config)
        assert decision.action == SCALE_UP

    def test_down_cooldown_counts_from_any_action(self):
        """A scale-up resets the down cooldown too — the controller never
        adds capacity and immediately takes it away."""
        config = AutoscalerConfig(
            target_outstanding_per_replica=2.0,
            hysteresis_up=1,
            hysteresis_down=1,
            up_cooldown_s=0.0,
            down_cooldown_s=20.0,
            max_replicas=8,
        )
        state = ControllerState()
        decision, state = decide(
            snap(now=0.0, replicas=2, outstanding=20), state, config
        )
        assert decision.action == SCALE_UP
        # Immediately quiet: down must wait out the cooldown since the up.
        decision, state = decide(
            snap(now=5.0, replicas=4, outstanding=0), state, config
        )
        assert decision.action == HOLD
        assert "cooldown" in decision.reason
        decision, state = decide(
            snap(now=21.0, replicas=4, outstanding=0), state, config
        )
        assert decision.action == SCALE_DOWN

    def test_flapping_load_produces_no_action(self):
        """Alternating hot/cold observations never satisfy either
        hysteresis streak: the controller holds throughout."""
        config = AutoscalerConfig(
            target_outstanding_per_replica=2.0,
            hysteresis_up=2,
            hysteresis_down=2,
            up_cooldown_s=0.0,
            down_cooldown_s=0.0,
        )
        state = ControllerState()
        for i in range(20):
            outstanding = 20 if i % 2 == 0 else 0
            decision, state = decide(
                snap(now=float(i), replicas=2, outstanding=outstanding),
                state,
                config,
            )
            assert decision.action == HOLD, (i, decision)


class TestTriggers:
    def test_shed_fraction_triggers_scale_up_at_low_utilization(self):
        config = AutoscalerConfig(
            shed_fraction_trigger=0.05,
            hysteresis_up=1,
            up_cooldown_s=0.0,
        )
        decision, _ = decide(
            snap(replicas=2, outstanding=0, shed_fraction=0.5),
            ControllerState(),
            config,
        )
        assert decision.action == SCALE_UP
        assert "shed" in decision.reason

    def test_p99_trigger_disabled_by_default(self):
        config = AutoscalerConfig(hysteresis_up=1, up_cooldown_s=0.0)
        decision, _ = decide(
            snap(replicas=2, outstanding=0, p99_latency_ms=1e9),
            ControllerState(),
            config,
        )
        assert decision.action == HOLD

    def test_p99_trigger_fires_when_configured(self):
        config = AutoscalerConfig(
            p99_trigger_ms=100.0, hysteresis_up=1, up_cooldown_s=0.0
        )
        decision, _ = decide(
            snap(replicas=2, outstanding=0, p99_latency_ms=250.0),
            ControllerState(),
            config,
        )
        assert decision.action == SCALE_UP
        assert "p99" in decision.reason

    def test_shed_pressure_blocks_scale_down(self):
        """Shedding means the fleet is too small even if queues look
        empty (rejected work never queued)."""
        config = AutoscalerConfig(
            hysteresis_down=1, down_cooldown_s=0.0, max_replicas=8
        )
        decision, _ = decide(
            snap(replicas=4, outstanding=0, shed_fraction=0.5),
            ControllerState(),
            # at max: pressure can't scale up, but quiet must not win
            AutoscalerConfig(
                hysteresis_down=1, down_cooldown_s=0.0, max_replicas=4
            ),
        )
        assert decision.action == HOLD


class TestDeterminism:
    def test_same_inputs_same_decisions(self):
        """The whole point: the policy is a pure function."""
        config = AutoscalerConfig(hysteresis_up=1, up_cooldown_s=0.0)
        s = snap(now=42.0, replicas=2, outstanding=30)
        a = decide(s, ControllerState(), config)
        b = decide(s, ControllerState(), config)
        assert a == b

    def test_virtual_timeline_replays_exactly(self, virtual_clock):
        """Driving the policy off a VirtualClock timeline is replayable:
        two identical runs produce identical decision sequences."""
        config = AutoscalerConfig(
            target_outstanding_per_replica=2.0,
            hysteresis_up=2,
            hysteresis_down=2,
            up_cooldown_s=3.0,
            down_cooldown_s=6.0,
            max_replicas=6,
        )
        loads = [0, 10, 12, 14, 3, 0, 0, 0, 9, 11, 0, 0, 0, 0]

        def run():
            clock = VirtualClock()
            state = ControllerState()
            replicas = 2
            out = []
            for load in loads:
                decision, state = decide(
                    LoadSnapshot(
                        now=clock.now(), replicas=replicas, outstanding=load
                    ),
                    state,
                    config,
                )
                if decision.action == SCALE_UP:
                    replicas += decision.amount
                elif decision.action == SCALE_DOWN:
                    replicas -= decision.amount
                out.append((decision.action, decision.amount, replicas))
                clock.advance(2.0)
            return out

        first, second = run(), run()
        assert first == second
        assert any(action == SCALE_UP for action, _, _ in first)
        assert any(action == SCALE_DOWN for action, _, _ in first)


class TestVirtualClock:
    def test_sleep_advances_instead_of_blocking(self, virtual_clock):
        virtual_clock.sleep(3600.0)  # an hour, instantly
        assert virtual_clock.now() == 3600.0

    def test_rejects_backwards_time(self, virtual_clock):
        with pytest.raises(ValueError):
            virtual_clock.advance(-1.0)

    def test_callable_alias_matches_now(self, virtual_clock):
        virtual_clock.advance(5.0)
        assert virtual_clock() == virtual_clock.now() == 5.0

    def test_wait_until_on_virtual_clock_needs_no_real_time(
        self, virtual_clock
    ):
        from repro.cluster import wait_until

        seen = []

        def predicate():
            seen.append(virtual_clock.now())
            return virtual_clock.now() >= 1.0

        assert wait_until(
            predicate, timeout=5.0, interval=0.25, clock=virtual_clock
        )
        # Polling advanced virtual time in interval steps, never slept.
        assert seen[0] == 0.0 and seen[-1] >= 1.0
