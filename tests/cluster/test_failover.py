"""Failover invariants under deterministic chaos.

The contracts pinned here are the cluster tier's whole reason to exist:

- **No request lost** — a replica crash (or kill) mid-stream fails the
  affected calls over to a surviving holder; every client call still
  returns a response.
- **No request double-served** — the crashed/lost call never counts
  twice: summed per-replica serve counters equal the number of logical
  requests, and a lost-response train (the at-least-once hazard) places
  exactly one model thanks to idempotency keys composing with the
  router's re-keying.
- **Partition ≠ crash** — a replica that is alive but unreachable
  (heartbeat faults) is ejected and stops receiving traffic; every
  request during the partition is served by survivors (shed XOR served,
  never silently dropped).
- **Re-replication** — after an ejection every placed model is restored
  to the replication factor on survivors, each holding a live copy.
"""

import threading

import pytest

from repro import faults
from repro.cluster import (
    CALL_SITE,
    HEARTBEAT_SITE,
    NoHealthyReplicaError,
    RouterConfig,
    make_cluster,
)
from repro.faults import FaultPlan, FaultSpec, RetryPolicy
from repro.service import ClassifyRequest, EugeneClient

from .conftest import TINY


def served_counts(router, endpoint="classify"):
    return {
        rid: replica.metrics.counter(f"replica.calls.{endpoint}").value
        for rid, replica in router.replicas.items()
    }


class TestCrashFailover:
    def test_crash_mid_stream_loses_and_doubles_nothing(self, tiny_model):
        model, dataset, predictor = tiny_model
        config = RouterConfig(replication_factor=2, policy="round-robin")
        plan = FaultPlan(
            seed=0, specs=[FaultSpec(CALL_SITE, faults.CRASH, at=(5,))]
        )
        with make_cluster(3, config=config) as router:
            gid = router.register_model(
                "crash", model, train_set=dataset, predictor=predictor
            )
            request = ClassifyRequest(
                model_id=gid, inputs=dataset.inputs[:2]
            )
            with faults.plan_session(plan):
                responses = [router.classify(request) for _ in range(20)]
            assert len(responses) == 20  # no request lost
            assert all(len(r.predictions) == 2 for r in responses)
            # ... and none double-served: the crashed invocation died
            # before serving, its retry served exactly once elsewhere.
            assert sum(served_counts(router).values()) == 20
            assert len(router.ejected()) == 1
            assert (
                router.metrics.counter("router.failovers").value == 1
            )

    def test_replication_factor_restored_after_crash(self, tiny_model):
        model, dataset, predictor = tiny_model
        config = RouterConfig(replication_factor=2)
        with make_cluster(3, config=config) as router:
            gid = router.register_model(
                "heal", model, train_set=dataset, predictor=predictor
            )
            victim = router.holders(gid)[0]
            router.replicas[victim].kill()
            router.tick()  # heartbeat round notices the corpse
            holders = router.holders(gid)
            assert victim not in holders
            assert len(holders) == 2
            for rid in holders:
                assert gid in router.replicas[rid].service.registry
            assert (
                router.metrics.counter("router.rereplications").value >= 1
            )

    def test_killed_replicas_queued_requests_fail_over(self, tiny_model):
        model, dataset, predictor = tiny_model
        config = RouterConfig(replication_factor=2)
        with make_cluster(2, config=config) as router:
            gid = router.register_model(
                "queue", model, train_set=dataset, predictor=predictor
            )
            request = ClassifyRequest(
                model_id=gid, inputs=dataset.inputs[:2]
            )
            victim = router.holders(gid)[0]
            results = []
            errors = []

            def drive():
                try:
                    results.append(router.classify(request))
                except Exception as error:  # pragma: no cover
                    errors.append(error)

            threads = [
                threading.Thread(target=drive) for _ in range(12)
            ]
            for i, t in enumerate(threads):
                t.start()
                if i == 5:
                    router.replicas[victim].kill()
            for t in threads:
                t.join(10.0)
            assert not errors
            assert len(results) == 12  # nothing lost
            assert all(len(r.predictions) == 2 for r in results)

    def test_cluster_of_one_crash_is_surfaced_as_transient(self, tiny_model):
        model, dataset, predictor = tiny_model
        plan = FaultPlan(
            seed=0, specs=[FaultSpec(CALL_SITE, faults.CRASH, at=(0,))]
        )
        with make_cluster(1) as router:
            gid = router.register_model(
                "alone", model, train_set=dataset, predictor=predictor
            )
            with faults.plan_session(plan):
                with pytest.raises(NoHealthyReplicaError):
                    router.classify(
                        ClassifyRequest(
                            model_id=gid, inputs=dataset.inputs[:2]
                        )
                    )
            assert router.metrics.counter("router.models_lost").value == 1


class TestResponseLoss:
    def test_lost_train_response_places_exactly_one_model(self, tiny_data):
        # The at-least-once hazard, end to end: the replica *executes*
        # the train but the answer is lost.  With no second holder to
        # fail over to, the router surfaces a transient error, the
        # client's retry redelivers, the service's idempotency window
        # recognises the key, and the router re-keys the single
        # already-trained model — one model, no orphan, no double train.
        inputs, labels = tiny_data
        plan = FaultPlan(
            seed=0, specs=[FaultSpec(CALL_SITE, faults.DROP, at=(0,))]
        )
        with make_cluster(1) as router:
            client = EugeneClient(
                router,
                retry_policy=RetryPolicy(max_attempts=3, base_delay_s=0.0),
            )
            with faults.plan_session(plan):
                response = client.train(
                    inputs, labels, model_config=TINY, epochs=1, name="once"
                )
            assert router.model_ids() == [response.model_id]
            registry = router.replicas["r0"].service.registry
            assert len(registry) == 1
            assert registry.get(response.model_id).name == "once"

    def test_lost_response_with_failover_places_exactly_one_copy_set(
        self, tiny_data
    ):
        # With a second holder available the router itself retries the
        # train elsewhere; exactly one model may end up *placed*.
        inputs, labels = tiny_data
        plan = FaultPlan(
            seed=0, specs=[FaultSpec(CALL_SITE, faults.DROP, at=(0,))]
        )
        with make_cluster(2) as router:
            client = EugeneClient(
                router,
                retry_policy=RetryPolicy(max_attempts=3, base_delay_s=0.0),
            )
            with faults.plan_session(plan):
                response = client.train(
                    inputs, labels, model_config=TINY, epochs=1
                )
            assert router.model_ids() == [response.model_id]
            for rid in router.holders(response.model_id):
                assert (
                    response.model_id
                    in router.replicas[rid].service.registry
                )


class TestPartition:
    def test_partitioned_replica_is_ejected_not_served(self, tiny_model):
        model, dataset, predictor = tiny_model
        config = RouterConfig(replication_factor=2)
        # r0 pings first each round: drop its beats until ejection.
        plan = FaultPlan(
            seed=0,
            specs=[FaultSpec(HEARTBEAT_SITE, faults.DROP, at=(0, 2, 4))],
        )
        with make_cluster(2, config=config) as router:
            gid = router.register_model(
                "part", model, train_set=dataset, predictor=predictor
            )
            with faults.plan_session(plan):
                for _ in range(3):
                    router.tick()
            assert router.ejected() == ["r0"]
            assert router.replicas["r0"].alive  # partitioned, not dead
            request = ClassifyRequest(
                model_id=gid, inputs=dataset.inputs[:2]
            )
            responses = [router.classify(request) for _ in range(5)]
            # Shed XOR served: every request has exactly one terminal
            # outcome, and none of them came from the partitioned side.
            assert all(len(r.predictions) == 2 for r in responses)
            counts = served_counts(router)
            assert counts["r1"] == 5
            # r0 may have served pre-partition traffic only (here: none).
            assert counts["r0"] == 0

    def test_latency_only_heartbeat_still_arrives(self, tiny_model):
        model, dataset, _ = tiny_model
        plan = FaultPlan(
            seed=0,
            specs=[
                FaultSpec(
                    HEARTBEAT_SITE,
                    faults.LATENCY,
                    at=(0, 1),
                    latency_s=0.001,
                )
            ],
        )
        with make_cluster(2) as router:
            router.register_model("slowbeat", model, train_set=dataset)
            with faults.plan_session(plan):
                router.tick()
            assert router.ejected() == []
