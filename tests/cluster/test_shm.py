"""The shared-memory arena allocator: the safety net under zero-copy.

Everything the process transport assumes of :class:`ShmArena` is pinned
here in-process (no children — the cross-process behaviour rides on OS
shared memory, identical through a second attached handle):

- arrays round-trip bit-exact, by copy and as read-only views;
- refcounts keep blocks alive exactly as long as someone holds them,
  and the free-list coalesces so the arena doesn't fragment to death;
- generation tags catch use-after-free and corrupted metadata *loudly*
  (typed, retryable) instead of serving torn bytes;
- ownership is enforced: readers can't allocate, only the creator may
  unlink, and ``adopt`` hands the allocator role to a child cleanly;
- leak accounting reports exactly the blocks still live.
"""

import numpy as np
import pytest

from repro.cluster import (
    ShmAllocationError,
    ShmArena,
    ShmError,
    ShmLeakError,
    ShmStaleBlockError,
)
from repro.faults import TransientServiceError

rng = np.random.default_rng(3)


@pytest.fixture
def arena():
    a = ShmArena.create(1 << 16, max_blocks=8)
    yield a
    a.destroy()


class TestRoundTrip:
    def test_arrays_round_trip_bit_exact(self, arena):
        for array in (
            rng.normal(size=(4, 3, 8, 8)),
            rng.integers(0, 255, size=(16, 16), dtype=np.uint8),
            np.array([], dtype=np.float32),
            np.float64(3.25).reshape(()),  # zero-dim
        ):
            ref = arena.put_array(array)
            out = arena.read_array(ref)
            assert out.dtype == array.dtype and out.shape == array.shape
            assert np.array_equal(out, array)
            arena.decref(ref.index, ref.generation)

    def test_copy_false_returns_a_readonly_view(self, arena):
        ref = arena.put_array(np.arange(64, dtype=np.float64))
        view = arena.read_array(ref, copy=False)
        assert not view.flags.writeable
        copied = arena.read_array(ref)  # default copies
        assert copied.flags.writeable
        arena.decref(ref.index, ref.generation)

    def test_a_second_attached_handle_reads_the_same_block(self, arena):
        array = rng.normal(size=(8, 8))
        ref = arena.put_array(array)
        reader = ShmArena.attach(arena.name, max_blocks=8)
        try:
            assert np.array_equal(reader.read_array(ref), array)
        finally:
            reader.close()
        arena.decref(ref.index, ref.generation)

    def test_put_copies_the_array_not_aliases_it(self, arena):
        array = np.ones(32)
        ref = arena.put_array(array)
        array[:] = -1.0  # caller mutates after send, as retries may
        assert np.all(arena.read_array(ref) == 1.0)
        arena.decref(ref.index, ref.generation)


class TestRefcounts:
    def test_last_decref_frees_and_makes_refs_stale(self, arena):
        ref = arena.put_array(np.zeros(32))
        arena.incref(ref.index, ref.generation)
        arena.decref(ref.index, ref.generation)
        arena.read_array(ref)  # still one holder
        arena.decref(ref.index, ref.generation)
        with pytest.raises(ShmStaleBlockError):
            arena.read_array(ref)

    def test_freed_space_is_reused_and_coalesced(self, arena):
        capacity = arena.free_bytes()
        refs = [arena.put_array(np.zeros(1024)) for _ in range(4)]
        assert arena.free_bytes() < capacity
        for ref in refs:  # free in allocation order: adjacent spans merge
            arena.decref(ref.index, ref.generation)
        assert arena.free_bytes() == capacity
        # One allocation nearly the whole arena only fits if spans merged.
        big = arena.put_array(np.zeros(capacity - 4096, dtype=np.uint8))
        arena.decref(big.index, big.generation)

    def test_generation_tags_are_never_reused(self, arena):
        first = arena.put_array(np.zeros(32))
        arena.decref(first.index, first.generation)
        second = arena.put_array(np.zeros(32))
        assert second.generation != first.generation
        with pytest.raises(ShmStaleBlockError):
            arena.read_array(first)  # old ref to the recycled block
        arena.decref(second.index, second.generation)


class TestAllocationFailure:
    def test_oversized_payload_is_a_soft_typed_failure(self, arena):
        with pytest.raises(ShmAllocationError):
            arena.put_array(np.zeros(arena.capacity_bytes + 1, dtype=np.uint8))
        arena.assert_no_leaks()  # the failed alloc left nothing behind

    def test_table_exhaustion_is_a_soft_typed_failure(self):
        a = ShmArena.create(1 << 16, max_blocks=2)
        try:
            refs = [a.put_array(np.zeros(16)) for _ in range(2)]
            with pytest.raises(ShmAllocationError):
                a.put_array(np.zeros(16))
            for ref in refs:
                a.decref(ref.index, ref.generation)
            a.put_array(np.zeros(16))  # entries recycled
        finally:
            a.destroy()


class TestCorruption:
    def test_corrupted_generation_raises_a_retryable_error(self, arena):
        ref = arena.put_array(np.zeros(64))
        arena.corrupt_generation(ref.index)
        with pytest.raises(ShmStaleBlockError) as info:
            arena.read_array(ref)
        # Routers must treat this as lost-in-transit, i.e. retryable.
        assert isinstance(info.value, TransientServiceError)
        # The XOR scribble is self-inverse: un-corrupt, then reclaim.
        arena.corrupt_generation(ref.index)
        arena.decref(ref.index, ref.generation)
        arena.assert_no_leaks()


class TestOwnership:
    def test_readers_cannot_allocate_or_free(self, arena):
        reader = ShmArena.attach(arena.name, max_blocks=8)
        try:
            with pytest.raises(ShmError):
                reader.put_array(np.zeros(16))
            ref = arena.put_array(np.zeros(16))
            with pytest.raises(ShmError):
                reader.decref(ref.index, ref.generation)
            arena.decref(ref.index, ref.generation)
        finally:
            reader.close()

    def test_only_the_creator_may_destroy(self, arena):
        reader = ShmArena.attach(arena.name, max_blocks=8)
        try:
            with pytest.raises(ShmError):
                reader.destroy()
        finally:
            reader.close()

    def test_adopt_takes_the_allocator_role_from_a_nonowner_creator(self):
        # The child→parent protocol: parent creates (and keeps unlink
        # rights), child adopts and becomes the single writer.
        parent_side = ShmArena.create(1 << 16, max_blocks=8, owner=False)
        try:
            with pytest.raises(ShmError):
                parent_side.put_array(np.zeros(16))
            child_side = ShmArena.adopt(parent_side.name, max_blocks=8)
            ref = child_side.put_array(np.arange(16, dtype=np.float64))
            # The non-owner creator still reads what the adopter wrote.
            assert np.array_equal(
                parent_side.read_array(ref), np.arange(16, dtype=np.float64)
            )
            child_side.decref(ref.index, ref.generation)
            child_side.close()
        finally:
            parent_side.destroy()

    def test_destroy_unlinks_the_os_segment(self):
        a = ShmArena.create(1 << 12, max_blocks=2)
        name = a.name
        a.destroy()
        with pytest.raises(FileNotFoundError):
            ShmArena.attach(name, max_blocks=2)


class TestLeakAccounting:
    def test_leak_report_lists_exactly_the_live_blocks(self, arena):
        assert arena.leak_report() == []
        refs = [arena.put_array(np.zeros(32)) for _ in range(3)]
        report = arena.leak_report()
        assert {b["index"] for b in report} == {r.index for r in refs}
        with pytest.raises(ShmLeakError):
            arena.assert_no_leaks()
        for ref in refs:
            arena.decref(ref.index, ref.generation)
        arena.assert_no_leaks()
