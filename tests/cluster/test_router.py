"""Router/client round-trips, placement invariants, balancing policies
and the composition of router- and replica-level admission control."""

import threading

import numpy as np
import pytest

from repro.admission import AdmissionController, EndpointLimits
from repro.cluster import (
    LEAST_OUTSTANDING,
    ROUND_ROBIN,
    UTILITY,
    RouterConfig,
    ServiceReplica,
    ServiceRouter,
    make_cluster,
)
from repro.service import (
    ClassifyRequest,
    EugeneClient,
    RejectedResponse,
    TrainRequest,
)

from .conftest import TINY


def cluster(n=3, **kwargs):
    return make_cluster(n, **kwargs)


class TestRoundTrips:
    """Every endpoint message round-trips through router and client."""

    def test_train_classify_profile_reduce_delete(self, tiny_data):
        inputs, labels = tiny_data
        with cluster(3) as router:
            client = EugeneClient(router)
            trained = client.train(
                inputs, labels, model_config=TINY, epochs=1, name="rt"
            )
            assert trained.model_id == "g1"
            assert len(router.holders("g1")) == 2

            classified = client.classify("g1", inputs)
            assert len(classified.predictions) == len(inputs)

            profiled = client.profile("g1")
            assert profiled.total_time_ms > 0

            reduced = client.reduce("g1", width_fraction=0.5, epochs=1)
            assert reduced.model_id == "g2"
            assert reduced.parameters < reduced.original_parameters

            with pytest.raises(ValueError):
                client.delete("g1")  # child g2 still placed
            deleted = client.delete("g1", cascade=True)
            assert deleted.deleted == ("g1", "g2")
            assert router.model_ids() == []

    def test_infer_round_trip(self, tiny_data):
        inputs, labels = tiny_data
        with cluster(2) as router:
            client = EugeneClient(router)
            trained = client.train(
                inputs, labels, model_config=TINY, epochs=1
            )
            response = client.infer(
                trained.model_id, inputs[:4], latency_constraint_s=5.0
            )
            assert len(response.predictions) == 4

    def test_calibrate_refreshes_every_holder(self, tiny_data):
        inputs, labels = tiny_data
        with cluster(3) as router:
            client = EugeneClient(router)
            trained = client.train(
                inputs, labels, model_config=TINY, epochs=1
            )
            response = client.calibrate(trained.model_id, inputs, labels)
            assert len(response.alphas) >= 1
            holders = router.holders(trained.model_id)
            alphas = []
            for rid in holders:
                entry = router.replicas[rid].service.registry.get(
                    trained.model_id
                )
                alphas.append(
                    tuple(
                        float(a)
                        for a in getattr(entry.model, "alphas", ())
                    )
                )
            # Whatever calibration produced, every copy must agree.
            assert len(set(alphas)) == 1

    def test_estimator_and_deepsense_families(self):
        rng = np.random.default_rng(1)
        with cluster(2) as router:
            client = EugeneClient(router)
            x = rng.normal(size=(32, 4))
            y = x @ rng.normal(size=4)
            trained = client.train_estimator(x, y, steps=30, hidden=8)
            estimate = client.estimate(trained.model_id, x[:5])
            assert estimate.means.shape[0] == 5

            ts = rng.normal(size=(12, 2, 3, 8))
            labels = rng.integers(0, 2, size=12)
            ds = client.train_deepsense(ts, labels, steps=3, batch_size=6)
            classified = client.classify(ds.model_id, ts[:3])
            assert len(classified.predictions) == 3

    def test_label_runs_on_any_replica(self, tiny_data):
        inputs, labels = tiny_data
        with cluster(2) as router:
            client = EugeneClient(router)
            response = client.label(
                inputs[:8].reshape(8, -1),
                labels[:8],
                inputs[8:].reshape(8, -1),
                num_classes=3,
                method="self-training",
            )
            assert len(response.labels) == 8


class TestPlacement:
    def test_every_holder_resolves_the_global_id(self, tiny_data):
        inputs, labels = tiny_data
        with cluster(4, config=RouterConfig(replication_factor=3)) as router:
            client = EugeneClient(router)
            trained = client.train(
                inputs, labels, model_config=TINY, epochs=1
            )
            holders = router.holders(trained.model_id)
            assert len(holders) == 3
            for rid in holders:
                registry = router.replicas[rid].service.registry
                assert trained.model_id in registry
                assert (
                    registry.get(trained.model_id).model_id
                    == trained.model_id
                )

    def test_registry_view_spans_replicas(self, tiny_model):
        model, dataset, predictor = tiny_model
        with cluster(3) as router:
            gid = router.register_model(
                "view", model, train_set=dataset, predictor=predictor
            )
            assert gid in router.registry
            assert len(router.registry) == 1
            assert router.registry.get(gid).name == "view"
            with pytest.raises(KeyError):
                router.registry.get("g999")

    def test_unknown_model_id_raises_keyerror(self, tiny_data):
        inputs, _ = tiny_data
        with cluster(2) as router:
            with pytest.raises(KeyError):
                router.classify(
                    ClassifyRequest(model_id="g404", inputs=inputs)
                )

    def test_replication_capped_by_cluster_size(self, tiny_model):
        model, dataset, _ = tiny_model
        with cluster(2, config=RouterConfig(replication_factor=5)) as router:
            gid = router.register_model("cap", model, train_set=dataset)
            assert sorted(router.holders(gid)) == ["r0", "r1"]


class TestPolicies:
    def test_round_robin_rotates_over_holders(self, tiny_model):
        model, dataset, predictor = tiny_model
        config = RouterConfig(replication_factor=3, policy=ROUND_ROBIN)
        with cluster(3, config=config) as router:
            gid = router.register_model(
                "rr", model, train_set=dataset, predictor=predictor
            )
            for _ in range(6):
                router.classify(
                    ClassifyRequest(model_id=gid, inputs=dataset.inputs[:2])
                )
            served = {
                rid: router.replicas[rid]
                .metrics.counter("replica.calls.classify")
                .value
                for rid in router.holders(gid)
            }
            # Rotation spreads 6 calls over 3 holders: everyone serves.
            assert all(count >= 1 for count in served.values()), served

    def test_least_outstanding_avoids_the_busy_replica(self, tiny_model):
        model, dataset, predictor = tiny_model
        config = RouterConfig(
            replication_factor=2, policy=LEAST_OUTSTANDING
        )
        with cluster(2, config=config) as router:
            gid = router.register_model(
                "lo", model, train_set=dataset, predictor=predictor
            )
            busy, idle = router.holders(gid)
            # Occupy the busy replica's worker until released: its queue
            # depth stays up for exactly as long as the test needs, with
            # no machine-tuned sleep.
            gate = threading.Event()
            blocker = router.replicas[busy].execute(gate.wait)
            for _ in range(3):
                router.classify(
                    ClassifyRequest(model_id=gid, inputs=dataset.inputs[:2])
                )
            gate.set()
            blocker.result(2.0)
            idle_count = (
                router.replicas[idle]
                .metrics.counter("replica.calls.classify")
                .value
            )
            assert idle_count == 3

    def test_utility_policy_prefers_the_replica_that_can_still_deliver(
        self, tiny_model
    ):
        model, dataset, predictor = tiny_model
        config = RouterConfig(replication_factor=2, policy=UTILITY)
        with cluster(2, config=config) as router:
            gid = router.register_model(
                "ut", model, train_set=dataset, predictor=predictor
            )
            loaded, free = router.holders(gid)
            gate = threading.Event()
            blocker = router.replicas[loaded].execute(gate.wait)
            request = ClassifyRequest(
                model_id=gid, inputs=dataset.inputs[:2]
            )
            # Tight budget: the loaded replica's expected wait eats it,
            # so the free replica wins the utility ordering.
            order = router._ordered(
                "infer",
                router.holders(gid),
                type(
                    "R",
                    (),
                    {"model_id": gid, "latency_constraint_s": 0.05},
                )(),
            )
            gate.set()
            blocker.result(2.0)
            assert order[0] == free
            router.classify(request)  # and the cluster still serves

    def test_utility_policy_without_predictor_falls_back(self, tiny_model):
        model, dataset, _ = tiny_model
        config = RouterConfig(replication_factor=2, policy=UTILITY)
        with cluster(2, config=config) as router:
            gid = router.register_model("fb", model, train_set=dataset)
            response = router.classify(
                ClassifyRequest(model_id=gid, inputs=dataset.inputs[:2])
            )
            assert len(response.predictions) == 2


class TestAdmissionComposition:
    def test_router_gate_rejects_before_any_replica_is_touched(
        self, tiny_model
    ):
        model, dataset, _ = tiny_model
        admission = AdmissionController(
            per_endpoint={
                "classify": EndpointLimits(rate_per_s=0.001, burst=1)
            }
        )
        with cluster(2, admission=admission) as router:
            gid = router.register_model("gate", model, train_set=dataset)
            request = ClassifyRequest(
                model_id=gid, inputs=dataset.inputs[:2]
            )
            first = router.classify(request)
            assert not isinstance(first, RejectedResponse)
            second = router.classify(request)
            assert isinstance(second, RejectedResponse)
            assert second.message.startswith("router:")
            served = sum(
                router.replicas[rid]
                .metrics.counter("replica.calls.classify")
                .value
                for rid in router.replicas
            )
            assert served == 1  # the rejected call never reached a replica

    def test_replica_rejection_fails_over_to_another_holder(
        self, tiny_model
    ):
        model, dataset, _ = tiny_model
        with cluster(2) as router:
            gid = router.register_model("failover", model, train_set=dataset)
            first, second = router.holders(gid)
            # Only the preferred holder runs a gate, drained so the next
            # classify is over its rate budget.
            gate = AdmissionController(
                per_endpoint={
                    "classify": EndpointLimits(rate_per_s=0.001, burst=1)
                }
            )
            gate.admit("classify")
            router.replicas[first].service.admission = gate
            response = router.classify(
                ClassifyRequest(model_id=gid, inputs=dataset.inputs[:2])
            )
            assert not isinstance(response, RejectedResponse)
            assert (
                router.replicas[second]
                .metrics.counter("replica.calls.classify")
                .value
                >= 1
            )

    def test_rejection_surfaces_when_every_holder_rejects(self, tiny_model):
        model, dataset, _ = tiny_model
        with cluster(2) as router:
            gid = router.register_model("allreject", model, train_set=dataset)
            for rid in router.holders(gid):
                gate = AdmissionController(
                    per_endpoint={
                        "classify": EndpointLimits(rate_per_s=0.001, burst=1)
                    }
                )
                gate.admit("classify")
                router.replicas[rid].service.admission = gate
            response = router.classify(
                ClassifyRequest(model_id=gid, inputs=dataset.inputs[:2])
            )
            assert isinstance(response, RejectedResponse)
            assert response.retry_after_s >= 0.0


class TestRouterDedup:
    def test_replayed_train_does_not_re_place(self, tiny_data):
        inputs, labels = tiny_data
        with cluster(2) as router:
            request = TrainRequest(
                inputs=inputs,
                labels=labels,
                model_config=TINY,
                epochs=1,
                idempotency_key="train-once",
            )
            first = router.train(request)
            replay = router.train(request)
            assert replay is first
            assert router.model_ids() == [first.model_id]
            assert (
                router.metrics.counter("router.deduplicated.train").value
                == 1
            )


class TestValidation:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            RouterConfig(replication_factor=0)
        with pytest.raises(ValueError):
            RouterConfig(policy="random")
        with pytest.raises(ValueError):
            RouterConfig(call_timeout_s=0.0)

    def test_router_needs_replicas_with_unique_ids(self):
        with pytest.raises(ValueError):
            ServiceRouter([])
        a = ServiceReplica("dup")
        b = ServiceReplica("dup")
        try:
            with pytest.raises(ValueError):
                ServiceRouter([a, b])
        finally:
            a.shutdown()
            b.shutdown()
