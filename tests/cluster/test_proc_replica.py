"""ProcessReplica: a full service in a child process, leak-checked.

Real children are slow to spawn (~1–2 s under forkserver), so the happy
path shares one module-scoped replica with a trained model; destructive
tests (kill, watchdog respawn) each pay for their own.  What's pinned:

- the endpoint surface works across the boundary and large payloads take
  the shm arenas (transport counters prove it);
- the control plane (has/fetch/install/rekey/drop/predictor/ping) works
  against the live child — it is what the router's placement, registry
  view and re-replication are built on;
- child metrics fold into the parent's ``metrics_registry()`` view;
- every exit path — graceful shutdown, explicit kill, external SIGKILL —
  leaves zero leaked shm blocks and no linked OS segments;
- the watchdog respawns a SIGKILL'd child and the fresh child serves.
"""

import os
import signal

import numpy as np
import pytest

from repro.cluster import ProcessReplica, ReplicaDownError
from repro.nn.resnet import StagedResNetConfig
from repro.service.messages import ClassifyRequest, TrainRequest

TINY = StagedResNetConfig(
    num_classes=3, image_size=8, stage_channels=(4, 8), blocks_per_stage=1, seed=0
)

rng = np.random.default_rng(0)
INPUTS = rng.normal(size=(12, TINY.in_channels, 8, 8))
LABELS = rng.integers(0, 3, size=12)


# Bounded polling for real child-process transitions (see tests/conftest.py).
from repro.cluster import wait_until  # noqa: E402


@pytest.fixture(scope="module")
def replica():
    r = ProcessReplica("proc-test", seed=0)
    try:
        yield r
    finally:
        if r.alive:
            r.shutdown()


@pytest.fixture(scope="module")
def trained(replica):
    response = replica.call(
        "train",
        TrainRequest(inputs=INPUTS, labels=LABELS, model_config=TINY, epochs=1),
        timeout=180,
    )
    return response.model_id


class TestServing:
    def test_child_is_a_real_process(self, replica):
        assert replica.alive
        assert replica.pid != os.getpid()
        assert replica.ping()

    def test_train_then_classify_across_the_boundary(self, replica, trained):
        response = replica.call(
            "classify", ClassifyRequest(model_id=trained, inputs=INPUTS[:4]), timeout=60
        )
        assert response.predictions.shape == (4,)
        assert np.all((response.confidences > 0) & (response.confidences <= 1))

    def test_large_payloads_ride_the_arena(self, replica, trained):
        big = rng.normal(size=(48, TINY.in_channels, 8, 8))
        replica.call(
            "classify", ClassifyRequest(model_id=trained, inputs=big), timeout=60
        )
        sent = replica.metrics.snapshot()["counters"]
        assert sent.get("replica.transport.calls_sent", 0) >= 1
        # The 96 KiB input must not have fallen back to inline pickling.
        assert sent.get("replica.transport.inline_fallbacks", 0) == 0

    def test_unknown_model_raises_the_service_error(self, replica):
        with pytest.raises(KeyError):
            replica.call(
                "classify",
                ClassifyRequest(model_id="no-such-model", inputs=INPUTS[:2]),
                timeout=60,
            )

    def test_control_plane_against_the_live_child(self, replica, trained):
        assert replica.has_model(trained)
        assert not replica.has_model("no-such-model")
        entry = replica.fetch_entry(trained)
        assert entry.model_id == trained
        replica.rekey(trained, "global-id")
        assert replica.has_model("global-id") and not replica.has_model(trained)
        assert replica.predictor_for("global-id") is not None
        replica.rekey("global-id", trained)  # restore for later tests

    def test_child_metrics_fold_into_the_parent_view(self, replica, trained):
        merged = replica.metrics_registry().snapshot()["counters"]
        assert merged.get("replica.calls.train", 0) >= 1
        assert merged.get("replica.calls.classify", 0) >= 1


class TestExitPaths:
    def test_graceful_shutdown_leaves_no_leaks(self):
        r = ProcessReplica("proc-clean", seed=0)
        with pytest.raises(KeyError):
            r.call(
                "classify",
                ClassifyRequest(model_id="missing", inputs=np.zeros((4, 3, 8, 8))),
                timeout=60,
            )
        r.shutdown()
        assert not r.alive
        report = r.shm_leak_report()
        assert report["state"] == "stopped"
        assert report["req_leaked"] == [] and report["res_unreleased"] == []
        assert not report["segments_linked"]
        r.assert_no_shm_leaks()

    def test_kill_fails_inflight_calls_and_leaks_nothing(self):
        r = ProcessReplica("proc-kill", seed=0, synthetic_work_s=0.5)
        future = r.submit(
            "classify",
            ClassifyRequest(model_id="missing", inputs=np.zeros((4, 3, 8, 8))),
        )
        # The call is in flight (whether the child dequeued it yet or
        # not, the future must settle after the kill — never hang).
        assert wait_until(lambda: r.outstanding >= 1, timeout=5.0)
        r.kill()
        with pytest.raises((ReplicaDownError, KeyError)):
            # ReplicaDownError if the kill won the race, the service's
            # KeyError if the child answered first — never a hang.
            future.result(10)
        assert wait_until(lambda: not r.alive)
        r.shutdown()
        r.assert_no_shm_leaks()

    def test_calls_after_death_fail_fast(self):
        r = ProcessReplica("proc-dead", seed=0)
        r.kill()
        assert wait_until(lambda: not r.alive)
        with pytest.raises(ReplicaDownError):
            r.call(
                "classify",
                ClassifyRequest(model_id="missing", inputs=np.zeros((2, 3, 8, 8))),
                timeout=10,
            )
        r.shutdown()
        r.assert_no_shm_leaks()


class TestWatchdog:
    def test_sigkill_triggers_respawn_and_the_fresh_child_serves(self):
        r = ProcessReplica("proc-watchdog", seed=0, auto_respawn=True)
        first_pid = r.pid
        assert r.ping()
        os.kill(first_pid, signal.SIGKILL)
        assert wait_until(lambda: r.alive and r.pid != first_pid), "no respawn"
        assert r.ping()
        counters = r.metrics.snapshot()["counters"]
        assert counters.get("replica.unexpected_exits", 0) >= 1
        assert counters.get("replica.respawns", 0) >= 1
        with pytest.raises(KeyError):  # the fresh child really serves
            r.call(
                "classify",
                ClassifyRequest(model_id="missing", inputs=np.zeros((2, 3, 8, 8))),
                timeout=60,
            )
        r.shutdown()
        r.assert_no_shm_leaks()
