"""Autoscaler against a live cluster: the actuation half of the loop.

``tests/cluster/test_autoscaler.py`` pins the pure policy on a virtual
timeline; here the decisions actually move a thread-backend fleet —
replicas join and drain online, placements follow, the pre-warm pool is
consumed and refilled, and idle models park to zero and cold-start back.
Everything runs on an injectable clock or an event gate, never a tuned
sleep.
"""

import threading

import pytest

from repro.cluster import (
    Autoscaler,
    AutoscalerConfig,
    RouterConfig,
    VirtualClock,
    make_cluster,
    make_replica,
    wait_until,
)
from repro.service import ClassifyRequest


def classify(router, gid, inputs):
    return router.classify(ClassifyRequest(model_id=gid, inputs=inputs[:2]))


class TestElasticTopology:
    def test_added_replica_takes_its_rendezvous_share(self, tiny_model):
        model, dataset, predictor = tiny_model
        with make_cluster(2, config=RouterConfig(replication_factor=2)) as router:
            gids = [
                router.register_model(
                    f"m{i}", model, train_set=dataset, predictor=predictor
                )
                for i in range(6)
            ]
            router.add_replica(make_replica("r2"))
            assert "r2" in router.active_replica_ids()
            moved = router.rebalance()
            # With R=2 over 3 replicas, rendezvous hands the newcomer
            # ~2/3 of the 6 models in expectation; at least one lands.
            assert moved["copies_installed"] >= 1
            assert any("r2" in router.holders(g) for g in gids)
            for g in gids:  # every model still serves after the shuffle
                assert len(classify(router, g, dataset.inputs).predictions) == 2

    def test_drain_is_zero_loss_and_routes_around_the_drainer(
        self, tiny_model
    ):
        model, dataset, predictor = tiny_model
        with make_cluster(3, config=RouterConfig(replication_factor=2)) as router:
            gid = router.register_model(
                "drainme", model, train_set=dataset, predictor=predictor
            )
            victim = router.holders(gid)[0]
            # Hold the victim's worker so it has in-flight work when the
            # drain starts; the drain must wait for it, not cut it off.
            gate = threading.Event()
            blocker = router.replicas[victim].execute(gate.wait)
            result = {}
            drainer = threading.Thread(
                target=lambda: result.update(router.drain_replica(victim))
            )
            drainer.start()
            assert wait_until(lambda: victim in router.draining(), timeout=5.0)
            # Traffic during the drain is served by the survivors.
            for _ in range(4):
                assert len(classify(router, gid, dataset.inputs).predictions) == 2
            gate.set()
            blocker.result(5.0)
            drainer.join(timeout=10.0)
            assert not drainer.is_alive()
            assert result["drained_clean"] and not result["died_mid_drain"]
            assert victim not in router.replicas
            # Replication factor was restored on the survivors first.
            holders = router.holders(gid)
            assert len(holders) == 2 and victim not in holders
            assert len(classify(router, gid, dataset.inputs).predictions) == 2

    def test_drain_validation_errors(self, tiny_model):
        model, dataset, _ = tiny_model
        with make_cluster(2) as router:
            with pytest.raises(KeyError):
                router.drain_replica("no-such-replica")
            victim = "r0"
            gate = threading.Event()
            blocker = router.replicas[victim].execute(gate.wait)
            drainer = threading.Thread(
                target=lambda: router.drain_replica(victim)
            )
            drainer.start()
            assert wait_until(lambda: victim in router.draining(), timeout=5.0)
            with pytest.raises(ValueError):  # already draining
                router.drain_replica(victim)
            with pytest.raises(ValueError):  # r1 would be the last one
                router.drain_replica("r1")
            gate.set()
            blocker.result(5.0)
            drainer.join(timeout=10.0)
        with make_cluster(1) as router:
            with pytest.raises(ValueError):  # the only replica ever
                router.drain_replica("r0")

    def test_same_id_can_rejoin_after_a_drain(self, tiny_model):
        model, dataset, predictor = tiny_model
        with make_cluster(2) as router:
            gid = router.register_model(
                "phoenix", model, train_set=dataset, predictor=predictor
            )
            router.drain_replica("r1")
            assert "r1" not in router.replicas
            with pytest.raises(ValueError):  # r0 is still active
                router.add_replica(make_replica("r0"))
            router.add_replica(make_replica("r1"))
            router.rebalance()
            assert sorted(router.active_replica_ids()) == ["r0", "r1"]
            assert len(classify(router, gid, dataset.inputs).predictions) == 2


class TestScaleToZero:
    def test_park_then_first_request_pays_the_unpark(self, tiny_model):
        model, dataset, predictor = tiny_model
        with make_cluster(2) as router:
            gid = router.register_model(
                "lazy", model, train_set=dataset, predictor=predictor
            )
            assert router.park_model(gid)
            assert not router.park_model(gid)  # idempotent
            assert router.parked_ids() == [gid]
            assert gid in router.model_ids()  # parked, not deleted
            with pytest.raises(KeyError):
                router.holders(gid)  # ... but no live copy anywhere
            # The next request that names it unparks it transparently.
            assert len(classify(router, gid, dataset.inputs).predictions) == 2
            assert router.parked_ids() == []
            assert len(router.holders(gid)) >= 1
            counters = router.metrics.counters()
            assert counters.get("router.models_parked", 0) == 1
            assert counters.get("router.models_unparked", 0) == 1
            with pytest.raises(KeyError):
                router.park_model("g404")

    def test_idle_models_follow_the_injected_clock(self, tiny_model):
        model, dataset, predictor = tiny_model
        clock = VirtualClock()
        with make_cluster(2, clock=clock) as router:
            gid = router.register_model(
                "sleepy", model, train_set=dataset, predictor=predictor
            )
            classify(router, gid, dataset.inputs)
            assert router.idle_models(ttl_s=60.0) == []
            clock.advance(61.0)
            assert router.idle_models(ttl_s=60.0) == [gid]
            classify(router, gid, dataset.inputs)  # serving resets idleness
            assert router.idle_models(ttl_s=60.0) == []


class TestPrewarmPool:
    def test_pool_is_consumed_first_and_refilled(self):
        with make_cluster(1) as router:
            scaler = Autoscaler(
                router,
                AutoscalerConfig(
                    min_replicas=1, max_replicas=6, prewarm_pool_size=1
                ),
            )
            try:
                assert scaler.cost_snapshot()["prewarm_pool"] == 1.0
                added = scaler.scale_up(2)
                assert len(added) == 2
                counters = router.metrics.counters()
                # First join came from the pool, second was spawned cold.
                assert counters.get("autoscaler.joins.prewarmed", 0) == 1
                assert counters.get("autoscaler.joins.spawned", 0) == 1
                # The pool was topped back up after the burst.
                assert scaler.cost_snapshot()["prewarm_pool"] == 1.0
                hists = router.metrics.snapshot()["histograms"]
                assert "autoscaler.cold_start_ms.prewarmed" in hists
                assert "autoscaler.cold_start_ms.spawned" in hists
            finally:
                scaler.finalize()
            assert scaler.cost_snapshot()["prewarm_pool"] == 0.0


class TestControlLoopOnVirtualClock:
    def _config(self):
        return AutoscalerConfig(
            min_replicas=1,
            max_replicas=3,
            target_outstanding_per_replica=1.0,
            hysteresis_up=1,
            hysteresis_down=2,
            up_cooldown_s=1.0,
            down_cooldown_s=2.0,
            max_step_up=2,
            max_step_down=1,
        )

    def test_full_loop_tracks_load_up_and_back_down(self, tiny_model):
        model, dataset, predictor = tiny_model
        clock = VirtualClock()
        with make_cluster(1, clock=clock) as router:
            gid = router.register_model(
                "elastic", model, train_set=dataset, predictor=predictor
            )
            scaler = Autoscaler(router, self._config(), clock=clock)
            try:
                # Pin three no-op jobs on the only replica: sustained
                # pressure with no wall-clock sleeps anywhere.
                gate = threading.Event()
                blockers = [
                    router.replicas["r0"].execute(gate.wait) for _ in range(3)
                ]
                assert wait_until(
                    lambda: router.replicas["r0"].outstanding >= 3, timeout=5.0
                )
                decision = scaler.step()
                assert decision.action == "scale_up"
                assert len(router.active_replica_ids()) == 3
                # The newcomers hold their rendezvous share already.
                assert len(router.holders(gid)) == 2
                clock.advance(1.5)
                # Pressure persists but the fleet is at max: hold.
                assert scaler.step().action == "hold"
                gate.set()
                for b in blockers:
                    b.result(5.0)
                assert wait_until(
                    lambda: router.replicas["r0"].outstanding == 0, timeout=5.0
                )
                # Quiet now — two low observations arm the down streak,
                # then one drain per step (cooldown permitting).
                downs = 0
                for _ in range(10):
                    clock.advance(2.5)
                    if scaler.step().action == "scale_down":
                        downs += 1
                    if len(router.active_replica_ids()) == 1:
                        break
                assert downs == 2
                assert len(router.active_replica_ids()) == 1
                counters = router.metrics.counters()
                assert counters.get("router.drains_completed", 0) == 2
                assert counters.get("router.drains_died_midway", 0) == 0
                # Nothing was lost on the way down: the model still serves.
                assert len(classify(router, gid, dataset.inputs).predictions) == 2
                # Virtual time drove the cost integral too.
                assert scaler.finalize() > 0.0
            finally:
                scaler.finalize()

    def test_scale_downs_respect_the_cooldown_in_the_log(self, tiny_model):
        model, dataset, predictor = tiny_model
        clock = VirtualClock()
        with make_cluster(3, clock=clock) as router:
            router.register_model(
                "calm", model, train_set=dataset, predictor=predictor
            )
            scaler = Autoscaler(router, self._config(), clock=clock)
            try:
                for _ in range(12):
                    scaler.step()
                    clock.advance(0.5)  # finer than the 2 s down cooldown
                downs = [
                    d for d in scaler.decision_log()
                    if d["action"] == "scale_down"
                ]
                assert downs, "an idle oversized fleet must shrink"
                gaps = [
                    b["t"] - a["t"] for a, b in zip(downs, downs[1:])
                ]
                assert all(
                    gap >= self._config().down_cooldown_s for gap in gaps
                ), gaps
            finally:
                scaler.finalize()
