"""Tests for the synthetic datasets (CIFAR stand-in and sensor time series)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (
    SensorTimeSeriesConfig,
    SyntheticImageConfig,
    SyntheticImageGenerator,
    make_image_dataset,
    make_sensor_dataset,
)


class TestSyntheticImages:
    def test_shapes_and_labels(self):
        cfg = SyntheticImageConfig(num_classes=5, image_size=12)
        gen = SyntheticImageGenerator(cfg)
        images, labels, diff = gen.sample(20, np.random.default_rng(0))
        assert images.shape == (20, 3, 12, 12)
        assert labels.shape == (20,)
        assert set(labels) <= set(range(5))
        assert (diff >= 0).all() and (diff <= 1).all()

    def test_deterministic_given_seed(self):
        cfg = SyntheticImageConfig()
        a = SyntheticImageGenerator(cfg).sample(5, np.random.default_rng(42))
        b = SyntheticImageGenerator(cfg).sample(5, np.random.default_rng(42))
        np.testing.assert_allclose(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    def test_different_template_seeds_differ(self):
        a = SyntheticImageGenerator(SyntheticImageConfig(seed=1))
        b = SyntheticImageGenerator(SyntheticImageConfig(seed=2))
        assert not np.allclose(a.templates, b.templates)

    def test_explicit_difficulty_respected(self):
        gen = SyntheticImageGenerator()
        d = np.linspace(0, 1, 8)
        _, _, diff = gen.sample(8, np.random.default_rng(0), difficulty=d)
        np.testing.assert_allclose(diff, d)

    def test_difficulty_validation(self):
        gen = SyntheticImageGenerator()
        with pytest.raises(ValueError):
            gen.sample(3, np.random.default_rng(0), difficulty=np.array([0.5]))
        with pytest.raises(ValueError):
            gen.sample(2, np.random.default_rng(0), difficulty=np.array([0.5, 1.5]))

    def test_easy_images_closer_to_template(self):
        """Low difficulty must mean higher SNR — the property the staged
        confidence experiments rely on."""
        gen = SyntheticImageGenerator(SyntheticImageConfig(max_shift=0, occlusion_prob=0))
        rng = np.random.default_rng(1)
        n = 200
        easy, labels_e, _ = gen.sample(n, rng, difficulty=np.zeros(n))
        hard, labels_h, _ = gen.sample(n, rng, difficulty=np.ones(n))

        def mean_correlation(images, labels):
            cors = []
            for img, lab in zip(images, labels):
                t = gen.templates[lab].reshape(-1)
                v = img.reshape(-1)
                cors.append(np.corrcoef(t, v)[0, 1])
            return np.mean(cors)

        assert mean_correlation(easy, labels_e) > mean_correlation(hard, labels_h) + 0.2

    def test_make_image_dataset_with_difficulty(self):
        ds, diff = make_image_dataset(10, seed=0, with_difficulty=True)
        assert len(ds) == 10
        assert diff.shape == (10,)

    def test_min_classes_validated(self):
        with pytest.raises(ValueError):
            SyntheticImageGenerator(SyntheticImageConfig(num_classes=1))

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_property_labels_in_range(self, seed):
        gen = SyntheticImageGenerator(SyntheticImageConfig(num_classes=3, image_size=8))
        _, labels, _ = gen.sample(4, np.random.default_rng(seed))
        assert ((labels >= 0) & (labels < 3)).all()


class TestSensorTimeSeries:
    def test_shapes(self):
        cfg = SensorTimeSeriesConfig(num_sensors=2, channels_per_sensor=3,
                                     num_intervals=4, samples_per_interval=8)
        ds = make_sensor_dataset(12, cfg, seed=0)
        assert ds.inputs.shape == (12, 6, 4, 8)
        assert set(ds.labels) <= set(range(cfg.num_classes))

    def test_deterministic(self):
        a = make_sensor_dataset(5, seed=3)
        b = make_sensor_dataset(5, seed=3)
        np.testing.assert_allclose(a.inputs, b.inputs)

    def test_classes_statistically_distinct(self):
        """Per-class mean spectra should differ — classes are learnable."""
        cfg = SensorTimeSeriesConfig(num_classes=3, noise_scale=0.1)
        ds = make_sensor_dataset(150, cfg, seed=0)
        spectra = {}
        for c in range(3):
            samples = ds.inputs[ds.labels == c]
            flat = samples.reshape(len(samples), samples.shape[1], -1)
            spectra[c] = np.abs(np.fft.rfft(flat, axis=-1)).mean(axis=0)
        d01 = np.abs(spectra[0] - spectra[1]).mean()
        d02 = np.abs(spectra[0] - spectra[2]).mean()
        assert d01 > 0.05 and d02 > 0.05

    def test_noise_is_temporally_correlated(self):
        """AR(1) noise: lag-1 autocorrelation of a pure-noise config is high."""
        cfg = SensorTimeSeriesConfig(noise_scale=1.0, noise_correlation=0.9)
        ds = make_sensor_dataset(20, cfg, seed=1)
        x = ds.inputs.reshape(20, ds.inputs.shape[1], -1)
        # Use residual after removing the (smooth) signal via differencing proxy:
        series = x[:, 0, :]
        lag1 = np.mean([np.corrcoef(s[:-1], s[1:])[0, 1] for s in series])
        assert lag1 > 0.5
