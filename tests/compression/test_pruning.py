"""Tests for edge/node pruning and the staged-model reduction service."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import (
    magnitude_edge_prune,
    node_prune_mlp,
    shrink_staged_resnet,
    sparse_storage_ratio,
    sparse_time_ratio,
)
from repro.datasets import SyntheticImageConfig, make_image_dataset
from repro.nn import (
    Adam,
    Dense,
    ReLU,
    Sequential,
    StagedResNet,
    StagedResNetConfig,
    Tensor,
    cross_entropy,
)
from repro.nn.training import evaluate_stage_accuracy, train_staged_model


def make_mlp(widths=(6, 32, 32, 4), seed=0):
    rng = np.random.default_rng(seed)
    layers = []
    for i, (a, b) in enumerate(zip(widths[:-1], widths[1:])):
        layers.append(Dense(a, b, rng=rng))
        if i < len(widths) - 2:
            layers.append(ReLU())
    return Sequential(*layers)


class TestSparseCostModels:
    def test_time_ratio_no_benefit_below_threshold(self):
        """At 50% sparsity with 4x overhead, sparse execution saves nothing."""
        assert sparse_time_ratio(0.5) == 1.0

    def test_time_ratio_benefits_past_threshold(self):
        assert sparse_time_ratio(0.9) == pytest.approx(0.4)

    def test_not_proportional_to_sparsity(self):
        """The paper's point: savings do not scale with the zero fraction."""
        assert sparse_time_ratio(0.6) > 1.0 - 0.6

    def test_storage_ratio(self):
        assert sparse_storage_ratio(0.9) == pytest.approx(0.2)
        assert sparse_storage_ratio(0.2) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            sparse_time_ratio(1.5)
        with pytest.raises(ValueError):
            sparse_time_ratio(0.5, overhead=0.5)
        with pytest.raises(ValueError):
            sparse_storage_ratio(-0.1)

    @given(st.floats(0, 1))
    @settings(max_examples=40, deadline=None)
    def test_property_ratios_bounded(self, s):
        assert 0.0 <= sparse_time_ratio(s) <= 1.0
        assert 0.0 <= sparse_storage_ratio(s) <= 1.0


class TestEdgePruning:
    def test_achieves_target_sparsity(self):
        mlp = make_mlp()
        result = magnitude_edge_prune(mlp, 0.7)
        assert result.achieved_sparsity == pytest.approx(0.7, abs=0.02)
        zeros = sum(
            int((p.data == 0).sum())
            for n, p in mlp.named_parameters()
            if n.endswith("weight")
        )
        assert zeros == result.pruned_parameters

    def test_keeps_largest_weights(self):
        mlp = Sequential(Dense(2, 2, bias=False))
        mlp[0].weight.data = np.array([[1.0, 0.01], [0.02, 2.0]])
        magnitude_edge_prune(mlp, 0.5)
        np.testing.assert_allclose(mlp[0].weight.data, [[1.0, 0.0], [0.0, 2.0]])

    def test_biases_untouched(self):
        mlp = make_mlp()
        biases_before = [l.bias.data.copy() for l in mlp if isinstance(l, Dense)]
        magnitude_edge_prune(mlp, 0.9)
        for layer, before in zip([l for l in mlp if isinstance(l, Dense)], biases_before):
            np.testing.assert_allclose(layer.bias.data, before)

    def test_zero_sparsity_noop(self):
        mlp = make_mlp()
        result = magnitude_edge_prune(mlp, 0.0)
        assert result.pruned_parameters == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            magnitude_edge_prune(make_mlp(), 1.0)
        with pytest.raises(ValueError):
            magnitude_edge_prune(Sequential(ReLU()), 0.5)


class TestNodePruning:
    def test_shrinks_hidden_widths_only(self):
        mlp = make_mlp((6, 32, 32, 4))
        result = node_prune_mlp(mlp, keep_fraction=0.5)
        dense = [l for l in result.model if isinstance(l, Dense)]
        assert dense[0].in_features == 6
        assert dense[0].out_features == 16
        assert dense[1].in_features == 16
        assert dense[1].out_features == 16
        assert dense[2].out_features == 4

    def test_parameter_ratio_below_one(self):
        result = node_prune_mlp(make_mlp(), keep_fraction=0.5)
        assert result.parameter_ratio < 0.6
        assert result.time_ratio == result.parameter_ratio

    def test_pruned_model_runs_dense_forward(self):
        result = node_prune_mlp(make_mlp(), keep_fraction=0.25)
        out = result.model(Tensor(np.random.default_rng(0).normal(size=(5, 6))))
        assert out.shape == (5, 4)

    def test_preserves_function_better_than_random(self):
        """Importance-ordered pruning beats pruning the *least* important
        nodes (sanity check that the importance metric carries signal)."""
        rng = np.random.default_rng(1)
        mlp = make_mlp((6, 48, 4), seed=1)
        x = rng.normal(size=(300, 6))
        y = (x[:, 0] > 0).astype(int) + 2 * (x[:, 1] > 0).astype(int)
        opt = Adam(mlp.parameters(), lr=0.02)
        for _ in range(150):
            loss = cross_entropy(mlp(Tensor(x)), y)
            opt.zero_grad()
            loss.backward()
            opt.step()

        def accuracy(model):
            return float((model(Tensor(x)).data.argmax(-1) == y).mean())

        good = node_prune_mlp(mlp, keep_fraction=0.4)
        # Adversarial baseline: keep the lowest-importance nodes instead.
        from repro.compression.pruning import _node_importance

        dense = [l for l in mlp if isinstance(l, Dense)]
        importance = _node_importance(dense[0].weight.data, dense[1].weight.data)
        worst = np.sort(np.argsort(importance)[: len(good.kept_nodes[0])])
        bad = Sequential(
            Dense(6, len(worst)), ReLU(), Dense(len(worst), 4)
        )
        bad[0].weight.data = dense[0].weight.data[:, worst].copy()
        bad[0].bias.data = dense[0].bias.data[worst].copy()
        bad[2].weight.data = dense[1].weight.data[worst, :].copy()
        bad[2].bias.data = dense[1].bias.data.copy()
        assert accuracy(good.model) > accuracy(bad)

    def test_validation(self):
        with pytest.raises(ValueError):
            node_prune_mlp(make_mlp(), keep_fraction=0.0)
        with pytest.raises(ValueError):
            node_prune_mlp(Sequential(Dense(3, 3)), keep_fraction=0.5)


class TestShrinkStagedResNet:
    TINY = StagedResNetConfig(
        num_classes=4, image_size=8, stage_channels=(4, 8), blocks_per_stage=1, seed=0
    )

    @pytest.fixture(scope="class")
    def setup(self):
        cfg = SyntheticImageConfig(num_classes=4, image_size=8, seed=3)
        train_set = make_image_dataset(400, cfg, seed=0)
        model = StagedResNet(self.TINY)
        train_staged_model(model, train_set, epochs=5, lr=1e-2)
        return model, train_set, cfg

    def test_reduced_model_is_smaller(self, setup):
        model, train_set, _ = setup
        reduced, class_map = shrink_staged_resnet(
            model, train_set, width_fraction=0.5, epochs=1
        )
        assert reduced.num_parameters() < model.num_parameters()
        assert class_map == {c: c for c in range(4)}

    def test_class_subset_adds_other_class(self, setup):
        model, train_set, _ = setup
        reduced, class_map = shrink_staged_resnet(
            model, train_set, width_fraction=0.5, class_subset=[1, 3], epochs=1
        )
        assert class_map == {1: 0, 3: 1}
        assert reduced.config.num_classes == 3  # two frequent + other

    def test_subset_model_learns_frequent_classes(self, setup):
        model, train_set, cfg = setup
        reduced, class_map = shrink_staged_resnet(
            model, train_set, width_fraction=0.75, class_subset=[0, 1], epochs=6
        )
        test_set = make_image_dataset(200, cfg, seed=5)
        mapped = np.array([class_map.get(int(y), 2) for y in test_set.labels])
        preds = reduced.predict_proba(test_set.inputs)[-1].argmax(-1)
        acc = float((preds == mapped).mean())
        assert acc > 0.5

    def test_validation(self, setup):
        model, train_set, _ = setup
        with pytest.raises(ValueError):
            shrink_staged_resnet(model, train_set, width_fraction=0.0)
        with pytest.raises(ValueError):
            shrink_staged_resnet(model, train_set, class_subset=[99], epochs=1)
        with pytest.raises(ValueError):
            shrink_staged_resnet(model, train_set, class_subset=[], epochs=1)
