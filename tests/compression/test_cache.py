"""Tests for the frequent-class detection and model-caching service."""

import numpy as np
import pytest

from repro.compression import (
    CachedInferenceService,
    DeviceProfile,
    FrequencyTracker,
    ReducedClassModel,
)
from repro.compression.pruning import shrink_staged_resnet
from repro.datasets import SyntheticImageConfig, SyntheticImageGenerator, make_image_dataset
from repro.nn import StagedResNet, StagedResNetConfig
from repro.nn.training import train_staged_model


class TestDeviceProfile:
    def test_width_fraction_scales_with_budget(self):
        small = DeviceProfile(max_parameters=1_000)
        large = DeviceProfile(max_parameters=10_000_000)
        assert small.width_fraction_for(100_000) < large.width_fraction_for(100_000)
        assert large.width_fraction_for(100_000) == 1.0

    def test_download_time(self):
        profile = DeviceProfile(bandwidth_kbps=1000.0)
        # 1000 params * 32 bits = 32_000 bits over 1 Mbit/s = 32 ms.
        assert profile.download_time_ms(1000) == pytest.approx(32.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceProfile(max_parameters=0)


class TestFrequencyTracker:
    def test_not_detectable_until_window_full(self):
        tracker = FrequencyTracker(window=10, coverage_target=0.5)
        for _ in range(9):
            tracker.observe(0)
        assert tracker.frequent_classes() is None
        tracker.observe(0)
        assert tracker.frequent_classes() == [0]

    def test_smallest_covering_set(self):
        tracker = FrequencyTracker(window=10, coverage_target=0.8, max_classes=3)
        for label in [0] * 5 + [1] * 3 + [2] * 1 + [3] * 1:
            tracker.observe(label)
        assert tracker.frequent_classes() == [0, 1]

    def test_too_diverse_returns_none(self):
        tracker = FrequencyTracker(window=12, coverage_target=0.9, max_classes=2)
        for label in [0, 1, 2, 3] * 3:
            tracker.observe(label)
        assert tracker.frequent_classes() is None

    def test_sliding_window_forgets(self):
        tracker = FrequencyTracker(window=4, coverage_target=0.9, max_classes=1)
        for label in [0, 0, 0, 0, 1, 1, 1, 1]:
            tracker.observe(label)
        assert tracker.frequent_classes() == [1]

    def test_reset(self):
        tracker = FrequencyTracker(window=2)
        tracker.observe(0)
        tracker.observe(0)
        tracker.reset()
        assert not tracker.full

    def test_validation(self):
        with pytest.raises(ValueError):
            FrequencyTracker(window=0)
        with pytest.raises(ValueError):
            FrequencyTracker(coverage_target=1.5)
        with pytest.raises(ValueError):
            FrequencyTracker(max_classes=0)


TINY = StagedResNetConfig(
    num_classes=4, image_size=8, stage_channels=(4, 8), blocks_per_stage=1, seed=0
)


@pytest.fixture(scope="module")
def served():
    cfg = SyntheticImageConfig(num_classes=4, image_size=8, seed=3)
    train_set = make_image_dataset(400, cfg, seed=0)
    model = StagedResNet(TINY)
    train_staged_model(model, train_set, epochs=8, lr=1e-2)
    return model, train_set, cfg


class TestReducedClassModel:
    def test_miss_on_other_class_or_low_confidence(self, served):
        model, train_set, cfg = served
        reduced, class_map = shrink_staged_resnet(
            model, train_set, width_fraction=0.75, class_subset=[0, 1], epochs=4
        )
        cached = ReducedClassModel(reduced, class_map, confidence_threshold=0.99)
        # Threshold ~1.0 forces essentially everything to miss.
        gen = SyntheticImageGenerator(cfg)
        images, _, _ = gen.sample(10, np.random.default_rng(0))
        results = [cached.predict(img) for img in images]
        assert all(pred is None for pred, _ in results)

    def test_validation(self, served):
        model, train_set, _ = served
        reduced, class_map = shrink_staged_resnet(
            model, train_set, width_fraction=0.5, class_subset=[0], epochs=1
        )
        with pytest.raises(ValueError):
            ReducedClassModel(reduced, class_map, confidence_threshold=2.0)


class TestCachedInferenceService:
    def make_service(self, served, **kwargs):
        model, train_set, _ = served
        defaults = dict(
            device=DeviceProfile(max_parameters=10_000_000),
            tracker=FrequencyTracker(window=30, coverage_target=0.7, max_classes=3),
            confidence_threshold=0.4,
            reduce_epochs=4,
        )
        defaults.update(kwargs)
        return CachedInferenceService(model, train_set, **defaults)

    def test_installs_cache_after_skewed_traffic(self, served):
        model, train_set, cfg = served
        service = self.make_service(served)
        gen = SyntheticImageGenerator(cfg)
        rng = np.random.default_rng(1)
        # Heavily skewed: only classes 0 and 1, easy images.
        n = 60
        images, labels, _ = gen.sample(n, rng, difficulty=np.full(n, 0.1))
        mask = (labels == 0) | (labels == 1)
        for img in images[mask]:
            service.query(img)
        assert service.stats.installs >= 1
        assert service.cached is not None
        assert set(service.cached.cached_classes) <= {0, 1, 2, 3}

    def test_cache_hits_served_locally(self, served):
        model, train_set, cfg = served
        service = self.make_service(served)
        gen = SyntheticImageGenerator(cfg)
        rng = np.random.default_rng(2)
        n = 120
        images, labels, _ = gen.sample(n, rng, difficulty=np.full(n, 0.1))
        mask = (labels == 0) | (labels == 1)
        sources = [service.query(img)["source"] for img in images[mask]]
        assert "cache" in sources

    def test_latency_model_orders_sources(self, served):
        service = self.make_service(served)
        # Before any cache install, "cache" latency uses ratio 1.0.
        server = service.estimated_latency_ms("server")
        miss = service.estimated_latency_ms("server-after-miss")
        assert miss > server  # miss pays device try + round trip

    def test_miss_latency_after_invalidation_charges_reduced_model(self, served):
        # Regression: after the cache was invalidated,
        # "server-after-miss" charged the *full* device inference cost,
        # but the local attempt that missed ran the small reduced model.
        model, train_set, cfg = served
        service = self.make_service(served, hit_window=6)
        gen = SyntheticImageGenerator(cfg)
        rng = np.random.default_rng(1)
        n = 60
        images, labels, _ = gen.sample(n, rng, difficulty=np.full(n, 0.1))
        mask = (labels == 0) | (labels == 1)
        for img in images[mask]:
            service.query(img)
        assert service.cached is not None
        ratio = service.cached.model.num_parameters() / model.num_parameters()
        assert ratio < 1.0
        cache_ms_installed = service.estimated_latency_ms("cache")
        # Drive the real invalidation path: a window of pure misses.
        service._recent_hits.clear()
        service._recent_hits.extend([False] * 6)
        service._maybe_invalidate()
        assert service.cached is None
        assert service.stats.invalidations == 1
        # The miss-time latency still reflects the model that actually ran.
        assert service.estimated_latency_ms("cache") == pytest.approx(
            cache_ms_installed
        )
        device_infer = 30.0 * service.device.compute_slowdown
        miss = service.estimated_latency_ms("server-after-miss")
        server = service.estimated_latency_ms("server")
        assert miss == pytest.approx(server + device_infer * ratio)
        assert miss < server + device_infer  # the old full-cost charge

    def test_miss_latency_with_no_install_history_uses_full_cost(self, served):
        service = self.make_service(served)
        device_infer = 30.0 * service.device.compute_slowdown
        assert service.estimated_latency_ms("cache") == pytest.approx(device_infer)

    def test_stats_accounting(self, served):
        model, train_set, cfg = served
        service = self.make_service(served)
        gen = SyntheticImageGenerator(cfg)
        images, _, _ = gen.sample(5, np.random.default_rng(3))
        for img in images:
            service.query(img)
        assert service.stats.total_queries == 5
