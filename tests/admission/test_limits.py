"""Unit tests for the token-bucket and concurrency limiters."""

import threading

import pytest

from repro.admission import ConcurrencyLimiter, TokenBucket


class TestTokenBucket:
    def test_burst_defaults_to_rate(self):
        assert TokenBucket(5.0).burst == 5.0

    def test_burst_floor_is_one_token(self):
        # Sub-1/s rates must still admit a first request.
        assert TokenBucket(0.2).burst == 1.0
        assert TokenBucket(0.2, clock=lambda: 0.0).try_acquire(now=0.0)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            TokenBucket(0.0)
        with pytest.raises(ValueError):
            TokenBucket(-1.0)

    def test_rejects_sub_token_burst(self):
        with pytest.raises(ValueError):
            TokenBucket(1.0, burst=0.5)

    def test_burst_then_refusal(self):
        bucket = TokenBucket(1.0, burst=3, clock=lambda: 0.0)
        assert [bucket.try_acquire(now=0.0) for _ in range(4)] == [
            True,
            True,
            True,
            False,
        ]

    def test_refills_at_rate(self):
        bucket = TokenBucket(2.0, burst=1, clock=lambda: 0.0)
        assert bucket.try_acquire(now=0.0)
        assert not bucket.try_acquire(now=0.0)
        # 2 tokens/s: half a second buys one token back.
        assert bucket.try_acquire(now=0.5)
        assert not bucket.try_acquire(now=0.5)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(10.0, burst=2, clock=lambda: 0.0)
        assert bucket.tokens == 2.0
        bucket.try_acquire(now=0.0)
        # A long idle period refills to burst, never beyond.
        bucket.try_acquire(now=100.0)
        assert bucket.tokens == pytest.approx(1.0)

    def test_retry_after_converts_deficit_to_seconds(self):
        bucket = TokenBucket(4.0, burst=1, clock=lambda: 0.0)
        assert bucket.retry_after(now=0.0) == 0.0
        bucket.try_acquire(now=0.0)
        # Empty bucket at 4 tokens/s: one token is 0.25 s away.
        assert bucket.retry_after(now=0.0) == pytest.approx(0.25)

    def test_retry_after_shrinks_as_time_passes(self):
        bucket = TokenBucket(4.0, burst=1, clock=lambda: 0.0)
        bucket.try_acquire(now=0.0)
        assert bucket.retry_after(now=0.125) == pytest.approx(0.125)

    def test_virtual_time_is_deterministic(self):
        a = TokenBucket(3.0, burst=2, clock=lambda: 0.0)
        b = TokenBucket(3.0, burst=2, clock=lambda: 0.0)
        times = [0.0, 0.1, 0.15, 0.5, 0.6, 2.0, 2.01]
        assert [a.try_acquire(now=t) for t in times] == [
            b.try_acquire(now=t) for t in times
        ]


class TestConcurrencyLimiter:
    def test_bounds_in_flight(self):
        limiter = ConcurrencyLimiter(2)
        assert limiter.try_acquire()
        assert limiter.try_acquire()
        assert not limiter.try_acquire()
        assert limiter.in_flight == 2

    def test_release_frees_a_slot(self):
        limiter = ConcurrencyLimiter(1)
        assert limiter.try_acquire()
        assert not limiter.try_acquire()
        limiter.release()
        assert limiter.try_acquire()

    def test_unmatched_release_raises(self):
        limiter = ConcurrencyLimiter(1)
        with pytest.raises(RuntimeError):
            limiter.release()

    def test_rejects_nonpositive_limit(self):
        with pytest.raises(ValueError):
            ConcurrencyLimiter(0)

    def test_thread_safety_never_exceeds_limit(self):
        limiter = ConcurrencyLimiter(4)
        peak = []
        lock = threading.Lock()

        def worker():
            for _ in range(200):
                if limiter.try_acquire():
                    with lock:
                        peak.append(limiter.in_flight)
                    limiter.release()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert peak and max(peak) <= 4
