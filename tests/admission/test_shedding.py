"""Unit tests for utility-aware shed selection."""

import pytest

from repro.admission import (
    TAIL,
    UTILITY,
    expected_utility,
    reachable_stage,
    select_shed,
)
from repro.scheduler.task import TaskView


def view(
    task_id,
    arrival_time=0.0,
    deadline=10.0,
    num_stages=4,
    stages_done=0,
    confidences=(),
):
    return TaskView(
        task_id=task_id,
        arrival_time=arrival_time,
        deadline=deadline,
        num_stages=num_stages,
        stages_done=stages_done,
        confidences=tuple(confidences),
    )


class FixedPredictor:
    """Predictor stub: utility keyed by current confidence, plus a prior."""

    def __init__(self, prior_value=0.3, bonus=0.1):
        self.prior_value = prior_value
        self.bonus = bonus
        self.prior_calls = []
        self.predict_calls = []

    def prior(self, stage):
        self.prior_calls.append(stage)
        return self.prior_value

    def predict(self, from_stage, confidence, target):
        self.predict_calls.append((from_stage, confidence, target))
        return confidence + self.bonus


class TestReachableStage:
    def test_zero_stage_time_disables_the_discount(self):
        assert reachable_stage(view(0, num_stages=4), now=0.0, stage_time_s=0.0) == 3

    def test_slack_limits_the_reachable_stage(self):
        v = view(0, deadline=2.5, num_stages=6, stages_done=1)
        # 2.5 s of slack at 1 s/stage buys 2 more stages: 1, 2.
        assert reachable_stage(v, now=0.0, stage_time_s=1.0) == 2

    def test_doomed_task_reaches_nothing_new(self):
        v = view(0, deadline=1.0, num_stages=4, stages_done=2)
        assert reachable_stage(v, now=0.9, stage_time_s=1.0) == 1  # stages_done - 1

    def test_never_exceeds_last_stage(self):
        v = view(0, deadline=100.0, num_stages=3)
        assert reachable_stage(v, now=0.0, stage_time_s=1.0) == 2


class TestExpectedUtility:
    def test_doomed_task_is_worth_what_it_holds(self):
        v = view(0, deadline=1.0, stages_done=2, confidences=(0.4, 0.6))
        predictor = FixedPredictor()
        assert expected_utility(v, predictor, now=0.9, stage_time_s=1.0) == 0.6
        assert predictor.predict_calls == []  # no prediction needed

    def test_fresh_task_uses_the_prior(self):
        v = view(0, num_stages=4, stages_done=0)
        predictor = FixedPredictor(prior_value=0.45)
        assert expected_utility(v, predictor, now=0.0) == 0.45
        assert predictor.prior_calls == [3]

    def test_started_task_uses_predict_from_last_stage(self):
        v = view(0, num_stages=4, stages_done=2, confidences=(0.3, 0.5))
        predictor = FixedPredictor(bonus=0.2)
        assert expected_utility(v, predictor, now=0.0) == pytest.approx(0.7)
        assert predictor.predict_calls == [(1, 0.5, 3)]

    def test_prediction_never_undercuts_held_confidence(self):
        v = view(0, num_stages=4, stages_done=2, confidences=(0.3, 0.9))
        predictor = FixedPredictor(bonus=-0.5)
        assert expected_utility(v, predictor, now=0.0) == 0.9

    def test_no_predictor_is_optimistic_about_remaining_depth(self):
        v = view(0, num_stages=4, stages_done=0)
        # Reachable stage 3 of 4 -> (3 + 1) / 4 = 1.0 optimism.
        assert expected_utility(v, None, now=0.0) == 1.0
        # When slack only buys one stage ((2+1)/4 = 0.75), a higher held
        # confidence wins the max().
        held = view(0, deadline=1.0, num_stages=4, stages_done=2, confidences=(0.95,))
        assert expected_utility(held, None, now=0.0, stage_time_s=1.0) == 0.95


class TestSelectShed:
    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError):
            select_shed([view(0)], 1, policy="bogus")

    def test_nothing_to_shed(self):
        assert select_shed([view(0), view(1)], 0) == []
        assert select_shed([view(0)], -3) == []

    def test_shedding_everything_returns_all_ids(self):
        views = [view(2), view(0), view(1)]
        assert sorted(select_shed(views, 5)) == [0, 1, 2]

    def test_utility_drops_the_least_valuable_first(self):
        views = [
            view(0, stages_done=1, confidences=(0.9,)),
            view(1, stages_done=1, confidences=(0.2,)),
            view(2, stages_done=1, confidences=(0.6,)),
        ]
        predictor = FixedPredictor(bonus=0.0)
        assert select_shed(views, 2, predictor=predictor) == [1, 2]

    def test_utility_ties_drop_newest_then_highest_id(self):
        views = [
            view(0, arrival_time=0.0),
            view(1, arrival_time=2.0),
            view(2, arrival_time=2.0),
        ]
        # No predictor, identical optimism everywhere -> pure tie-break.
        assert select_shed(views, 2) == [2, 1]

    def test_doomed_tasks_go_first_under_utility(self):
        doomed = view(0, deadline=0.5, stages_done=1, confidences=(0.1,))
        healthy = view(1, deadline=50.0, stages_done=1, confidences=(0.1,))
        predictor = FixedPredictor(bonus=0.6)
        assert select_shed(
            [healthy, doomed],
            1,
            predictor=predictor,
            now=0.4,
            stage_time_s=1.0,
            policy=UTILITY,
        ) == [0]

    def test_tail_drops_newest_arrivals(self):
        views = [
            view(0, arrival_time=0.0),
            view(1, arrival_time=3.0),
            view(2, arrival_time=1.0),
        ]
        assert select_shed(views, 2, policy=TAIL) == [1, 2]

    def test_tail_breaks_arrival_ties_by_highest_id(self):
        views = [view(0, arrival_time=1.0), view(1, arrival_time=1.0)]
        assert select_shed(views, 1, policy=TAIL) == [1]
