"""Per-tenant quotas: weighted-fair shares, borrowing, exact accounting."""

import pytest

from repro import telemetry
from repro.admission import (
    NO_TENANT,
    OTHER_TENANTS,
    TENANT_QUOTA,
    AdmissionController,
    EndpointLimits,
    TenantQuota,
)


def make_controller(**kwargs):
    kwargs.setdefault(
        "per_tenant",
        {"gold": TenantQuota(weight=3.0), "bronze": TenantQuota(weight=1.0)},
    )
    kwargs.setdefault("tenant_capacity_per_s", 4.0)
    kwargs.setdefault("tenant_capacity_burst", 1.0)
    return AdmissionController(**kwargs)


def saturate(controller, tenants, duration_s, step_s=0.01, start_s=0.0):
    """Every tenant attempts one admit per step; returns admit counts."""
    admitted = {t: 0 for t in tenants}
    steps = int(duration_s / step_s)
    for i in range(steps):
        now = start_s + i * step_s
        for tenant in tenants:
            decision = controller.admit("infer", tenant=tenant, now=now)
            if decision.admitted:
                admitted[tenant] += 1
                controller.release("infer", tenant=tenant)
    return admitted


class TestTenantQuotaValidation:
    def test_weight_must_be_positive(self):
        with pytest.raises(ValueError):
            TenantQuota(weight=0.0)

    def test_burst_requires_rate(self):
        with pytest.raises(ValueError):
            TenantQuota(burst=5.0)

    def test_capacity_burst_validated(self):
        with pytest.raises(ValueError):
            AdmissionController(
                tenant_capacity_per_s=10.0, tenant_capacity_burst=0.5
            )


class TestWeightedFairShares:
    def test_guaranteed_share_proportional_to_weight(self):
        controller = make_controller()
        admitted = saturate(controller, ["gold", "bronze"], duration_s=50.0)
        # Capacity 4/s split 3:1 -> gold ~150, bronze ~50 over 50 s.
        assert admitted["gold"] == pytest.approx(150, abs=8)
        assert admitted["bronze"] == pytest.approx(50, abs=6)

    def test_total_admitted_bounded_by_capacity(self):
        # The debt-charged shared pool keeps guaranteed + borrowed
        # admissions within the configured aggregate capacity.
        controller = make_controller()
        admitted = saturate(controller, ["gold", "bronze"], duration_s=50.0)
        own_bursts = 3.0 + 1.0  # per-tenant bucket initial fills
        assert sum(admitted.values()) <= 4.0 * 50.0 + 1.0 + own_bursts

    def test_idle_share_is_borrowable(self):
        controller = make_controller()
        admitted = saturate(controller, ["bronze"], duration_s=50.0)
        # Alone, bronze reaches the full capacity, not just its 1/s share.
        assert admitted["bronze"] == pytest.approx(200, abs=10)
        stats = controller.tenant_stats()["bronze"]
        assert stats["borrowed"] > 0
        assert stats["admitted"] == admitted["bronze"]

    def test_borrowing_disabled_when_not_work_conserving(self):
        controller = make_controller(work_conserving=False)
        admitted = saturate(controller, ["bronze"], duration_s=50.0)
        assert admitted["bronze"] == pytest.approx(50, abs=6)
        assert controller.tenant_stats()["bronze"]["borrowed"] == 0

    def test_rejection_reason_and_retry_after(self):
        controller = make_controller()
        seen_reject = None
        for i in range(200):
            decision = controller.admit(
                "infer", tenant="bronze", now=i * 0.001
            )
            if decision.admitted:
                controller.release("infer", tenant="bronze")
            else:
                seen_reject = decision
        assert seen_reject is not None
        assert seen_reject.reason == TENANT_QUOTA
        assert seen_reject.retry_after_s > 0
        assert seen_reject.key == "tenant:bronze"

    def test_borrowed_flag_on_decisions(self):
        controller = make_controller()
        borrowed = 0
        for i in range(400):
            decision = controller.admit(
                "infer", tenant="bronze", now=i * 0.25
            )
            if decision.admitted:
                borrowed += decision.borrowed
                controller.release("infer", tenant="bronze")
        assert borrowed > 0


class TestTenantCeilingAndConcurrency:
    def test_rate_ceiling_caps_borrowing(self):
        controller = AdmissionController(
            per_tenant={
                "capped": TenantQuota(weight=1.0, rate_per_s=2.0, burst=1),
                "other": TenantQuota(weight=1.0),
            },
            tenant_capacity_per_s=100.0,
            tenant_capacity_burst=1.0,
        )
        admitted = saturate(controller, ["capped"], duration_s=50.0)
        # Borrowable capacity is huge, but the per-tenant ceiling wins.
        assert admitted["capped"] == pytest.approx(100, abs=6)

    def test_tenant_concurrency_held_until_release(self):
        controller = AdmissionController(
            per_tenant={"t": TenantQuota(max_concurrent=1)},
            tenant_capacity_per_s=1000.0,
        )
        assert controller.admit("infer", tenant="t", now=0.0).admitted
        blocked = controller.admit("infer", tenant="t", now=0.001)
        assert not blocked.admitted
        assert blocked.reason == TENANT_QUOTA
        controller.release("infer", tenant="t")
        assert controller.admit("infer", tenant="t", now=0.002).admitted

    def test_tenant_slot_rolled_back_on_endpoint_rejection(self):
        controller = AdmissionController(
            per_endpoint={"infer": EndpointLimits(max_concurrent=1)},
            per_tenant={"t": TenantQuota(max_concurrent=1)},
            tenant_capacity_per_s=1000.0,
        )
        assert controller.admit("infer", tenant="t", now=0.0).admitted
        # Endpoint slot is taken by the first request; this rejection
        # must not leak the tenant's concurrency slot.
        rejected = controller.admit("infer", tenant="t", now=0.001)
        assert not rejected.admitted
        controller.release("infer", tenant="t")
        assert controller.admit("infer", tenant="t", now=0.002).admitted


class TestUndeclaredTenants:
    def test_undeclared_borrow_only(self):
        controller = make_controller()
        admitted = saturate(controller, ["stranger"], duration_s=50.0)
        # A stranger rides the idle pool but has no guaranteed share.
        assert 0 < admitted["stranger"] <= 4.0 * 50.0 + 1.0

    def test_undeclared_rejected_when_declared_saturate(self):
        controller = make_controller()
        admitted = saturate(
            controller, ["gold", "bronze", "stranger"], duration_s=50.0
        )
        # Declared tenants keep their guarantees; the stranger gets at
        # most the capacity the declared population leaves unused.
        assert admitted["gold"] == pytest.approx(150, abs=8)
        assert admitted["bronze"] == pytest.approx(50, abs=6)
        assert admitted["stranger"] < 0.2 * (4.0 * 50.0)

    def test_untenanted_requests_skip_the_tenant_gate(self):
        controller = make_controller()
        for i in range(100):
            assert controller.admit("infer", now=i * 1e-4).admitted


class TestExactAccounting:
    def test_stats_sum_to_attempts(self):
        controller = make_controller()
        attempts = {"gold": 0, "bronze": 0, "stranger": 0}
        for i in range(3000):
            tenant = ("gold", "bronze", "stranger")[i % 3]
            attempts[tenant] += 1
            decision = controller.admit("infer", tenant=tenant, now=i * 0.003)
            if decision.admitted:
                controller.release("infer", tenant=tenant)
        stats = controller.tenant_stats()
        for tenant, n in attempts.items():
            assert stats[tenant]["admitted"] + stats[tenant]["rejected"] == n

    def test_accounting_keys_bounded_with_overflow_bucket(self):
        controller = AdmissionController(
            tenant_capacity_per_s=1e9, max_tenant_keys=4
        )
        total = 0
        for i in range(500):
            controller.admit("infer", tenant=f"tenant-{i}", now=i * 1e-5)
            total += 1
        stats = controller.tenant_stats()
        assert len(stats) <= 5  # 4 exact keys + __other__
        assert OTHER_TENANTS in stats
        counted = sum(s["admitted"] + s["rejected"] for s in stats.values())
        assert counted == total

    def test_telemetry_label_space_bounded(self):
        controller = AdmissionController(
            tenant_capacity_per_s=1e9, max_tenant_keys=8
        )
        with telemetry.session() as tel:
            for i in range(200):
                controller.admit("infer", tenant=f"t{i}", now=i * 1e-5)
            names = [
                name
                for name in tel.registry.counters()
                if name.startswith("admission.tenant_admitted.")
            ]
            assert 0 < len(names) <= 9  # 8 exact labels + the overflow

    def test_no_tenant_constant_reserved(self):
        assert NO_TENANT == "__none__"
        assert OTHER_TENANTS == "__other__"
