"""Unit tests for the per-endpoint/per-model admission controller."""

import pytest

from repro import telemetry
from repro.admission import (
    CONCURRENCY,
    RATE_LIMIT,
    AdmissionController,
    EndpointLimits,
)


class TestEndpointLimits:
    def test_unlimited_when_nothing_set(self):
        assert EndpointLimits().unlimited

    def test_burst_requires_rate(self):
        with pytest.raises(ValueError):
            EndpointLimits(burst=4)

    def test_validation(self):
        with pytest.raises(ValueError):
            EndpointLimits(rate_per_s=0.0)
        with pytest.raises(ValueError):
            EndpointLimits(rate_per_s=1.0, burst=0.2)
        with pytest.raises(ValueError):
            EndpointLimits(max_concurrent=0)


class TestAdmissionController:
    def test_no_limits_admits_everything(self):
        controller = AdmissionController()
        for _ in range(100):
            assert controller.admit("infer").admitted

    def test_concurrency_limit_and_release(self):
        controller = AdmissionController(
            per_endpoint={"infer": EndpointLimits(max_concurrent=2)}
        )
        assert controller.admit("infer").admitted
        assert controller.admit("infer").admitted
        rejected = controller.admit("infer")
        assert not rejected.admitted
        assert rejected.reason == CONCURRENCY
        assert rejected.retry_after_s > 0  # floor applies
        assert controller.in_flight("infer") == 2
        controller.release("infer")
        assert controller.admit("infer").admitted

    def test_rate_limit_carries_retry_after(self):
        controller = AdmissionController(
            per_endpoint={"infer": EndpointLimits(rate_per_s=0.5, burst=1)}
        )
        assert controller.admit("infer").admitted
        rejected = controller.admit("infer")
        assert not rejected.admitted
        assert rejected.reason == RATE_LIMIT
        # Empty bucket at 0.5/s: the next token is ~2 s away.
        assert rejected.retry_after_s == pytest.approx(2.0, rel=0.1)

    def test_default_applies_to_unlisted_endpoints(self):
        controller = AdmissionController(default=EndpointLimits(max_concurrent=1))
        assert controller.admit("train").admitted
        assert not controller.admit("train").admitted
        # Each endpoint gets its own limiter instance built from the default.
        assert controller.admit("classify").admitted
        controller.release("train")
        assert controller.admit("train").admitted

    def test_per_endpoint_overrides_default(self):
        controller = AdmissionController(
            default=EndpointLimits(max_concurrent=1),
            per_endpoint={"infer": EndpointLimits()},  # explicitly unlimited
        )
        for _ in range(5):
            assert controller.admit("infer").admitted

    def test_model_scope_composes_with_endpoint_scope(self):
        controller = AdmissionController(
            per_endpoint={"infer": EndpointLimits(max_concurrent=4)},
            per_model={"m1": EndpointLimits(max_concurrent=1)},
        )
        assert controller.admit("infer", model_id="m1").admitted
        rejected = controller.admit("infer", model_id="m1")
        assert not rejected.admitted
        assert rejected.key == "model:m1"
        # Other models only contend on the endpoint limit.
        assert controller.admit("infer", model_id="m2").admitted

    def test_model_rejection_rolls_back_endpoint_slot(self):
        controller = AdmissionController(
            per_endpoint={"infer": EndpointLimits(max_concurrent=1)},
            per_model={"m1": EndpointLimits(max_concurrent=1)},
        )
        assert controller.admit("infer", model_id="m1").admitted
        controller.release("infer", model_id="m1")
        assert controller.in_flight("infer") == 0
        assert controller.admit("infer", model_id="m1").admitted
        # m1 is saturated; the endpoint slot the check took must be returned.
        assert not controller.admit("infer", model_id="m1").admitted
        assert controller.in_flight("infer") == 1

    def test_release_is_exactly_paired(self):
        controller = AdmissionController(
            per_endpoint={"infer": EndpointLimits(max_concurrent=1)}
        )
        assert controller.admit("infer").admitted
        controller.release("infer")
        with pytest.raises(RuntimeError):
            controller.release("infer")

    def test_rejections_are_counted_when_telemetry_enabled(self):
        controller = AdmissionController(
            per_endpoint={"infer": EndpointLimits(max_concurrent=1)}
        )
        session = telemetry.enable()
        try:
            controller.admit("infer")
            controller.admit("infer")
            counters = session.registry.counters()
            assert counters["admission.admitted.infer"] == 1
            assert counters["admission.rejected.infer"] == 1
            assert counters[f"admission.rejected_by_reason.{CONCURRENCY}"] == 1
            kinds = session.trace.counts()
            assert kinds.get("admission-reject") == 1
        finally:
            telemetry.disable()

    def test_retry_after_floor_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(retry_after_floor_s=-0.1)
