"""Long-horizon properties: a million virtual-time events, no drift.

The workload engine drives admission and telemetry through >= 10^6
events per run; these tests pin the conservation laws that keep such
runs trustworthy — token conservation in :class:`TokenBucket` and
quantile accuracy in :class:`Histogram` — at the same event scale.
"""

import numpy as np
import pytest

from repro.admission import TokenBucket
from repro.telemetry.metrics import Histogram

EVENTS = 1_000_000


class TestTokenBucketLongHorizon:
    def test_token_conservation_under_sustained_overload(self):
        rate, burst = 1000.0, 50.0
        bucket = TokenBucket(rate, burst=burst)
        rng = np.random.default_rng(7)
        # Demand at 2x the refill rate for ~500 s of virtual time.
        times = np.cumsum(rng.exponential(1.0 / (2.0 * rate), size=EVENTS))
        admitted = 0
        for t in times:
            if bucket.try_acquire(now=float(t)):
                admitted += 1
        horizon = float(times[-1])
        minted = rate * horizon + burst
        # Conservation: can never admit more than was ever minted...
        assert admitted <= minted + 1.0
        # ...and sustained demand drains everything minted (the bucket
        # never sits full past the initial burst, so nothing is clamped
        # away).
        assert admitted >= minted - burst - 1.0
        # No float drift after 10^6 refills: the balance stays in range.
        assert 0.0 <= bucket.tokens <= burst

    def test_fixed_step_admission_is_exactly_periodic(self):
        # Dyadic rate and step (refill per step = 0.125, exactly
        # representable): one admit every 8th tick, forever.  Any
        # accumulated float error in the refill arithmetic would
        # eventually skip or double a tick.
        step = 2.0 ** -10
        bucket = TokenBucket(128.0, burst=1.0)
        admits = [
            i for i in range(EVENTS) if bucket.try_acquire(now=i * step)
        ]
        gaps = np.diff(admits)
        assert admits[0] == 0  # the initial burst token
        assert (gaps == 8).all()
        assert len(admits) == 1 + (EVENTS - 1) // 8


class TestHistogramLongHorizon:
    def test_quantiles_track_numpy_within_resolution(self):
        rng = np.random.default_rng(11)
        samples = rng.lognormal(mean=-3.0, sigma=1.0, size=EVENTS)
        hist = Histogram("long-horizon", lo=1e-6, growth=1.05)
        observe = hist.observe
        for value in samples:
            observe(float(value))
        got = hist.percentiles()
        for q in (50, 95, 99):
            exact = float(np.percentile(samples, q))
            # Geometric buckets with growth 1.05 + linear interpolation:
            # stay within ~6% of the exact sample quantile.
            assert got[f"p{q}"] == pytest.approx(exact, rel=0.06)

    def test_count_and_sum_exact_after_a_million_events(self):
        rng = np.random.default_rng(13)
        samples = rng.exponential(0.01, size=EVENTS)
        hist = Histogram("long-horizon-sum", lo=1e-6)
        observe = hist.observe
        for value in samples:
            observe(float(value))
        assert hist.count == EVENTS
        # The running sum accumulates in one float; bound the relative
        # drift against numpy's pairwise summation.
        assert hist.sum == pytest.approx(float(samples.sum()), rel=1e-9)
        assert hist.min == pytest.approx(float(samples.min()))
        assert hist.max == pytest.approx(float(samples.max()))
