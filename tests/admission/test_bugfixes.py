"""Regression tests for two admission-layer timekeeping bugs.

Both were found preparing the million-request workload runs (long
virtual-time horizons make clock mistakes visible):

- ``AdmissionController._reject`` stamped every rejection trace event at
  a hard-coded ``t=0.0`` instead of the decision time, collapsing any
  long-horizon rejection timeline into a single instant.
- ``TokenBucket`` silently accepted interleaved internal-clock and
  ``now=`` (virtual-time) decisions; the two timelines share no origin,
  so each switch minted or destroyed tokens.
"""

import pytest

from repro import telemetry
from repro.admission import (
    AdmissionController,
    ClockSourceMixError,
    EndpointLimits,
    TokenBucket,
)
from repro.telemetry.trace import ADMISSION_REJECT


def _reject_events(tel):
    return [e for e in tel.trace.events() if e.kind == ADMISSION_REJECT]


class TestRejectTraceTimestamp:
    """Pre-fix, every assertion on ``event.t`` here saw ``0.0``."""

    def test_virtual_time_rejection_stamped_at_decision_time(self):
        controller = AdmissionController(
            per_endpoint={"infer": EndpointLimits(rate_per_s=1.0, burst=1)}
        )
        with telemetry.session() as tel:
            assert controller.admit("infer", now=42.0).admitted
            assert not controller.admit("infer", now=42.5).admitted
            (event,) = _reject_events(tel)
            assert event.t == pytest.approx(42.5)

    def test_successive_rejections_keep_their_own_timestamps(self):
        controller = AdmissionController(
            per_endpoint={"infer": EndpointLimits(rate_per_s=0.1, burst=1)}
        )
        with telemetry.session() as tel:
            assert controller.admit("infer", now=10.0).admitted
            for t in (11.0, 12.5, 17.25):
                assert not controller.admit("infer", now=t).admitted
            stamps = [e.t for e in _reject_events(tel)]
            assert stamps == pytest.approx([11.0, 12.5, 17.25])

    def test_internal_clock_rejection_stamped_from_injected_clock(self):
        wall = {"now": 100.0}
        controller = AdmissionController(
            per_endpoint={"infer": EndpointLimits(rate_per_s=1.0, burst=1)},
            clock=lambda: wall["now"],
        )
        with telemetry.session() as tel:
            assert controller.admit("infer").admitted
            wall["now"] = 100.25
            assert not controller.admit("infer").admitted
            (event,) = _reject_events(tel)
            assert event.t == pytest.approx(100.25)


class TestTokenBucketClockLatch:
    """Pre-fix, these mixed-source calls silently returned a bool."""

    def test_internal_then_external_raises(self):
        bucket = TokenBucket(10.0)
        assert bucket.try_acquire()
        with pytest.raises(ClockSourceMixError):
            bucket.try_acquire(now=1.0)

    def test_external_then_internal_raises(self):
        bucket = TokenBucket(10.0)
        assert bucket.try_acquire(now=1.0)
        with pytest.raises(ClockSourceMixError):
            bucket.try_acquire()

    def test_retry_after_latches_too(self):
        bucket = TokenBucket(10.0)
        bucket.retry_after(now=0.0)
        with pytest.raises(ClockSourceMixError):
            bucket.retry_after()
        # The failed call must not have corrupted the latched timeline.
        assert bucket.try_acquire(now=0.5)

    def test_single_source_usage_unaffected(self):
        internal = TokenBucket(1000.0)
        for _ in range(5):
            internal.try_acquire()
        external = TokenBucket(1.0, burst=1)
        assert external.try_acquire(now=0.0)
        assert not external.try_acquire(now=0.5)
        assert external.try_acquire(now=1.0)

    def test_first_external_call_reanchors_the_timeline(self):
        # The constructor stamps its refill origin from the internal
        # clock; the first now= decision must restart the timeline at
        # the caller's origin instead of treating the gap as elapsed
        # refill time.
        bucket = TokenBucket(1.0, burst=1, clock=lambda: -1e9)
        assert bucket.try_acquire(now=0.0)
        assert not bucket.try_acquire(now=0.25)
        assert bucket.try_acquire(now=1.5)
