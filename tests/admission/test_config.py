"""Validation tests for the shared queue-level admission config."""

import pytest

from repro.admission import TAIL, AdmissionConfig


class TestAdmissionConfig:
    def test_default_is_unbounded(self):
        assert not AdmissionConfig().bounded

    def test_any_knob_makes_it_bounded(self):
        assert AdmissionConfig(max_queue_depth=4).bounded
        assert AdmissionConfig(degrade_queue_depth=2).bounded
        assert AdmissionConfig(rate_limit_per_s=10.0).bounded

    def test_degrade_depth_must_not_exceed_hard_depth(self):
        AdmissionConfig(max_queue_depth=4, degrade_queue_depth=4)  # equal ok
        with pytest.raises(ValueError):
            AdmissionConfig(max_queue_depth=4, degrade_queue_depth=5)

    def test_negative_depths_rejected(self):
        with pytest.raises(ValueError):
            AdmissionConfig(max_queue_depth=-1)
        with pytest.raises(ValueError):
            AdmissionConfig(degrade_queue_depth=-1)

    def test_stage_cap_must_allow_one_stage(self):
        with pytest.raises(ValueError):
            AdmissionConfig(degrade_stage_cap=0)

    def test_shed_policy_is_validated(self):
        AdmissionConfig(shed_policy=TAIL)
        with pytest.raises(ValueError):
            AdmissionConfig(shed_policy="random")

    def test_rate_and_burst_validation(self):
        with pytest.raises(ValueError):
            AdmissionConfig(rate_limit_per_s=0.0)
        with pytest.raises(ValueError):
            AdmissionConfig(burst=4)  # burst requires a rate
        with pytest.raises(ValueError):
            AdmissionConfig(rate_limit_per_s=1.0, burst=0.5)

    def test_retry_after_must_be_nonnegative(self):
        with pytest.raises(ValueError):
            AdmissionConfig(retry_after_s=-0.1)
