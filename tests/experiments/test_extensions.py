"""Tests for the extension experiment drivers (service classes, partitioning)."""

import pytest

from repro.experiments.extensions import run_partitioning, run_service_classes


class TestServiceClassesDriver:
    @pytest.fixture(scope="class")
    def result(self, mini_artifacts):
        return run_service_classes(mini_artifacts, num_tasks=60, seed=0)

    def test_both_policies_reported(self, result):
        assert set(result) == {"class-aware", "class-blind"}
        for row in result.values():
            assert 0.0 <= row["accuracy"] <= 1.0
            assert 0.0 <= row["interactive_service_rate"] <= 1.0
            assert row["revenue"] >= 0.0

    def test_class_aware_serves_interactive_at_least_as_well(self, result):
        assert (
            result["class-aware"]["interactive_service_rate"]
            >= result["class-blind"]["interactive_service_rate"]
        )

    def test_bills_cover_both_classes(self, result):
        bills = result["class-aware"]["bills"]
        assert set(bills) <= {"interactive", "batch"}
        for bill in bills.values():
            assert bill["revenue"] >= 0


class TestPartitioningDriver:
    @pytest.fixture(scope="class")
    def rows(self, mini_artifacts):
        return run_partitioning(
            mini_artifacts, bandwidths_kbps=(20.0, 200.0, 20000.0)
        )

    def test_one_row_per_bandwidth(self, rows):
        assert [r["bandwidth_kbps"] for r in rows] == [20.0, 200.0, 20000.0]

    def test_latency_monotone_in_bandwidth(self, rows):
        latencies = [r["expected_latency_ms"] for r in rows]
        assert latencies == sorted(latencies, reverse=True)

    def test_cut_moves_toward_server_with_bandwidth(self, rows):
        assert rows[0]["cut"] >= rows[-1]["cut"]

    def test_offload_probability_valid(self, rows):
        for r in rows:
            assert 0.0 <= r["offload_probability"] <= 1.0
