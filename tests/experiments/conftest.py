"""Shared miniature benchmark artifacts for experiment-driver tests."""

import pytest

from repro.calibration.entropy_reg import EntropyCalibrator
from repro.datasets import SyntheticImageConfig, make_image_dataset
from repro.experiments.common import BenchmarkArtifacts
from repro.nn import StagedResNet, StagedResNetConfig
from repro.nn.training import (
    collect_stage_outputs,
    evaluate_stage_accuracy,
    train_staged_model,
)


@pytest.fixture(scope="package")
def mini_artifacts():
    """A miniature BenchmarkArtifacts built in ~20 seconds."""
    data_cfg = SyntheticImageConfig(num_classes=5, image_size=8, seed=9)
    model_cfg = StagedResNetConfig(
        num_classes=5, image_size=8, stage_channels=(4, 8, 12),
        blocks_per_stage=1, seed=0,
    )
    train_set = make_image_dataset(600, data_cfg, seed=0)
    cal_set = make_image_dataset(300, data_cfg, seed=1)
    test_set = make_image_dataset(300, data_cfg, seed=2)
    model = StagedResNet(model_cfg)
    train_staged_model(model, train_set, epochs=8, lr=1e-2, seed=0)
    uncal_state = model.state_dict()
    uncal_test = collect_stage_outputs(model, test_set)
    results = EntropyCalibrator(epochs=2, seed=0).calibrate(model, cal_set)
    return BenchmarkArtifacts(
        model=model,
        train_set=train_set,
        cal_set=cal_set,
        test_set=test_set,
        train_outputs=collect_stage_outputs(model, train_set),
        test_outputs=collect_stage_outputs(model, test_set),
        uncalibrated_test_outputs=uncal_test,
        uncalibrated_state=uncal_state,
        stage_accuracies=evaluate_stage_accuracy(model, test_set),
        calibration_alphas=tuple(r.alpha for r in results),
    )
