"""Light-weight tests of the experiment drivers (heavy paths run in benchmarks/).

These avoid the disk-cached benchmark artifacts (which take minutes to
build) by constructing miniature artifacts in-process.
"""

import numpy as np
import pytest

from repro.calibration.entropy_reg import EntropyCalibrator
from repro.datasets import SyntheticImageConfig, make_image_dataset
from repro.experiments.common import BenchmarkArtifacts
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig4 import Fig4Config, PolicyCurve, default_policies, run_fig4
from repro.experiments.table1 import format_table1, run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import Table4Config, format_table4, run_table4
from repro.nn import StagedResNet, StagedResNetConfig
from repro.nn.training import (
    collect_stage_outputs,
    evaluate_stage_accuracy,
    train_staged_model,
)
from repro.scheduler.confidence import GPConfidencePredictor


class TestTable1:
    def test_rows_and_format(self):
        rows = run_table1()
        assert [r["layer"] for r in rows] == ["CNN1", "CNN2", "CNN3", "CNN4"]
        text = format_table1(rows)
        assert "CNN3" in text and "paper" in text


class TestFig2:
    def test_diagrams_built_from_artifacts(self, mini_artifacts):
        diagrams = run_fig2(mini_artifacts)
        assert set(diagrams) == {"uncalibrated", "calibrated"}
        for d in diagrams.values():
            assert d.num_bins == 10


class TestTable2:
    def test_methods_present(self, mini_artifacts):
        table = run_table2(mini_artifacts)
        assert {"Uncalibrated", "RDeepSense", "RTDeepIoT"} <= set(table)
        for eces in table.values():
            assert len(eces) == mini_artifacts.num_stages
            assert all(0 <= e <= 1 for e in eces)


class TestTable3:
    def test_all_pairs_reported(self, mini_artifacts):
        table = run_table3(mini_artifacts)
        assert set(table) == {"GP1->2", "GP1->3", "GP2->3"}
        for row in table.values():
            assert row["mae"] >= 0
            assert row["r2"] <= 1.0


class TestFig4:
    def test_small_sweep(self, mini_artifacts):
        curves = run_fig4(
            mini_artifacts,
            config=Fig4Config(episodes=2, tasks_per_episode=30),
            concurrency_levels=(2, 8),
            policy_names=("RTDeepIoT-1", "RR", "FIFO"),
        )
        assert set(curves) == {"RTDeepIoT-1", "RR", "FIFO"}
        for curve in curves.values():
            assert curve.concurrency == [2, 8]
            assert all(0 <= a <= 1 for a in curve.mean_accuracy)

    def test_default_policies_exhaustive(self, mini_artifacts):
        predictor = GPConfidencePredictor(num_classes=5, seed=0).fit(
            mini_artifacts.train_outputs["confidences"]
        )
        factories = default_policies(predictor)
        assert set(factories) == {
            "RTDeepIoT-1", "RTDeepIoT-2", "RTDeepIoT-3",
            "RTDeepIoT-DC-1", "RTDeepIoT-DC-2", "RTDeepIoT-DC-3",
            "RR", "FIFO",
        }
        for name, factory in factories.items():
            assert factory().name == name


class TestTable4:
    def test_small_run_shapes(self):
        rows = run_table4(Table4Config(num_frames=20, num_people=8))
        assert set(rows) == {"Individual", "Collaborative"}
        assert rows["Individual"]["recognition_latency_ms"] == 550.0
        assert rows["Collaborative"]["recognition_latency_ms"] < 550.0
        text = format_table4(rows)
        assert "Collaborative" in text
