"""Ablation — piecewise-linear GP approximation (Sec. III-B's runtime trick)."""

import pytest

from repro.experiments.ablations import run_gp_approx_ablation


@pytest.mark.benchmark(group="gp-approx")
def test_piecewise_linear_gp_approximation(benchmark, artifacts, record_result):
    result = benchmark.pedantic(run_gp_approx_ablation, rounds=1, iterations=1)
    text = "\n".join(f"{k:20} {v:.6f}" for k, v in result.items())
    record_result("gp_approx_ablation", text)

    # Fidelity: the approximation deviates little over the whole [0, 1] domain.
    assert result["max_abs_deviation"] < 0.05
    # Speed: the runtime path is at least an order of magnitude faster.
    assert result["speedup"] > 10.0
