"""Extension bench — open-loop serving under Poisson/bursty arrivals."""

import pytest

from repro.experiments.openloop import format_openloop, run_openloop


@pytest.mark.benchmark(group="openloop")
def test_openloop_load_sweep(benchmark, artifacts, record_result):
    results = benchmark.pedantic(run_openloop, args=(artifacts,),
                                 rounds=1, iterations=1)
    record_result("openloop_serving", format_openloop(results))

    def row(policy, traffic, load):
        return next(
            r for r in results[policy]
            if r["traffic"] == traffic and r["load_factor"] == load
        )

    # The utility scheduler degrades far more gracefully than FIFO at
    # overload, on both traffic kinds.
    for traffic in ("poisson", "bursty"):
        smart = row("RTDeepIoT-1", traffic, 1.3)
        fifo = row("FIFO", traffic, 1.3)
        assert smart["accuracy"] > fifo["accuracy"] + 0.05
    # At equal average rate, bursts hurt more than smooth traffic.
    for policy in results:
        assert (
            row(policy, "bursty", 1.3)["accuracy"]
            <= row(policy, "poisson", 1.3)["accuracy"] + 0.02
        )
    # Light load is essentially unconstrained: few evictions under Poisson.
    assert row("RTDeepIoT-1", "poisson", 0.5)["eviction_rate"] < 0.10
    # Load monotonically squeezes the stages each task receives.
    for policy in results:
        for traffic in ("poisson", "bursty"):
            stages = [
                row(policy, traffic, load)["mean_stages"] for load in (0.5, 0.9, 1.3)
            ]
            assert stages == sorted(stages, reverse=True)
