"""Extension bench — the no-grad / micro-batched inference fast path."""

import pytest

from repro.experiments.fastpath import format_fastpath, run_fastpath


@pytest.mark.benchmark(group="fastpath")
def test_inference_fastpath(benchmark, artifacts, record_result):
    results = benchmark.pedantic(run_fastpath, args=(artifacts,),
                                 rounds=1, iterations=1)
    record_result("inference_fastpath", format_fastpath(results))

    # The acceptance bar: batched no-grad serving at least doubles the
    # seed's per-image autograd throughput on the 3-stage benchmark model.
    assert results["speedup_batched"] >= 2.0, results["throughput"]
    # Dropping graph construction alone must already pay for itself.
    assert results["speedup_nograd"] > 1.0, results["throughput"]
    # Batching amortises per-stage overhead: per-image latency inside a
    # full micro-batch beats single-image stage execution.
    single, batched = results["stage_latency"]
    assert batched["per_image_ms"] < single["per_image_ms"]
