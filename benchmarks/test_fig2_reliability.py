"""E2 — regenerate Fig. 2: reliability diagrams before/after calibration."""

import pytest

from repro.experiments.fig2 import format_fig2, run_fig2


@pytest.mark.benchmark(group="fig2")
def test_fig2_reliability_diagrams(benchmark, artifacts, record_result):
    diagrams = benchmark.pedantic(
        run_fig2, args=(artifacts,), rounds=1, iterations=1
    )
    record_result("fig2_reliability", format_fig2(diagrams))

    uncal = diagrams["uncalibrated"]
    cal = diagrams["calibrated"]
    # Calibration moves the diagram toward the diagonal: lower ECE.
    assert cal.ece() < uncal.ece()
    # And the calibrated diagram's populated bins hug the diagonal.
    populated = cal.counts > 20
    assert (abs(cal.accuracy[populated] - cal.centers[populated]) < 0.25).all()
