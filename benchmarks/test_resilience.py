"""E8 — Sec. IV-C resilience numbers: rogue attack and trust-based defense."""

import pytest

from repro.experiments.ablations import run_resilience


@pytest.mark.benchmark(group="resilience")
def test_resilience_against_rogue_camera(benchmark, record_result):
    result = benchmark.pedantic(run_resilience, rounds=1, iterations=1)
    text = "\n".join(f"{k:24} {v:.3f}" for k, v in result.items())
    record_result("resilience", text)

    # The paper's motivating number: false boxes cut accuracy by over 20%.
    assert result["attack_drop_fraction"] > 0.15
    # The trust monitor identifies the rogue and restores accuracy.
    assert result["rogue_detected"] == 1.0
    assert result["defended_accuracy"] > 0.9 * result["clean_accuracy"]
