"""E3 — regenerate Table II: ECE of calibration methods per stage."""

import numpy as np
import pytest

from repro.experiments.table2 import format_table2, run_table2


@pytest.mark.benchmark(group="table2")
def test_table2_calibration_ece(benchmark, artifacts, record_result):
    table = benchmark.pedantic(run_table2, args=(artifacts,), rounds=1, iterations=1)
    record_result("table2_ece", format_table2(table))

    # The paper's ordering: RTDeepIoT < RDeepSense < Uncalibrated, per the
    # stage-mean (individual stages can be noisy at our scale).
    mean = {m: float(np.mean(v)) for m, v in table.items()}
    assert mean["RTDeepIoT"] < mean["Uncalibrated"]
    assert mean["RTDeepIoT"] < mean["RDeepSense"]
    # RTDeepIoT achieves small absolute ECE at every stage.
    assert max(table["RTDeepIoT"]) < 0.08
