"""E4 — regenerate Table III: MAE / R^2 of GP confidence-curve prediction."""

import pytest

from repro.experiments.table3 import format_table3, run_table3


@pytest.mark.benchmark(group="table3")
def test_table3_gp_prediction(benchmark, artifacts, record_result):
    table = benchmark.pedantic(run_table3, args=(artifacts,), rounds=1, iterations=1)
    record_result("table3_gp", format_table3(table))

    # The paper's headline ordering: GP2->3 is the best predictor (more
    # observed stages => better prediction of the future stage).
    assert table["GP2->3"]["mae"] < table["GP1->3"]["mae"]
    assert table["GP2->3"]["mae"] < table["GP1->2"]["mae"]
    assert table["GP2->3"]["r2"] > table["GP1->3"]["r2"]
    assert table["GP2->3"]["r2"] > table["GP1->2"]["r2"]
    # Predictions carry usable signal.
    assert table["GP2->3"]["r2"] > 0.3
