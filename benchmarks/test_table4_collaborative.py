"""E6 — regenerate Table IV: individual vs collaborative inferencing."""

import pytest

from repro.experiments.table4 import format_table4, run_table4


@pytest.mark.benchmark(group="table4")
def test_table4_collaborative(benchmark, record_result):
    rows = benchmark.pedantic(run_table4, rounds=1, iterations=1)
    record_result("table4_collaborative", format_table4(rows))

    ind = rows["Individual"]
    col = rows["Collaborative"]
    # Accuracy lift of several points (paper: 68% -> 75.5%).
    assert col["detection_accuracy"] > ind["detection_accuracy"] + 0.04
    # Order-of-magnitude latency reduction (paper: 550 ms -> 25 ms, ~22x).
    assert ind["recognition_latency_ms"] / col["recognition_latency_ms"] > 10.0
    # Individual baseline lands in the paper's accuracy ballpark.
    assert 0.55 < ind["detection_accuracy"] < 0.8
