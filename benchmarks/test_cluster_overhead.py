"""Router overhead guard — one replica behind the router must be cheap.

With N=1 there is nothing to balance, eject or fail over, so the router
path reduces to: one dedup/admission check, one placement lookup, one
queue hop into the replica's worker thread, and the same endpoint call
the bare service would run.  This bench drives the same micro-batched
classify two ways:

- **direct** — ``EugeneService.classify`` on the calling thread;
- **routed** — the same request through ``ServiceRouter`` fronting a
  single ``ServiceReplica`` (``synthetic_work_s=0``).

The acceptance bar: the routed path stays within 5% of the direct call,
so fronting a deployment with the router costs (almost) nothing until
there is actually a cluster behind it.
"""

import copy
import time

import numpy as np
import pytest

from repro import telemetry
from repro.cluster import RouterConfig, ServiceReplica, ServiceRouter
from repro.service import ClassifyRequest, EugeneService

MICRO_BATCH = 16
NUM_IMAGES = 64
REPEATS = 7


def _best_time(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.benchmark(group="cluster")
def test_router_overhead_within_five_percent(benchmark, artifacts, record_result):
    telemetry.disable()
    model = artifacts.model
    model.eval()
    x = np.asarray(artifacts.test_set.inputs[:NUM_IMAGES], dtype=np.float64)

    service = EugeneService(seed=0)
    entry = service.registry.register("bench", model)
    direct_request = ClassifyRequest(
        model_id=entry.model_id, inputs=x, micro_batch=MICRO_BATCH
    )

    replica = ServiceReplica("r0", seed=0)
    router = ServiceRouter([replica], config=RouterConfig(replication_factor=1))
    gid = router.register_model("bench", copy.deepcopy(model))
    routed_request = ClassifyRequest(
        model_id=gid, inputs=x, micro_batch=MICRO_BATCH
    )

    def direct():
        return service.classify(direct_request)

    def routed():
        return router.classify(routed_request)

    try:
        direct()  # warm scratch buffers on both sides
        routed()

        def measure():
            return _best_time(direct), _best_time(routed)

        t_direct, t_routed = benchmark.pedantic(measure, rounds=1, iterations=1)
    finally:
        router.shutdown()
    overhead = t_routed / t_direct - 1.0
    record_result(
        "cluster_router_overhead",
        "\n".join(
            [
                f"direct service.classify       : {1e3 * t_direct:8.2f} ms",
                f"routed via ServiceRouter (N=1): {1e3 * t_routed:8.2f} ms",
                f"overhead                      : {100 * overhead:+8.2f} %",
            ]
        ),
    )
    assert t_routed <= 1.05 * t_direct, (
        f"router at N=1 costs {100 * overhead:.1f}% "
        f"({1e3 * t_routed:.2f} ms vs {1e3 * t_direct:.2f} ms direct)"
    )
