"""Cluster overhead guards — the router tax and the process-transport tax.

**Router guard.**  With N=1 there is nothing to balance, eject or fail
over, so the router path reduces to: one dedup/admission check, one
placement lookup, one queue hop into the replica's worker thread, and
the same endpoint call the bare service would run.  This bench drives
the same micro-batched classify two ways:

- **direct** — ``EugeneService.classify`` on the calling thread;
- **routed** — the same request through ``ServiceRouter`` fronting a
  single ``ServiceReplica`` (``synthetic_work_s=0``).

The acceptance bar: the routed path stays within 5% of the direct call,
so fronting a deployment with the router costs (almost) nothing until
there is actually a cluster behind it.

**Transport guard.**  A process-backed replica additionally pays, per
call: pickling the control message, two pipe hops, the shm arena
round-trip (or inline fallback for tiny payloads), and two thread
handoffs in the parent.  On a small classify this fixed cost dominates,
so it is measured as an *absolute* per-call delta against the direct
service call.  The documented budget is ``PROC_BUDGET_S`` (25 ms) —
deliberately generous, because this guards the fixed per-call cost
against regressions (an accidental payload copy, a lost batching of
pipe writes), not throughput; scaling is the cluster experiment's job.
"""

import copy
import time

import numpy as np
import pytest

from repro import telemetry
from repro.cluster import ProcessReplica, RouterConfig, ServiceReplica, ServiceRouter
from repro.service import ClassifyRequest, EugeneService

MICRO_BATCH = 16
NUM_IMAGES = 64
REPEATS = 7

#: per-call budget for the process transport on a small payload.
PROC_BUDGET_S = 0.025
PROC_IMAGES = 8


def _best_time(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.benchmark(group="cluster")
def test_router_overhead_within_five_percent(benchmark, artifacts, record_result):
    telemetry.disable()
    model = artifacts.model
    model.eval()
    x = np.asarray(artifacts.test_set.inputs[:NUM_IMAGES], dtype=np.float64)

    service = EugeneService(seed=0)
    entry = service.registry.register("bench", model)
    direct_request = ClassifyRequest(
        model_id=entry.model_id, inputs=x, micro_batch=MICRO_BATCH
    )

    replica = ServiceReplica("r0", seed=0)
    router = ServiceRouter([replica], config=RouterConfig(replication_factor=1))
    gid = router.register_model("bench", copy.deepcopy(model))
    routed_request = ClassifyRequest(
        model_id=gid, inputs=x, micro_batch=MICRO_BATCH
    )

    def direct():
        return service.classify(direct_request)

    def routed():
        return router.classify(routed_request)

    try:
        direct()  # warm scratch buffers on both sides
        routed()

        def measure():
            return _best_time(direct), _best_time(routed)

        t_direct, t_routed = benchmark.pedantic(measure, rounds=1, iterations=1)
    finally:
        router.shutdown()
    overhead = t_routed / t_direct - 1.0
    record_result(
        "cluster_router_overhead",
        "\n".join(
            [
                f"direct service.classify       : {1e3 * t_direct:8.2f} ms",
                f"routed via ServiceRouter (N=1): {1e3 * t_routed:8.2f} ms",
                f"overhead                      : {100 * overhead:+8.2f} %",
            ]
        ),
    )
    assert t_routed <= 1.05 * t_direct, (
        f"router at N=1 costs {100 * overhead:.1f}% "
        f"({1e3 * t_routed:.2f} ms vs {1e3 * t_direct:.2f} ms direct)"
    )


@pytest.mark.benchmark(group="cluster")
def test_process_transport_within_budget(benchmark, artifacts, record_result):
    telemetry.disable()
    model = artifacts.model
    model.eval()
    x = np.asarray(artifacts.test_set.inputs[:PROC_IMAGES], dtype=np.float64)

    service = EugeneService(seed=0)
    entry = service.registry.register("bench", model)
    direct_request = ClassifyRequest(model_id=entry.model_id, inputs=x)

    replica = ProcessReplica("p0", seed=0)
    router = ServiceRouter([replica], config=RouterConfig(replication_factor=1))
    gid = router.register_model("bench", copy.deepcopy(model))
    routed_request = ClassifyRequest(model_id=gid, inputs=x)

    def direct():
        return service.classify(direct_request)

    def routed():
        return router.classify(routed_request)

    try:
        direct()  # warm scratch buffers on both sides
        routed()

        def measure():
            return _best_time(direct), _best_time(routed)

        t_direct, t_proc = benchmark.pedantic(measure, rounds=1, iterations=1)
    finally:
        router.shutdown()
    replica.assert_no_shm_leaks()
    transport_cost = t_proc - t_direct
    record_result(
        "cluster_proc_transport",
        "\n".join(
            [
                f"direct service.classify         : {1e3 * t_direct:8.2f} ms",
                f"routed via ProcessReplica (N=1) : {1e3 * t_proc:8.2f} ms",
                f"per-call transport cost         : {1e3 * transport_cost:8.2f} ms"
                f"  (budget {1e3 * PROC_BUDGET_S:.0f} ms)",
            ]
        ),
    )
    assert transport_cost <= PROC_BUDGET_S, (
        f"process transport costs {1e3 * transport_cost:.2f} ms per call "
        f"(budget {1e3 * PROC_BUDGET_S:.0f} ms)"
    )
