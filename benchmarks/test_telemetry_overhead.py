"""Telemetry overhead guard — disabled instrumentation must be free.

Every hot-path call site added by the telemetry layer reduces, when no
session is enabled, to a single module-global read plus a ``None`` check.
This bench drives the same no-grad micro-batched computation two ways:

- **baseline** — the raw PR-1 fast path: ``predict_proba`` over
  micro-batches with no telemetry call sites at all;
- **instrumented** — the full ``service.classify`` endpoint, which passes
  through the ``@telemetry.timed`` decorator and the serving-metrics
  summary builder, with telemetry disabled.

The acceptance bar: the instrumented path stays within 5% of the
baseline, so enabling the layer by default in the service costs nothing
until a session is actually opened.
"""

import time

import numpy as np
import pytest

from repro import telemetry
from repro.service import ClassifyRequest, EugeneService

MICRO_BATCH = 16
NUM_IMAGES = 64
REPEATS = 7


def _best_time(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.benchmark(group="telemetry")
def test_disabled_telemetry_within_five_percent(benchmark, artifacts, record_result):
    telemetry.disable()
    model = artifacts.model
    model.eval()
    x = np.asarray(artifacts.test_set.inputs[:NUM_IMAGES], dtype=np.float64)

    service = EugeneService(seed=0)
    entry = service.registry.register("bench", model)

    def baseline():
        inputs = np.asarray(x, dtype=np.float64)
        probs = np.concatenate(
            [
                model.predict_proba(inputs[i : i + MICRO_BATCH])[-1]
                for i in range(0, len(inputs), MICRO_BATCH)
            ],
            axis=0,
        )
        return probs.argmax(axis=-1), probs.max(axis=-1)

    def instrumented():
        return service.classify(
            ClassifyRequest(
                model_id=entry.model_id, inputs=x, micro_batch=MICRO_BATCH
            )
        )

    baseline()  # warm scratch buffers
    instrumented()

    def measure():
        return _best_time(baseline), _best_time(instrumented)

    t_base, t_inst = benchmark.pedantic(measure, rounds=1, iterations=1)
    overhead = t_inst / t_base - 1.0
    record_result(
        "telemetry_overhead",
        "\n".join(
            [
                f"baseline no-grad batched path : {1e3 * t_base:8.2f} ms",
                f"instrumented (telemetry off)  : {1e3 * t_inst:8.2f} ms",
                f"overhead                      : {100 * overhead:+8.2f} %",
            ]
        ),
    )
    assert t_inst <= 1.05 * t_base, (
        f"disabled telemetry costs {100 * overhead:.1f}% "
        f"({1e3 * t_inst:.2f} ms vs {1e3 * t_base:.2f} ms baseline)"
    )
    # The endpoint must not fabricate a summary while disabled.
    assert instrumented().metrics is None
