"""E1 — regenerate Table I: conv execution time vs FLOPs non-linearity."""

import pytest

from repro.experiments.table1 import format_table1, run_table1


@pytest.mark.benchmark(group="table1")
def test_table1_execution_time(benchmark, record_result):
    rows = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    record_result("table1_profiling", format_table1(rows))

    by_name = {r["layer"]: r for r in rows}
    # Anomaly 1: identical FLOPs, very different time (CNN1 vs CNN2).
    assert by_name["CNN1"]["flops_m"] == by_name["CNN2"]["flops_m"]
    assert by_name["CNN2"]["model_time_ms"] > 2 * by_name["CNN1"]["model_time_ms"]
    # Anomaly 2: more FLOPs yet faster (CNN4 vs CNN3).
    assert by_name["CNN4"]["flops_m"] > by_name["CNN3"]["flops_m"]
    assert by_name["CNN4"]["model_time_ms"] < by_name["CNN3"]["model_time_ms"]
    # The learned profiler reproduces both orderings.
    assert by_name["CNN2"]["profiler_time_ms"] > by_name["CNN1"]["profiler_time_ms"]
    assert by_name["CNN4"]["profiler_time_ms"] < by_name["CNN3"]["profiler_time_ms"]
    # Absolute times track the paper's within 15%.
    for row in rows:
        assert row["model_time_ms"] == pytest.approx(row["paper_time_ms"], rel=0.15)
