"""Extension bench — Sec. IV-A: client/server partitioning vs bandwidth."""

import pytest

from repro.experiments.extensions import run_partitioning


@pytest.mark.benchmark(group="partitioning")
def test_partitioning_bandwidth_sweep(benchmark, artifacts, record_result):
    rows = benchmark.pedantic(
        run_partitioning, args=(artifacts,), rounds=1, iterations=1
    )
    header = f"{'bandwidth (kbps)':>17} {'cut':>4} {'E[latency] ms':>14} {'P(offload)':>11}"
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r['bandwidth_kbps']:>17.0f} {r['cut']:>4} "
            f"{r['expected_latency_ms']:>14.1f} {r['offload_probability']:>11.2f}"
        )
    record_result("partitioning", "\n".join(lines))

    # More bandwidth never makes latency worse.
    latencies = [r["expected_latency_ms"] for r in rows]
    assert latencies == sorted(latencies, reverse=True)
    # Starved uplinks push work toward the client; fat pipes toward the server.
    assert rows[0]["cut"] >= rows[-1]["cut"]
