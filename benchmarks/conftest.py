"""Shared fixtures for the benchmark harness.

Each ``test_*`` module regenerates one table or figure of the paper.  The
trained benchmark model is built once (and disk-cached under
``.bench_cache/``); per-experiment outputs are printed to stdout (run with
``-s`` to see them live) *and* written to ``bench_results/<name>.txt`` so a
plain ``pytest benchmarks/ --benchmark-only`` leaves the full experiment
record on disk.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np
import pytest

from repro.experiments.common import get_benchmark_artifacts

RESULTS_DIR = Path(__file__).resolve().parent.parent / "bench_results"


@pytest.fixture(scope="session", autouse=True)
def nograd_perf_guard():
    """Perf-regression guard: the no-grad fast path must stay measurably
    faster than the autograd forward.  Runs once per bench session on a
    small model so a regression (e.g. an ``infer`` override silently
    falling back to graph construction) fails loudly rather than rotting.
    """
    from repro.nn.resnet import StagedResNet, StagedResNetConfig
    from repro.nn.tensor import Tensor

    model = StagedResNet(
        StagedResNetConfig(num_classes=5, image_size=8, stage_channels=(4, 8),
                           blocks_per_stage=1)
    )
    model.eval()
    x = np.random.default_rng(0).normal(size=(8, 3, 8, 8))
    model.predict_proba(x)  # warm up scratch buffers

    def best(fn, repeats=5):
        times = []
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            times.append(time.perf_counter() - start)
        return min(times)

    t_grad = best(lambda: model.forward(Tensor(x)))
    t_fast = best(lambda: model.predict_proba(x))
    assert t_fast < t_grad, (
        f"no-grad fast path regressed: {1e3 * t_fast:.2f} ms vs "
        f"{1e3 * t_grad:.2f} ms autograd forward"
    )
    yield


@pytest.fixture(scope="session", autouse=True)
def telemetry_disabled_guard():
    """Benchmarks measure the uninstrumented hot path: a telemetry session
    left enabled (by a previous test run or an experiment helper) would
    silently tax every number reported here, so fail loudly instead.
    """
    from repro import telemetry

    assert telemetry.active() is None, (
        "a telemetry session is enabled; benchmarks must run with "
        "telemetry disabled"
    )
    yield
    assert telemetry.active() is None, (
        "a benchmark left a telemetry session enabled"
    )


@pytest.fixture(scope="session", autouse=True)
def no_fault_plan_guard():
    """Benchmarks must measure the disarmed stack: an armed FaultPlan (left
    over from a chaos run or installed by an experiment helper) would
    inject latency/crashes into the very numbers being reported, so fail
    loudly before and after the session instead.
    """
    from repro import faults

    assert faults.active() is None, (
        "a FaultPlan is armed; benchmarks must run with fault injection "
        "disabled (call repro.faults.uninstall() first)"
    )
    yield
    assert faults.active() is None, (
        "a benchmark left a FaultPlan armed"
    )


@pytest.fixture(scope="session")
def artifacts():
    """The trained + calibrated benchmark model and its outputs."""
    return get_benchmark_artifacts()


@pytest.fixture(scope="session")
def record_result():
    """Write an experiment's formatted output to bench_results/ and stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{'=' * 70}\n{name}\n{'=' * 70}\n{text}")

    return _record
