"""Shared fixtures for the benchmark harness.

Each ``test_*`` module regenerates one table or figure of the paper.  The
trained benchmark model is built once (and disk-cached under
``.bench_cache/``); per-experiment outputs are printed to stdout (run with
``-s`` to see them live) *and* written to ``bench_results/<name>.txt`` so a
plain ``pytest benchmarks/ --benchmark-only`` leaves the full experiment
record on disk.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.common import get_benchmark_artifacts

RESULTS_DIR = Path(__file__).resolve().parent.parent / "bench_results"


@pytest.fixture(scope="session")
def artifacts():
    """The trained + calibrated benchmark model and its outputs."""
    return get_benchmark_artifacts()


@pytest.fixture(scope="session")
def record_result():
    """Write an experiment's formatted output to bench_results/ and stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{'=' * 70}\n{name}\n{'=' * 70}\n{text}")

    return _record
