"""Extension bench — Sec. V: service classes and pricing."""

import pytest

from repro.experiments.extensions import run_service_classes


@pytest.mark.benchmark(group="service-classes")
def test_class_aware_scheduling_and_pricing(benchmark, artifacts, record_result):
    result = benchmark.pedantic(
        run_service_classes, args=(artifacts,), rounds=1, iterations=1
    )
    lines = []
    for name, row in result.items():
        lines.append(
            f"{name:12} accuracy={row['accuracy']:.3f} "
            f"interactive-served={row['interactive_service_rate']:.3f} "
            f"revenue={row['revenue']:.0f}"
        )
        for cls, bill in row["bills"].items():
            lines.append(f"    {cls:12} {bill}")
    record_result("service_classes", "\n".join(lines))

    aware = result["class-aware"]
    blind = result["class-blind"]
    # The class-aware scheduler serves at least as many interactive tasks
    # within their tight deadlines.
    assert aware["interactive_service_rate"] >= blind["interactive_service_rate"]
    # And does not sacrifice overall accuracy materially.
    assert aware["accuracy"] > blind["accuracy"] - 0.1
