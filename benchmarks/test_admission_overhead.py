"""Admission-gate overhead guard — disabled admission must be free.

Every gated endpoint passes through ``_admission_gate``, which, when the
service was built without an :class:`AdmissionController` (the default),
reduces to a single attribute read plus a ``None`` check.  This bench
drives the same no-grad micro-batched computation two ways:

- **baseline** — the raw fast path: ``predict_proba`` over micro-batches
  with no endpoint plumbing at all;
- **gated** — the full ``service.classify`` endpoint with admission,
  telemetry, and fault injection all disabled (the default-off stack).

The acceptance bar: the gated path stays within 5% of the baseline, so
shipping admission control in every endpoint costs nothing until a
controller is actually installed.
"""

import time

import numpy as np
import pytest

from repro import telemetry
from repro.service import ClassifyRequest, EugeneService

MICRO_BATCH = 16
NUM_IMAGES = 64
REPEATS = 7


def _best_time(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.benchmark(group="admission")
def test_disabled_admission_within_five_percent(benchmark, artifacts, record_result):
    telemetry.disable()
    model = artifacts.model
    model.eval()
    x = np.asarray(artifacts.test_set.inputs[:NUM_IMAGES], dtype=np.float64)

    service = EugeneService(seed=0)  # no AdmissionController: gate is off
    assert service.admission is None
    entry = service.registry.register("bench", model)

    def baseline():
        inputs = np.asarray(x, dtype=np.float64)
        probs = np.concatenate(
            [
                model.predict_proba(inputs[i : i + MICRO_BATCH])[-1]
                for i in range(0, len(inputs), MICRO_BATCH)
            ],
            axis=0,
        )
        return probs.argmax(axis=-1), probs.max(axis=-1)

    def gated():
        return service.classify(
            ClassifyRequest(
                model_id=entry.model_id, inputs=x, micro_batch=MICRO_BATCH
            )
        )

    baseline()  # warm scratch buffers
    gated()

    def measure():
        return _best_time(baseline), _best_time(gated)

    t_base, t_gated = benchmark.pedantic(measure, rounds=1, iterations=1)
    overhead = t_gated / t_base - 1.0
    record_result(
        "admission_overhead",
        "\n".join(
            [
                f"baseline no-grad batched path : {1e3 * t_base:8.2f} ms",
                f"gated endpoint (admission off): {1e3 * t_gated:8.2f} ms",
                f"overhead                      : {100 * overhead:+8.2f} %",
            ]
        ),
    )
    assert t_gated <= 1.05 * t_base, (
        f"disabled admission costs {100 * overhead:.1f}% "
        f"({1e3 * t_gated:.2f} ms vs {1e3 * t_base:.2f} ms baseline)"
    )


ADMIT_OPS = 50_000


def _best_times_interleaved(fns, repeats=9):
    """Best-of-N wall time per callable, rounds interleaved so clock
    drift and cache warmth hit every candidate equally."""
    best = [float("inf")] * len(fns)
    for _ in range(repeats):
        for i, fn in enumerate(fns):
            start = time.perf_counter()
            fn()
            best[i] = min(best[i], time.perf_counter() - start)
    return best


def _admit_loop(controller, tenant=None):
    admit = controller.admit
    release = controller.release

    def loop():
        for _ in range(ADMIT_OPS):
            decision = admit("classify", tenant=tenant)
            if decision.admitted:
                release("classify", tenant=tenant)

    return loop


@pytest.mark.benchmark(group="admission")
def test_disabled_tenancy_within_five_percent(benchmark, record_result):
    """Configured-but-unused tenancy must not tax un-tenanted requests.

    Both controllers gate ``classify`` with the same endpoint limits; the
    second also carries a full tenant-quota table.  Requests without a
    ``tenant=`` id must cost within 5% of the tenancy-free controller.
    """
    telemetry.disable()
    from repro.admission import (
        AdmissionController,
        EndpointLimits,
        TenantQuota,
    )

    limits = {"classify": EndpointLimits(rate_per_s=1e12, burst=1e12)}
    plain = AdmissionController(per_endpoint=dict(limits))
    tenanted = AdmissionController(
        per_endpoint=dict(limits),
        per_tenant={f"tenant-{i}": TenantQuota() for i in range(64)},
        tenant_capacity_per_s=1e12,
    )

    loop_plain = _admit_loop(plain)
    loop_tenanted = _admit_loop(tenanted)
    loop_plain()
    loop_tenanted()

    def measure():
        return tuple(_best_times_interleaved([loop_plain, loop_tenanted]))

    t_plain, t_tenanted = benchmark.pedantic(measure, rounds=1, iterations=1)
    overhead = t_tenanted / t_plain - 1.0
    per_op = 1e9 * t_plain / ADMIT_OPS
    record_result(
        "admission_tenancy_overhead",
        "\n".join(
            [
                f"admit+release, no tenancy     : {per_op:8.0f} ns/op",
                f"tenancy configured, un-tenanted: "
                f"{1e9 * t_tenanted / ADMIT_OPS:7.0f} ns/op",
                f"overhead                      : {100 * overhead:+8.2f} %",
            ]
        ),
    )
    assert t_tenanted <= 1.05 * t_plain, (
        f"idle tenancy costs {100 * overhead:.1f}% on un-tenanted admits "
        f"({1e3 * t_tenanted:.2f} ms vs {1e3 * t_plain:.2f} ms)"
    )


@pytest.mark.benchmark(group="admission")
def test_hot_path_state_cache_reduction(benchmark, record_result):
    """The pre-resolved state cache must measurably beat the locked path.

    ``cache_states=False`` is the pre-optimization hot path (limit-table
    lookup + controller lock per admit); ``cache_states=True`` resolves
    ``(scope, key)`` through a lock-free dict.  Also records the cost of
    a fully tenant-stamped admit for reference.
    """
    telemetry.disable()
    from repro.admission import (
        AdmissionController,
        EndpointLimits,
        TenantQuota,
    )

    def build(cache_states):
        return AdmissionController(
            per_endpoint={
                "classify": EndpointLimits(rate_per_s=1e12, burst=1e12)
            },
            per_tenant={f"tenant-{i}": TenantQuota() for i in range(64)},
            tenant_capacity_per_s=1e12,
            cache_states=cache_states,
        )

    loop_uncached = _admit_loop(build(False))
    loop_cached = _admit_loop(build(True))
    loop_tenant = _admit_loop(build(True), tenant="tenant-7")
    loop_uncached()
    loop_cached()
    loop_tenant()

    def measure():
        return tuple(
            _best_times_interleaved([loop_uncached, loop_cached, loop_tenant])
        )

    t_uncached, t_cached, t_tenant = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    reduction = 1.0 - t_cached / t_uncached
    record_result(
        "admission_hot_path",
        "\n".join(
            [
                f"admit+release, cache_states=False: "
                f"{1e9 * t_uncached / ADMIT_OPS:6.0f} ns/op",
                f"admit+release, cache_states=True : "
                f"{1e9 * t_cached / ADMIT_OPS:6.0f} ns/op",
                f"reduction                        : "
                f"{100 * reduction:+6.2f} %",
                f"tenant-stamped admit+release     : "
                f"{1e9 * t_tenant / ADMIT_OPS:6.0f} ns/op",
            ]
        ),
    )
    assert t_cached <= t_uncached, (
        f"state cache did not reduce the hot path "
        f"({1e3 * t_cached:.2f} ms vs {1e3 * t_uncached:.2f} ms uncached)"
    )
