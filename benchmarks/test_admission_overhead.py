"""Admission-gate overhead guard — disabled admission must be free.

Every gated endpoint passes through ``_admission_gate``, which, when the
service was built without an :class:`AdmissionController` (the default),
reduces to a single attribute read plus a ``None`` check.  This bench
drives the same no-grad micro-batched computation two ways:

- **baseline** — the raw fast path: ``predict_proba`` over micro-batches
  with no endpoint plumbing at all;
- **gated** — the full ``service.classify`` endpoint with admission,
  telemetry, and fault injection all disabled (the default-off stack).

The acceptance bar: the gated path stays within 5% of the baseline, so
shipping admission control in every endpoint costs nothing until a
controller is actually installed.
"""

import time

import numpy as np
import pytest

from repro import telemetry
from repro.service import ClassifyRequest, EugeneService

MICRO_BATCH = 16
NUM_IMAGES = 64
REPEATS = 7


def _best_time(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.benchmark(group="admission")
def test_disabled_admission_within_five_percent(benchmark, artifacts, record_result):
    telemetry.disable()
    model = artifacts.model
    model.eval()
    x = np.asarray(artifacts.test_set.inputs[:NUM_IMAGES], dtype=np.float64)

    service = EugeneService(seed=0)  # no AdmissionController: gate is off
    assert service.admission is None
    entry = service.registry.register("bench", model)

    def baseline():
        inputs = np.asarray(x, dtype=np.float64)
        probs = np.concatenate(
            [
                model.predict_proba(inputs[i : i + MICRO_BATCH])[-1]
                for i in range(0, len(inputs), MICRO_BATCH)
            ],
            axis=0,
        )
        return probs.argmax(axis=-1), probs.max(axis=-1)

    def gated():
        return service.classify(
            ClassifyRequest(
                model_id=entry.model_id, inputs=x, micro_batch=MICRO_BATCH
            )
        )

    baseline()  # warm scratch buffers
    gated()

    def measure():
        return _best_time(baseline), _best_time(gated)

    t_base, t_gated = benchmark.pedantic(measure, rounds=1, iterations=1)
    overhead = t_gated / t_base - 1.0
    record_result(
        "admission_overhead",
        "\n".join(
            [
                f"baseline no-grad batched path : {1e3 * t_base:8.2f} ms",
                f"gated endpoint (admission off): {1e3 * t_gated:8.2f} ms",
                f"overhead                      : {100 * overhead:+8.2f} %",
            ]
        ),
    )
    assert t_gated <= 1.05 * t_base, (
        f"disabled admission costs {100 * overhead:.1f}% "
        f"({1e3 * t_gated:.2f} ms vs {1e3 * t_base:.2f} ms baseline)"
    )
