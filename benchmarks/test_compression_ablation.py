"""Ablation — node pruning vs edge pruning (Sec. II-B's design argument)."""

import pytest

from repro.experiments.ablations import run_compression_ablation


@pytest.mark.benchmark(group="compression")
def test_node_vs_edge_pruning(benchmark, artifacts, record_result):
    rows = benchmark.pedantic(run_compression_ablation, rounds=1, iterations=1)
    header = f"{'method':28} {'params':>8} {'accuracy':>9} {'time ratio':>11}"
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r['method']:28} {r['param_fraction']:>8.2f} "
            f"{r['accuracy']:>9.3f} {r['time_ratio']:>11.2f}"
        )
    record_result("compression_ablation", "\n".join(lines))

    by = {r["method"]: r for r in rows}
    node50 = by["node prune keep=0.5"]
    edge50 = next(r for r in rows if r["method"].startswith("edge prune") and
                  abs(r["param_fraction"] - node50["param_fraction"]) < 0.1)
    # The paper's point: at a matched parameter budget, node pruning delivers
    # real (dense) speedups while sparse edge pruning does not.
    assert node50["time_ratio"] < edge50["time_ratio"]
    # And node pruning keeps accuracy competitive (within a few points).
    assert node50["accuracy"] > edge50["accuracy"] - 0.05
