"""E5 — regenerate Fig. 4: scheduling scalability sweep."""

import numpy as np
import pytest

from repro.experiments.fig4 import Fig4Config, format_fig4, run_fig4


@pytest.mark.benchmark(group="fig4")
def test_fig4_scheduling_scalability(benchmark, artifacts, record_result):
    curves = benchmark.pedantic(
        run_fig4, args=(artifacts,), rounds=1, iterations=1
    )
    record_result("fig4_scheduling", format_fig4(curves))

    def mean_at(policy, concurrency):
        curve = curves[policy]
        return curve.mean_accuracy[curve.concurrency.index(concurrency)]

    def fairness_at(policy, concurrency):
        curve = curves[policy]
        return curve.fairness_std[curve.concurrency.index(concurrency)]

    # Fig 4a: RTDeepIoT dominates RR at high concurrency.
    for k in (1, 2, 3):
        assert mean_at(f"RTDeepIoT-{k}", 20) > mean_at("RR", 20)
    # Fig 4b: dynamic confidence updates beat the DC simplification, and all
    # RTDeepIoT variants beat FIFO under load.
    assert mean_at("RTDeepIoT-1", 20) >= mean_at("RTDeepIoT-DC-1", 20)
    for name in ("RTDeepIoT-1", "RTDeepIoT-DC-1", "RTDeepIoT-DC-2", "RTDeepIoT-DC-3"):
        assert mean_at(name, 20) > mean_at("FIFO", 20)
    # Accuracy degrades with concurrency for every policy (load effect).
    for name, curve in curves.items():
        assert curve.mean_accuracy[0] >= curve.mean_accuracy[-1] - 0.02, name
    # Fig 4c: under load the utility scheduler spreads confidence across
    # tasks far more evenly than FIFO and RR ("balance the computation
    # fairly, even with a very biased utility curve").
    assert fairness_at("RTDeepIoT-1", 20) < fairness_at("FIFO", 20)
    assert fairness_at("RTDeepIoT-1", 20) <= fairness_at("RR", 20) + 0.02
